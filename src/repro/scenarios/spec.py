"""Declarative scenario specifications.

A scenario is *data*: a named set of piecewise channel-field curves
(signal, loss, bandwidth, media-access latency), checkpoint labels, a
cross-laptop count and a duration.  :class:`ScenarioSpec` captures that
data; :class:`SpecScenario` evaluates it through the exact same
``jittered``/``spike`` draws the original hand-written scenario classes
used, so a spec-based scenario replays byte-identically.

Specs round-trip losslessly through plain dicts
(:func:`spec_to_dict` / :func:`spec_from_dict`) and therefore through
TOML or JSON files (:func:`load_spec`), which is what lets a scenario
be authored with no Python at all — see ``docs/SCENARIOS.md`` and
``examples/custom_scenario.toml``.

Evaluation model
----------------

Each channel field is a list of :class:`FieldPiece` segments ordered by
``end`` fraction; the piece covering the current position ``u`` supplies

* a ``base`` value, optionally ramped linearly (``base + slope * frac``
  where ``frac = (u - start) / span``),
* Gaussian jitter (``rel`` sigma, clamped to ``[lo, hi]``),
* an optional occasional ``dip`` (replace the value with a uniform
  draw) and an optional additive ``spike``.

Fields are drawn in ``draw_order`` so the per-trial RNG stream is
consumed in a well-defined sequence — the property that makes replay
bit-reproducible and lets the golden-master corpus pin behaviour.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..net.wavelan import ChannelConditions
from .base import Checkpoint, Scenario, jittered, spike

FIELD_NAMES = ("signal", "loss", "bandwidth", "access")
DEFAULT_DRAW_ORDER = FIELD_NAMES

# Per-piece draw distributions.  "gauss" is the original jittered()
# path and stays byte-identical; "lognormal" and "uniform" let the
# ERRANT-style statistical families express heavier-tailed draws.
PIECE_DISTS = ("gauss", "lognormal", "uniform")

# Format 2 added piece distributions and the family/generator keys.
# Format-1 documents (no new keys) still load; format-2 documents are
# rejected by format-1 readers — loudly, by version number.
SPEC_FORMAT_VERSION = 2
SUPPORTED_SPEC_FORMATS = (1, 2)


class SpecError(ValueError):
    """A scenario spec is malformed."""


# ======================================================================
# The spec data model
# ======================================================================
@dataclass(frozen=True)
class FieldPiece:
    """One segment of a channel field's piecewise curve.

    The piece applies while ``u < end`` (``u <= end`` when
    ``inclusive``); its start is the previous piece's ``end`` (0.0 for
    the first).  ``span`` overrides the ramp denominator ``end - start``
    — needed when a hand-written formula used a literal span whose
    floating-point value differs from the subtraction.
    """

    end: float = 1.0
    base: float = 0.0
    slope: float = 0.0           # value change per unit of local ramp
    span: Optional[float] = None  # ramp denominator; default end - start
    rel: float = 0.15            # Gaussian jitter sigma, relative
    lo: float = 0.0              # clamp floor
    hi: Optional[float] = None   # clamp ceiling
    inclusive: bool = False      # u == end belongs to this piece
    spike_prob: float = 0.0      # additive spike probability
    spike_magnitude: float = 0.0
    dip_prob: float = 0.0        # replace-with-uniform probability
    dip_lo: float = 0.0
    dip_hi: float = 0.0
    dist: str = "gauss"          # draw distribution (PIECE_DISTS)


@dataclass(frozen=True)
class LossModel:
    """How the scalar loss draw maps onto per-direction probabilities."""

    up_scale: float = 1.0
    up_cap: Optional[float] = None
    down_scale: float = 1.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario as pure data: channel curves plus traversal metadata."""

    name: str
    duration: float = 240.0
    checkpoints: Tuple[Checkpoint, ...] = ()
    cross_laptops: int = 0
    has_motion: bool = True
    draw_order: Tuple[str, ...] = DEFAULT_DRAW_ORDER
    fields: Mapping[str, Tuple[FieldPiece, ...]] = field(default_factory=dict)
    loss_model: LossModel = LossModel()
    description: str = ""
    # Profile family the fields were compiled from (MobilityFamily,
    # RanFamily or LeoFamily — see repro.scenarios.families); None for
    # hand-written piecewise specs.  Families serialize in place of the
    # derived fields and recompile deterministically on load.
    family: Optional[Any] = None
    # Provenance stamp set by repro.scenarios.generate; lets fuzz
    # artifacts be distinguished from hand-authored spec files.
    generator: str = ""

    def __post_init__(self):
        object.__setattr__(self, "fields", dict(self.fields))

    # -- validation ----------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Raise :class:`SpecError` on an ill-formed spec; return self."""
        if not self.name or not isinstance(self.name, str):
            raise SpecError("scenario spec needs a non-empty name")
        if self.name != self.name.lower():
            raise SpecError(f"scenario name {self.name!r} must be lowercase")
        if self.duration <= 0:
            raise SpecError(f"duration must be positive, got {self.duration}")
        if self.cross_laptops < 0:
            raise SpecError("cross_laptops cannot be negative")
        if sorted(self.draw_order) != sorted(FIELD_NAMES):
            raise SpecError(
                f"draw_order must be a permutation of {FIELD_NAMES}, "
                f"got {self.draw_order}")
        for fname in FIELD_NAMES:
            pieces = self.fields.get(fname)
            if not pieces:
                raise SpecError(f"field {fname!r} needs at least one piece")
            prev_end = 0.0
            for i, piece in enumerate(pieces):
                if piece.end <= prev_end and i < len(pieces) - 1:
                    raise SpecError(
                        f"{fname} piece {i}: end {piece.end} must exceed "
                        f"the previous piece's end {prev_end}")
                if piece.span is not None and piece.span <= 0:
                    raise SpecError(f"{fname} piece {i}: span must be "
                                    f"positive")
                if not (0.0 <= piece.spike_prob <= 1.0
                        and 0.0 <= piece.dip_prob <= 1.0):
                    raise SpecError(f"{fname} piece {i}: probabilities "
                                    f"must lie in [0, 1]")
                if piece.dist not in PIECE_DISTS:
                    raise SpecError(
                        f"{fname} piece {i}: unknown dist "
                        f"{piece.dist!r}; choose from {PIECE_DISTS}")
                if piece.dist == "lognormal" and piece.base < 0:
                    raise SpecError(
                        f"{fname} piece {i}: lognormal pieces need a "
                        f"non-negative base, got {piece.base}")
                prev_end = piece.end
        last = 0.0
        for cp in self.checkpoints:
            if not 0.0 <= cp.fraction <= 1.0:
                raise SpecError(f"checkpoint {cp.label!r}: fraction "
                                f"{cp.fraction} outside [0, 1]")
            if cp.fraction < last:
                raise SpecError("checkpoint fractions must be "
                                "nondecreasing")
            last = cp.fraction
        if self.family is not None:
            validate = getattr(self.family, "validate", None)
            if not callable(validate):
                raise SpecError(
                    f"family must be a profile family object, got "
                    f"{type(self.family).__name__}")
            validate()
        if not isinstance(self.generator, str):
            raise SpecError("generator must be a string")
        return self


# ======================================================================
# Evaluation
# ======================================================================
def _select_piece(pieces: Tuple[FieldPiece, ...],
                  u: float) -> Tuple[FieldPiece, float]:
    """(piece, piece start) for position ``u``."""
    start = 0.0
    for piece in pieces:
        if u < piece.end or (piece.inclusive and u == piece.end):
            return piece, start
        start = piece.end
    # Past the last end: the final piece extends to the right.
    last_start = pieces[-2].end if len(pieces) > 1 else 0.0
    return pieces[-1], last_start


def _clamped(value: float, lo: float, hi: Optional[float]) -> float:
    if hi is not None:
        value = min(hi, value)
    return max(lo, value)


def evaluate_field(pieces: Tuple[FieldPiece, ...], u: float,
                   rng: random.Random) -> float:
    """One stochastic draw of a piecewise field at position ``u``.

    Draw order within a piece is fixed — the distribution draw, then
    the optional dip check, then the optional spike — so a spec
    consumes the trial RNG stream identically on every evaluation.
    ``dist="gauss"`` (the default) is byte-identical to the original
    hand-written scenarios' ``jittered`` path; ``lognormal`` draws
    ``base * exp(N(0, rel))`` (median ``base``, heavy right tail) and
    ``uniform`` draws from ``base ± |base| * rel``, both clamped to
    ``[lo, hi]``.
    """
    piece, start = _select_piece(pieces, u)
    base = piece.base
    if piece.slope != 0.0:
        span = piece.span if piece.span is not None else piece.end - start
        frac = (u - start) / span
        base = base + piece.slope * frac
    if piece.dist == "lognormal":
        # A ramp may drive the effective base to zero; the draw still
        # consumes RNG so the stream stays aligned across pieces.
        draw = rng.lognormvariate(0.0, piece.rel)
        value = _clamped(base * draw if base > 0.0 else 0.0,
                         piece.lo, piece.hi)
    elif piece.dist == "uniform":
        half = abs(base) * piece.rel
        value = _clamped(rng.uniform(base - half, base + half),
                         piece.lo, piece.hi)
    else:
        value = jittered(rng, base, rel=piece.rel, lo=piece.lo,
                         hi=piece.hi)
    if piece.dip_prob > 0.0 and rng.random() < piece.dip_prob:
        value = rng.uniform(piece.dip_lo, piece.dip_hi)
    if piece.spike_magnitude != 0.0:
        value += spike(rng, piece.spike_prob, piece.spike_magnitude)
    return value


class SpecScenario(Scenario):
    """A :class:`Scenario` whose behaviour comes entirely from a spec.

    Subclasses bind a class-level ``spec`` (the builtin scenarios);
    instances may also be built directly from a loaded spec, which is
    how TOML/JSON scenarios run with no Python class at all.
    """

    spec: ScenarioSpec

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        spec = cls.__dict__.get("spec")
        if spec is not None:
            spec.validate()
            cls.name = spec.name
            cls.duration = spec.duration
            cls.checkpoints = tuple(spec.checkpoints)
            cls.cross_laptops = spec.cross_laptops
            cls.has_motion = spec.has_motion

    def __init__(self, spec: Optional[ScenarioSpec] = None):
        if spec is not None:
            spec.validate()
            self.spec = spec
            self.name = spec.name
            self.duration = spec.duration
            self.checkpoints = tuple(spec.checkpoints)
            self.cross_laptops = spec.cross_laptops
            self.has_motion = spec.has_motion
        elif getattr(type(self), "spec", None) is None:
            raise SpecError(f"{type(self).__name__} has no spec bound")

    def base_conditions(self, u: float,
                        rng: random.Random) -> ChannelConditions:
        spec = self.spec
        values: Dict[str, float] = {}
        for fname in spec.draw_order:
            values[fname] = evaluate_field(spec.fields[fname], u, rng)
        loss = values["loss"]
        model = spec.loss_model
        loss_up = loss * model.up_scale
        if model.up_cap is not None:
            loss_up = min(model.up_cap, loss_up)
        return ChannelConditions(
            signal_level=values["signal"],
            loss_prob_up=loss_up,
            loss_prob_down=loss * model.down_scale,
            bandwidth_factor=values["bandwidth"],
            access_latency_mean=values["access"],
        )

    def cache_token(self) -> Dict[str, Any]:
        return {"type": "SpecScenario", "format": SPEC_FORMAT_VERSION,
                "spec": spec_to_dict(self.spec)}


# ======================================================================
# Dict / file round-tripping
# ======================================================================
_PIECE_KEYS = tuple(f.name for f in dataclass_fields(FieldPiece))
_LOSS_KEYS = tuple(f.name for f in dataclass_fields(LossModel))
_TOP_KEYS = ("name", "duration", "checkpoints", "cross_laptops",
             "has_motion", "draw_order", "fields", "loss_model",
             "description", "format", "family", "generator")


def _piece_to_dict(piece: FieldPiece) -> Dict[str, Any]:
    return {key: getattr(piece, key) for key in _PIECE_KEYS}


def _piece_from_dict(data: Mapping[str, Any], where: str) -> FieldPiece:
    unknown = set(data) - set(_PIECE_KEYS) - {"to"}
    if unknown:
        raise SpecError(f"{where}: unknown piece keys {sorted(unknown)}")
    kwargs = {key: data[key] for key in _PIECE_KEYS if key in data}
    if "to" in data:
        # Sugar: an absolute ramp target instead of a slope.
        if "slope" in data:
            raise SpecError(f"{where}: give either 'slope' or 'to', "
                            f"not both")
        kwargs["slope"] = float(data["to"]) - float(data.get("base", 0.0))
    try:
        return FieldPiece(**kwargs)
    except TypeError as exc:  # pragma: no cover - defensive
        raise SpecError(f"{where}: {exc}") from exc


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """A plain-data (JSON/TOML-ready) rendering of the spec.

    Lossless: ``spec_from_dict(spec_to_dict(s)) == s`` for any valid
    spec, which the Hypothesis suite asserts.  A family-backed spec
    serializes its family table in place of the derived ``fields`` —
    the compiler is a pure function, so loading recompiles the exact
    same pieces.
    """
    doc = {
        "format": SPEC_FORMAT_VERSION,
        "name": spec.name,
        "duration": spec.duration,
        "cross_laptops": spec.cross_laptops,
        "has_motion": spec.has_motion,
        "description": spec.description,
        "generator": spec.generator,
        "draw_order": list(spec.draw_order),
        "checkpoints": [{"label": cp.label, "fraction": cp.fraction}
                        for cp in spec.checkpoints],
        "loss_model": {key: getattr(spec.loss_model, key)
                       for key in _LOSS_KEYS},
    }
    if spec.family is not None:
        doc["family"] = spec.family.as_dict()
    else:
        doc["fields"] = {fname: [_piece_to_dict(p) for p in pieces]
                         for fname, pieces in spec.fields.items()}
    return doc


def spec_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Parse and validate a spec from plain data (TOML/JSON shaped)."""
    if not isinstance(data, Mapping):
        raise SpecError(f"spec document must be a table/object, "
                        f"got {type(data).__name__}")
    unknown = set(data) - set(_TOP_KEYS)
    if unknown:
        raise SpecError(f"unknown spec keys {sorted(unknown)}")
    fmt = data.get("format", SPEC_FORMAT_VERSION)
    if fmt not in SUPPORTED_SPEC_FORMATS:
        raise SpecError(f"unsupported spec format {fmt!r} "
                        f"(this build reads formats "
                        f"{SUPPORTED_SPEC_FORMATS})")
    if "name" not in data:
        raise SpecError("spec needs a 'name'")
    family = None
    if "family" in data:
        if "fields" in data:
            raise SpecError("give either 'family' or 'fields', not both "
                            "(family specs derive their fields)")
        from .families import family_from_dict

        family = family_from_dict(data["family"], "family")
        pieces = family.compile_fields()
    else:
        if "fields" not in data or not isinstance(data["fields"], Mapping):
            raise SpecError("spec needs a 'fields' table with "
                            f"{', '.join(FIELD_NAMES)} (or a 'family')")
        unknown_fields = set(data["fields"]) - set(FIELD_NAMES)
        if unknown_fields:
            raise SpecError(
                f"unknown channel fields {sorted(unknown_fields)}; "
                f"expected {FIELD_NAMES}")
        pieces = {}
        for fname, raw_pieces in data["fields"].items():
            if not isinstance(raw_pieces, (list, tuple)):
                raise SpecError(f"field {fname!r} must be a list of "
                                f"pieces")
            pieces[fname] = tuple(
                _piece_from_dict(raw, f"field {fname!r} piece {i}")
                for i, raw in enumerate(raw_pieces))
    checkpoints = []
    for i, raw in enumerate(data.get("checkpoints", ())):
        extra = set(raw) - {"label", "fraction"}
        if extra:
            raise SpecError(f"checkpoint {i}: unknown keys {sorted(extra)}")
        try:
            checkpoints.append(Checkpoint(label=str(raw["label"]),
                                          fraction=float(raw["fraction"])))
        except KeyError as exc:
            raise SpecError(f"checkpoint {i}: missing {exc}") from exc
    loss_raw = data.get("loss_model", {})
    extra = set(loss_raw) - set(_LOSS_KEYS)
    if extra:
        raise SpecError(f"loss_model: unknown keys {sorted(extra)}")
    spec = ScenarioSpec(
        name=data["name"],
        duration=float(data.get("duration", 240.0)),
        checkpoints=tuple(checkpoints),
        cross_laptops=int(data.get("cross_laptops", 0)),
        has_motion=bool(data.get("has_motion", True)),
        draw_order=tuple(data.get("draw_order", DEFAULT_DRAW_ORDER)),
        fields=pieces,
        loss_model=LossModel(**loss_raw),
        description=str(data.get("description", "")),
        family=family,
        # No str() coercion: validate() rejects non-string stamps loudly.
        generator=data.get("generator", ""),
    )
    return spec.validate()


def load_spec(path: Union[str, Path]) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a TOML or JSON file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    elif suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raise SpecError(f"{path}: scenario specs must be .toml or .json")
    try:
        return spec_from_dict(data)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc


_TOML_SHORT_ESCAPES = {
    "\b": "\\b", "\t": "\\t", "\n": "\\n", "\f": "\\f", "\r": "\\r",
    '"': '\\"', "\\": "\\\\",
}


def _toml_string(value: str) -> str:
    """A TOML basic string.  Unlike ``json.dumps``, astral characters
    stay literal: TOML forbids the surrogate-pair ``\\uXXXX`` escapes
    JSON would emit for them."""
    out = ['"']
    for ch in value:
        esc = _TOML_SHORT_ESCAPES.get(ch)
        if esc is not None:
            out.append(esc)
        elif ord(ch) < 0x20 or ord(ch) == 0x7F:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def _toml_value(value: Any) -> str:
    """Render one spec value as TOML (the restricted types specs use)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # TOML floats need a dot or exponent; repr(1.0) == '1.0' but
        # repr of integral numpy-free floats can be bare on some paths.
        return text if ("." in text or "e" in text or "E" in text) \
            else text + ".0"
    if isinstance(value, str):
        return _toml_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if isinstance(value, Mapping):
        # TOML has no null: omit None-valued keys (loaders treat a
        # missing key as the same default).
        inner = ", ".join(f"{k} = {_toml_value(v)}"
                          for k, v in value.items() if v is not None)
        return "{" + inner + "}"
    raise SpecError(f"cannot render {type(value).__name__} as TOML")


def spec_to_toml(spec: ScenarioSpec) -> str:
    """The spec as a TOML document ``load_spec`` parses back losslessly.

    Scalars become top-level keys; checkpoints/pieces become arrays of
    inline tables; the family table (when present) becomes a
    ``[family]`` section.
    """
    doc = spec_to_dict(spec)
    lines = []
    for key in ("format", "name", "duration", "cross_laptops",
                "has_motion", "description", "generator", "draw_order"):
        lines.append(f"{key} = {_toml_value(doc[key])}")
    if doc["checkpoints"]:
        lines.append(f"checkpoints = {_toml_value(doc['checkpoints'])}")
    lines.append("")
    lines.append("[loss_model]")
    for key, value in doc["loss_model"].items():
        if value is not None:
            lines.append(f"{key} = {_toml_value(value)}")
    if "family" in doc:
        lines.append("")
        lines.append("[family]")
        for key, value in doc["family"].items():
            lines.append(f"{key} = {_toml_value(value)}")
    else:
        lines.append("")
        lines.append("[fields]")
        for fname, pieces in doc["fields"].items():
            rendered = ",\n    ".join(_toml_value(p) for p in pieces)
            lines.append(f"{fname} = [\n    {rendered},\n]")
    lines.append("")
    return "\n".join(lines)


def save_spec(spec: ScenarioSpec, path: Union[str, Path]) -> None:
    """Write the spec to disk — TOML for ``.toml`` paths, else JSON."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        path.write_text(spec_to_toml(spec), encoding="utf-8")
    else:
        path.write_text(json.dumps(spec_to_dict(spec), indent=1),
                        encoding="utf-8")


def load_scenario(path: Union[str, Path]) -> SpecScenario:
    """A runnable scenario straight from a TOML/JSON spec file."""
    return SpecScenario(load_spec(path))
