"""Chatterbox: a busy conference room (§4.1.4, Figure 5).

No motion at all: the traced laptop sits in a room with five other
laptops, each continuously running a SynRGen edit-debug workload
against a remote NFS server.  Signal level is consistently high
(around 18), yet latency and bandwidth are worse than the mobile
scenarios because the interfering stations contend for the shared
medium — the degradation comes from *cross traffic*, which the
validation harness generates with real SynRGen users on real simulated
laptops rather than from this profile.

Loss stays reasonable; variance, however, is large (the paper notes
the bursty SynRGen behaviour shows up as high variance in nearly every
Chatterbox measurement).
"""

from __future__ import annotations

import random

from ..net.wavelan import ChannelConditions
from .base import Scenario, jittered, spike


class ChatterboxScenario(Scenario):
    """Busy conference room: no motion, five SynRGen interferers."""

    name = "chatterbox"
    duration = 240.0
    checkpoints = ()          # no motion: Figure 5 uses histograms
    cross_laptops = 5
    has_motion = False

    def base_conditions(self, u: float,
                        rng: random.Random) -> ChannelConditions:
        # Static placement: good, steady signal...
        signal = jittered(rng, 18.0, rel=0.06)
        # ...low radio loss (the room is quiet RF-wise)...
        loss = jittered(rng, 0.008, rel=0.6, hi=0.04)
        # ...full radio rate; the slowdown comes from contention with
        # the SynRGen stations, not the channel itself.  A small
        # residual penalty models capture effects under load.
        bw = jittered(rng, 0.74, rel=0.04, lo=0.55, hi=0.82)
        access = jittered(rng, 0.3e-3, rel=0.4, lo=0.05e-3)
        access += spike(rng, 0.02, 8e-3)
        return ChannelConditions(
            signal_level=signal,
            loss_prob_up=loss,
            loss_prob_down=loss * 0.9,
            bandwidth_factor=bw,
            access_latency_mean=access,
        )
