"""Chatterbox: a busy conference room (§4.1.4, Figure 5).

No motion at all: the traced laptop sits in a room with five other
laptops, each continuously running a SynRGen edit-debug workload
against a remote NFS server.  Signal level is consistently high
(around 18), yet latency and bandwidth are worse than the mobile
scenarios because the interfering stations contend for the shared
medium — the degradation comes from *cross traffic*, which the
validation harness generates with real SynRGen users on real simulated
laptops (``cross_laptops = 5`` in the spec) rather than from this
profile.

Loss stays reasonable; variance, however, is large (the paper notes
the bursty SynRGen behaviour shows up as high variance in nearly every
Chatterbox measurement).
"""

from __future__ import annotations

from .registry import register
from .spec import FieldPiece, LossModel, ScenarioSpec, SpecScenario

CHATTERBOX_SPEC = ScenarioSpec(
    name="chatterbox",
    duration=240.0,
    checkpoints=(),           # no motion: Figure 5 uses histograms
    cross_laptops=5,
    has_motion=False,
    description="Busy conference room: no motion, five SynRGen "
                "interferers.",
    fields={
        # Static placement: good, steady signal...
        "signal": (FieldPiece(end=1.0, base=18.0, rel=0.06),),
        # ...low radio loss (the room is quiet RF-wise)...
        "loss": (FieldPiece(end=1.0, base=0.008, rel=0.6, hi=0.04),),
        # ...full radio rate; the slowdown comes from contention with
        # the SynRGen stations, not the channel itself.  A small
        # residual penalty models capture effects under load.
        "bandwidth": (FieldPiece(end=1.0, base=0.74, rel=0.04, lo=0.55,
                                 hi=0.82),),
        "access": (FieldPiece(end=1.0, base=0.3e-3, rel=0.4, lo=0.05e-3,
                              spike_prob=0.02, spike_magnitude=8e-3),),
    },
    loss_model=LossModel(up_scale=1.0, down_scale=0.9),
)


@register
class ChatterboxScenario(SpecScenario):
    """Busy conference room: no motion, five SynRGen interferers."""

    spec = CHATTERBOX_SPEC
