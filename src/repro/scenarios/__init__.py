"""Scenarios: the four paper traversals (§4.1) plus the open registry.

Scenarios are declarative (:mod:`repro.scenarios.spec`) and discovered
through the registry (:mod:`repro.scenarios.registry`) — import this
package and every builtin is registered; drop a TOML/JSON spec file
next to your experiment and :func:`resolve_scenario` runs it with no
Python class at all.

``ALL_SCENARIOS`` remains the four *paper* scenarios (what the golden
corpus and ``check_all`` cover); the registry additionally knows about
``roaming`` and any spec files registered at runtime.
"""

from .base import CONTROL_POINT_SPACING, Checkpoint, Scenario, jittered, spike
from .registry import (
    ScenarioEntry,
    register,
    register_spec_file,
    registered_scenarios,
    resolve_scenario,
    scenario_by_name,
    scenario_names,
    unregister,
)
from .spec import (
    FieldPiece,
    LossModel,
    ScenarioSpec,
    SpecError,
    SpecScenario,
    evaluate_field,
    load_scenario,
    load_spec,
    save_spec,
    spec_from_dict,
    spec_to_dict,
    spec_to_toml,
)
from .chatterbox import CHATTERBOX_SPEC, ChatterboxScenario
from .flagstaff import FLAGSTAFF_SPEC, FlagstaffScenario
from .porter import PORTER_SPEC, PorterScenario
from .roaming import (
    RoamingProfile,
    RoamingScenario,
    WavePointSite,
    evenly_spaced_sites,
)
from .wean import WEAN_SPEC, WeanScenario
from .mobility import MobilityFamily, SHUTTLE_SPEC, ShuttleScenario
from .ran import FieldDist, RAN_PRESETS, RAN3G_SPEC, RAN4G_SPEC, \
    Ran3gScenario, Ran4gScenario, RanFamily
from .leo import LEO_SPEC, LeoFamily, LeoScenario
from .families import FAMILY_KINDS, family_from_dict, spec_origin
from .generate import (
    GENERATOR_KINDS,
    GENERATOR_VERSION,
    generate_spec,
    generate_specs,
    generated_scenario,
)

# The paper's four evaluation scenarios, in presentation order.  The
# registry (scenario_names / registered_scenarios) is the open set.
ALL_SCENARIOS = (WeanScenario, PorterScenario, FlagstaffScenario,
                 ChatterboxScenario)

__all__ = [
    "ALL_SCENARIOS",
    "CHATTERBOX_SPEC",
    "CONTROL_POINT_SPACING",
    "ChatterboxScenario",
    "Checkpoint",
    "FAMILY_KINDS",
    "FLAGSTAFF_SPEC",
    "FieldDist",
    "FieldPiece",
    "FlagstaffScenario",
    "GENERATOR_KINDS",
    "GENERATOR_VERSION",
    "LEO_SPEC",
    "LeoFamily",
    "LeoScenario",
    "LossModel",
    "MobilityFamily",
    "PORTER_SPEC",
    "PorterScenario",
    "RAN3G_SPEC",
    "RAN4G_SPEC",
    "RAN_PRESETS",
    "Ran3gScenario",
    "Ran4gScenario",
    "RanFamily",
    "RoamingProfile",
    "RoamingScenario",
    "SHUTTLE_SPEC",
    "Scenario",
    "ScenarioEntry",
    "ScenarioSpec",
    "ShuttleScenario",
    "SpecError",
    "SpecScenario",
    "WEAN_SPEC",
    "WavePointSite",
    "WeanScenario",
    "evaluate_field",
    "evenly_spaced_sites",
    "family_from_dict",
    "generate_spec",
    "generate_specs",
    "generated_scenario",
    "jittered",
    "load_scenario",
    "load_spec",
    "register",
    "register_spec_file",
    "registered_scenarios",
    "resolve_scenario",
    "save_spec",
    "scenario_by_name",
    "scenario_names",
    "spec_from_dict",
    "spec_origin",
    "spec_to_dict",
    "spec_to_toml",
    "spike",
    "unregister",
]
