"""The four evaluation scenarios (§4.1)."""

from .base import CONTROL_POINT_SPACING, Checkpoint, Scenario, jittered, spike
from .chatterbox import ChatterboxScenario
from .flagstaff import FlagstaffScenario
from .porter import PorterScenario
from .roaming import (
    RoamingProfile,
    RoamingScenario,
    WavePointSite,
    evenly_spaced_sites,
)
from .wean import WeanScenario

ALL_SCENARIOS = (WeanScenario, PorterScenario, FlagstaffScenario,
                 ChatterboxScenario)


def scenario_by_name(name: str) -> Scenario:
    """Instantiate a scenario by its lowercase name."""
    for cls in ALL_SCENARIOS:
        if cls.name == name.lower():
            return cls()
    raise KeyError(f"unknown scenario {name!r}; "
                   f"choose from {[c.name for c in ALL_SCENARIOS]}")


__all__ = [
    "ALL_SCENARIOS",
    "CONTROL_POINT_SPACING",
    "ChatterboxScenario",
    "Checkpoint",
    "FlagstaffScenario",
    "PorterScenario",
    "RoamingProfile",
    "RoamingScenario",
    "WavePointSite",
    "evenly_spaced_sites",
    "Scenario",
    "WeanScenario",
    "jittered",
    "scenario_by_name",
    "spike",
]
