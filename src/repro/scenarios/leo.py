"""LEO bent-pipe scenario: elevation-dependent delay over a pass.

A low-Earth-orbit satellite pass is compiled into channel fields from
orbital geometry: the satellite rises from ``min_elevation_deg``, peaks
at ``peak_elevation_deg`` mid-pass, and sets again —
``E(u) = min + (peak - min) * sin(pi * u)``.  At each traversal sample
the slant range follows from the spherical-Earth geometry

    slant = sqrt((Re + h)^2 - (Re cos E)^2) - Re sin E

and the bent-pipe media-access latency is the two-leg light-time plus a
fixed processing delay: ``2 * slant / c + processing``.  Low elevation
means a longer slant, more atmosphere and a weaker link, so signal,
loss and bandwidth interpolate between their horizon and peak values
by normalized elevation.

Like the other families the compiler is pure — trial-to-trial
variation comes from the jitter sigmas on the compiled pieces, drawn
through the per-trial RNG stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from .base import Checkpoint
from .registry import register
from .spec import FieldPiece, LossModel, ScenarioSpec, SpecError, SpecScenario

EARTH_RADIUS_KM = 6371.0
LIGHT_SPEED_KM_S = 299_792.458


def slant_range_km(altitude_km: float, elevation_deg: float) -> float:
    """Ground-to-satellite slant range for a spherical Earth."""
    e = math.radians(elevation_deg)
    re = EARTH_RADIUS_KM
    orbit = re + altitude_km
    return math.sqrt(orbit * orbit - (re * math.cos(e)) ** 2) \
        - re * math.sin(e)


def bent_pipe_delay_s(altitude_km: float, elevation_deg: float,
                      processing_delay_s: float) -> float:
    """Two-leg (up + down through the satellite) light-time plus
    processing."""
    slant = slant_range_km(altitude_km, elevation_deg)
    return 2.0 * slant / LIGHT_SPEED_KM_S + processing_delay_s


def elevation_at(u: float, min_elevation_deg: float,
                 peak_elevation_deg: float) -> float:
    """Elevation over the pass: rises to the peak at ``u=0.5``, sets."""
    return min_elevation_deg + (peak_elevation_deg - min_elevation_deg) \
        * math.sin(math.pi * min(1.0, max(0.0, u)))


@dataclass(frozen=True)
class LeoFamily:
    """A LEO bent-pipe pass compiled from orbital geometry."""

    kind = "leo"

    altitude_km: float = 550.0
    min_elevation_deg: float = 25.0
    peak_elevation_deg: float = 75.0
    processing_delay_s: float = 0.004
    peak_signal_db: float = 22.0
    horizon_signal_db: float = 8.0
    loss_peak: float = 0.002
    loss_horizon: float = 0.03
    bandwidth_peak: float = 0.85
    bandwidth_horizon: float = 0.30
    samples: int = 48

    def validate(self) -> "LeoFamily":
        if not 160.0 <= self.altitude_km <= 2000.0:
            raise SpecError(f"altitude_km must lie in [160, 2000] (LEO), "
                            f"got {self.altitude_km}")
        if not 0.0 <= self.min_elevation_deg < self.peak_elevation_deg \
                <= 90.0:
            raise SpecError(
                f"need 0 <= min_elevation < peak_elevation <= 90, got "
                f"{self.min_elevation_deg} / {self.peak_elevation_deg}")
        if self.processing_delay_s < 0:
            raise SpecError("processing_delay_s cannot be negative")
        if self.peak_signal_db <= self.horizon_signal_db:
            raise SpecError("peak_signal_db must exceed horizon_signal_db")
        if not 0.0 <= self.loss_peak <= self.loss_horizon <= 1.0:
            raise SpecError("need 0 <= loss_peak <= loss_horizon <= 1")
        if not 0.0 < self.bandwidth_horizon <= self.bandwidth_peak <= 1.0:
            raise SpecError(
                "need 0 < bandwidth_horizon <= bandwidth_peak <= 1")
        if not 4 <= self.samples <= 512:
            raise SpecError(f"samples must lie in [4, 512], "
                            f"got {self.samples}")
        return self

    def compile_fields(self) -> Dict[str, Tuple[FieldPiece, ...]]:
        """Derive the four channel fields over the pass — pure, no RNG."""
        self.validate()
        signal, loss, bandwidth, access = [], [], [], []
        span_deg = self.peak_elevation_deg - self.min_elevation_deg
        for i in range(self.samples):
            end = 1.0 if i == self.samples - 1 else (i + 1) / self.samples
            elev = elevation_at((i + 0.5) / self.samples,
                                self.min_elevation_deg,
                                self.peak_elevation_deg)
            q = (elev - self.min_elevation_deg) / span_deg
            delay = bent_pipe_delay_s(self.altitude_km, elev,
                                      self.processing_delay_s)
            sig = self.horizon_signal_db \
                + (self.peak_signal_db - self.horizon_signal_db) * q
            lo_val = self.loss_horizon \
                + (self.loss_peak - self.loss_horizon) * q
            bw = self.bandwidth_horizon \
                + (self.bandwidth_peak - self.bandwidth_horizon) * q
            signal.append(FieldPiece(end=end, base=sig, rel=0.10, lo=1.0,
                                     hi=self.peak_signal_db + 6.0))
            loss.append(FieldPiece(end=end, base=lo_val, rel=0.4,
                                   hi=min(0.5, 2.0 * self.loss_horizon
                                          + 0.05)))
            bandwidth.append(FieldPiece(end=end, base=bw, rel=0.05,
                                        lo=0.10, hi=0.95))
            # The delay itself is deterministic geometry; keep only a
            # small queueing jitter on top.
            access.append(FieldPiece(end=end, base=delay, rel=0.05,
                                     lo=self.processing_delay_s,
                                     hi=4.0 * delay))
        return {"signal": tuple(signal), "loss": tuple(loss),
                "bandwidth": tuple(bandwidth), "access": tuple(access)}

    # -- serialization -------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "altitude_km": self.altitude_km,
            "min_elevation_deg": self.min_elevation_deg,
            "peak_elevation_deg": self.peak_elevation_deg,
            "processing_delay_s": self.processing_delay_s,
            "peak_signal_db": self.peak_signal_db,
            "horizon_signal_db": self.horizon_signal_db,
            "loss_peak": self.loss_peak,
            "loss_horizon": self.loss_horizon,
            "bandwidth_peak": self.bandwidth_peak,
            "bandwidth_horizon": self.bandwidth_horizon,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str) -> "LeoFamily":
        known = {"kind", "altitude_km", "min_elevation_deg",
                 "peak_elevation_deg", "processing_delay_s",
                 "peak_signal_db", "horizon_signal_db", "loss_peak",
                 "loss_horizon", "bandwidth_peak", "bandwidth_horizon",
                 "samples"}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"{where}: unknown LEO keys "
                            f"{sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for key in known - {"kind", "samples"}:
            if key in data:
                kwargs[key] = float(data[key])
        if "samples" in data:
            kwargs["samples"] = int(data["samples"])
        return cls(**kwargs).validate()


# ======================================================================
# Builtin: one overhead Starlink-class pass
# ======================================================================
LEO_FAMILY = LeoFamily()

LEO_SPEC = ScenarioSpec(
    name="leo",
    duration=180.0,
    checkpoints=(
        Checkpoint("rise", 0.0),
        Checkpoint("climb", 0.25),
        Checkpoint("zenith", 0.5),
        Checkpoint("descend", 0.75),
        Checkpoint("set", 0.96),
    ),
    has_motion=False,  # the ground terminal is stationary
    description="LEO bent-pipe satellite pass with elevation-dependent "
                "delay.",
    fields=LEO_FAMILY.compile_fields(),
    loss_model=LossModel(up_scale=1.0, down_scale=1.0),
    family=LEO_FAMILY,
)


@register
class LeoScenario(SpecScenario):
    """One LEO satellite pass compiled from orbital geometry."""

    spec = LEO_SPEC
