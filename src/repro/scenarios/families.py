"""Profile-family dispatch: kind strings to family classes.

A *family* is a pure compiler from a small parameter table to the four
piecewise channel fields a :class:`~repro.scenarios.spec.ScenarioSpec`
carries.  Three kinds exist:

========  =============================================  ==============
kind      module                                         description
========  =============================================  ==============
mobility  :mod:`repro.scenarios.mobility`                waypoints
                                                         through a
                                                         path-loss
                                                         model
ran       :mod:`repro.scenarios.ran`                     ERRANT-style
                                                         statistical
                                                         cell
leo       :mod:`repro.scenarios.leo`                     bent-pipe
                                                         satellite
                                                         pass
========  =============================================  ==============

Family tables serialize in place of the derived ``fields`` (see
``spec_to_dict``); loading recompiles the identical pieces because the
compilers take no RNG.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .leo import LeoFamily
from .mobility import MobilityFamily
from .ran import RanFamily
from .registry import SOURCE_BUILTIN
from .spec import ScenarioSpec, SpecError

FAMILY_TYPES = (MobilityFamily, RanFamily, LeoFamily)
FAMILY_KINDS = {cls.kind: cls for cls in FAMILY_TYPES}


def family_from_dict(data: Any, where: str):
    """Build and validate a family object from its serialized table."""
    if not isinstance(data, Mapping):
        raise SpecError(f"{where}: family must be a table/object, "
                        f"got {type(data).__name__}")
    kind = data.get("kind")
    if kind not in FAMILY_KINDS:
        raise SpecError(f"{where}: unknown family kind {kind!r}; "
                        f"choose from {tuple(FAMILY_KINDS)}")
    return FAMILY_KINDS[kind].from_dict(data, where)


def spec_family_kind(spec: ScenarioSpec) -> Optional[str]:
    """The family kind string for a spec, or None for hand-written."""
    return spec.family.kind if spec.family is not None else None


def spec_origin(spec: Optional[ScenarioSpec], source: str) -> str:
    """Classify where a scenario came from: builtin / spec-file /
    generated.

    ``source`` is the registry entry's source (``builtin`` or a file
    path); a non-empty ``generator`` stamp on the spec marks a fuzz- or
    script-generated scenario regardless of how it was registered.
    """
    if spec is not None and spec.generator:
        return "generated"
    if source == SOURCE_BUILTIN:
        return "builtin"
    return "spec-file"
