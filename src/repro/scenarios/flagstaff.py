"""Flagstaff: outdoor travel (§4.1.2, Figure 3).

Leave Porter Hall (y0–y1), walk the back edge of campus through
Schenley Park (y1–y5), then around Flagstaff Hill (y5–y9) — always in
line of sight of WavePoint-bearing buildings but far from them.

Relative to Porter: signal quality is somewhat lower overall — highly
variable at the start, then dropping sharply in the park and staying
low; *latency is better* (no indoor multipath/roaming); *bandwidth is
somewhat better*; but *loss is markedly worse*, especially late in the
traversal.  Live send/receive are strongly asymmetric here — the
paper's FTP results show send slower than receive by more than 20
seconds, the clearest violation of the distillation symmetry
assumption (§5.3).  The asymmetry lives in the spec's ``loss_model``:
uplink loss is scaled 2.2× (capped at 20 %) while downlink sees only
0.3× of the drawn loss.
"""

from __future__ import annotations

from .base import Checkpoint
from .registry import register
from .spec import FieldPiece, LossModel, ScenarioSpec, SpecScenario

FLAGSTAFF_SPEC = ScenarioSpec(
    name="flagstaff",
    duration=240.0,
    checkpoints=tuple(
        Checkpoint(f"y{i}", frac)
        for i, frac in enumerate((0.0, 0.10, 0.20, 0.31, 0.42, 0.52,
                                  0.64, 0.76, 0.87, 0.96))
    ),
    description="Outdoor walk through Schenley Park and around "
                "Flagstaff Hill.",
    fields={
        # Signal: variable start, sharp fall entering the park, then low.
        "signal": (
            FieldPiece(end=0.10, base=15.0, rel=0.40),
            FieldPiece(end=0.20, base=15.0, slope=-7.0, span=0.10,
                       rel=0.20),
            FieldPiece(end=1.0, base=7.5, rel=0.18),
        ),
        # Loss: the weak point; worsens along the traversal.
        "loss": (
            FieldPiece(end=0.20, base=0.005, rel=0.45, hi=0.05),
            FieldPiece(end=0.55, base=0.008, rel=0.45, hi=0.05),
            FieldPiece(end=1.0, base=0.018, rel=0.45, hi=0.05),
        ),
        # Bandwidth somewhat better than Porter.
        "bandwidth": (
            FieldPiece(end=1.0, base=0.76, rel=0.03, lo=0.5, hi=0.84),
        ),
        # Latency much better than Porter (outdoors, no roaming).
        "access": (
            FieldPiece(end=1.0, base=0.2e-3, rel=0.5, lo=0.05e-3,
                       spike_prob=0.015, spike_magnitude=12e-3),
        ),
    },
    # Strong asymmetry: uplink (laptop -> distant WavePoint) loses far
    # more than downlink — live FTP send >> recv here.
    loss_model=LossModel(up_scale=2.2, up_cap=0.20, down_scale=0.30),
)


@register
class FlagstaffScenario(SpecScenario):
    """Outdoor walk through Schenley Park and around Flagstaff Hill."""

    spec = FLAGSTAFF_SPEC
