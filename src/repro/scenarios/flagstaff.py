"""Flagstaff: outdoor travel (§4.1.2, Figure 3).

Leave Porter Hall (y0–y1), walk the back edge of campus through
Schenley Park (y1–y5), then around Flagstaff Hill (y5–y9) — always in
line of sight of WavePoint-bearing buildings but far from them.

Relative to Porter: signal quality is somewhat lower overall — highly
variable at the start, then dropping sharply in the park and staying
low; *latency is better* (no indoor multipath/roaming); *bandwidth is
somewhat better*; but *loss is markedly worse*, especially late in the
traversal.  Live send/receive are strongly asymmetric here — the
paper's FTP results show send slower than receive by more than 20
seconds, the clearest violation of the distillation symmetry
assumption (§5.3).
"""

from __future__ import annotations

import random

from ..net.wavelan import ChannelConditions
from .base import Checkpoint, Scenario, jittered, spike


class FlagstaffScenario(Scenario):
    """Outdoor walk through Schenley Park and around Flagstaff Hill."""

    name = "flagstaff"
    duration = 240.0
    checkpoints = tuple(
        Checkpoint(f"y{i}", frac)
        for i, frac in enumerate((0.0, 0.10, 0.20, 0.31, 0.42, 0.52,
                                  0.64, 0.76, 0.87, 0.96))
    )

    def base_conditions(self, u: float,
                        rng: random.Random) -> ChannelConditions:
        # --- signal: variable start, sharp fall entering the park ---------
        if u < 0.10:
            signal = jittered(rng, 15.0, rel=0.40)
        elif u < 0.20:
            ramp = (u - 0.10) / 0.10
            signal = jittered(rng, 15.0 - 7.0 * ramp, rel=0.20)
        else:
            signal = jittered(rng, 7.5, rel=0.18)

        # --- loss: the weak point; worsens along the traversal ------------
        if u < 0.20:
            base_loss = 0.005
        elif u < 0.55:
            base_loss = 0.008
        else:
            base_loss = 0.018              # late traversal: worst
        loss = jittered(rng, base_loss, rel=0.45, hi=0.05)

        # --- bandwidth somewhat better than Porter ------------------------
        bw = jittered(rng, 0.76, rel=0.03, lo=0.5, hi=0.84)

        # --- latency much better than Porter (outdoors, no roaming) -------
        access = jittered(rng, 0.2e-3, rel=0.5, lo=0.05e-3)
        access += spike(rng, 0.015, 12e-3)

        return ChannelConditions(
            signal_level=signal,
            # Strong asymmetry: uplink (laptop -> distant WavePoint) loses
            # far more than downlink — live FTP send >> recv here.
            loss_prob_up=min(0.20, loss * 2.2),
            loss_prob_down=loss * 0.30,
            bandwidth_factor=bw,
            access_latency_mean=access,
        )
