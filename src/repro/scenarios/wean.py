"""Wean: traveling to a classroom, with an elevator ride (§4.1.3, Figure 4).

Four motion regions inside Wean Hall:

1. **z0–z3** — from a graduate office with known-poor connectivity,
   down a hallway to the elevator: variable but acceptable signal;
2. **z3–z4** — waiting for the elevator: quite good signal;
3. **z4–z5** — riding the elevator three floors: signal drops
   precipitously, latency peaks around 350 ms, loss is "atrocious";
4. **z5–z7** — walking to the classroom: good signal again.

Bandwidth runs somewhat lower than Porter throughout.

The traversal is pure data: ``WEAN_SPEC`` below.  Wean draws its
media-access latency *before* bandwidth (``draw_order``), matching the
original hand-written profile so the per-trial RNG stream is consumed
identically — the golden-master corpus pins this byte-for-byte.
"""

from __future__ import annotations

from .base import Checkpoint
from .registry import register
from .spec import FieldPiece, LossModel, ScenarioSpec, SpecScenario

# Region boundaries as fractions of the traversal.
WALK_END = 0.38       # z0-z3
WAIT_END = 0.55       # z3-z4
ELEVATOR_END = 0.68   # z4-z5
# z5-z7 afterwards

WEAN_SPEC = ScenarioSpec(
    name="wean",
    duration=240.0,
    checkpoints=tuple(
        Checkpoint(f"z{i}", frac)
        for i, frac in enumerate((0.0, 0.13, 0.26, 0.38, 0.55, 0.68,
                                  0.84, 0.96))
    ),
    description="Office-to-classroom walk inside Wean Hall, elevator "
                "included.",
    draw_order=("signal", "loss", "access", "bandwidth"),
    fields={
        # Office with poor connectivity improving along the hallway,
        # good by the elevator, collapsing inside it, good again after.
        "signal": (
            FieldPiece(end=WALK_END, base=10.0, slope=8.0, span=WALK_END,
                       rel=0.30),
            FieldPiece(end=WAIT_END, base=22.0, rel=0.08),
            FieldPiece(end=ELEVATOR_END, base=2.0, rel=0.6),
            FieldPiece(end=1.0, base=19.0, rel=0.12),
        ),
        "loss": (
            FieldPiece(end=WALK_END, base=0.005, slope=-0.003,
                       span=WALK_END, rel=0.5, hi=0.025),
            FieldPiece(end=WAIT_END, base=0.004, rel=0.5, hi=0.02),
            # The elevator: loss atrocious.
            FieldPiece(end=ELEVATOR_END, base=0.40, rel=0.25, hi=0.70),
            FieldPiece(end=1.0, base=0.006, rel=0.5, hi=0.03),
        ),
        # Latency ~350 ms inside the elevator, sub-millisecond elsewhere.
        "access": (
            FieldPiece(end=WALK_END, base=0.4e-3, rel=0.5, lo=0.1e-3,
                       spike_prob=0.02, spike_magnitude=12e-3),
            FieldPiece(end=WAIT_END, base=0.3e-3, rel=0.4, lo=0.1e-3),
            FieldPiece(end=ELEVATOR_END, base=120e-3, rel=0.5, lo=20e-3),
            FieldPiece(end=1.0, base=0.4e-3, rel=0.5, lo=0.1e-3),
        ),
        # Bandwidth somewhat lower than Porter's throughout; terrible
        # inside the elevator.
        "bandwidth": (
            FieldPiece(end=WAIT_END, base=0.66, rel=0.04, lo=0.40,
                       hi=0.74),
            FieldPiece(end=ELEVATOR_END, base=0.30, rel=0.3, lo=0.10,
                       hi=0.55),
            FieldPiece(end=1.0, base=0.66, rel=0.04, lo=0.40, hi=0.74),
        ),
    },
    loss_model=LossModel(up_scale=1.2, up_cap=0.95, down_scale=0.85),
)


@register
class WeanScenario(SpecScenario):
    """Office-to-classroom walk inside Wean Hall, elevator included."""

    spec = WEAN_SPEC
