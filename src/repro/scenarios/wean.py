"""Wean: traveling to a classroom, with an elevator ride (§4.1.3, Figure 4).

Four motion regions inside Wean Hall:

1. **z0–z3** — from a graduate office with known-poor connectivity,
   down a hallway to the elevator: variable but acceptable signal;
2. **z3–z4** — waiting for the elevator: quite good signal;
3. **z4–z5** — riding the elevator three floors: signal drops
   precipitously, latency peaks around 350 ms, loss is "atrocious";
4. **z5–z7** — walking to the classroom: good signal again.

Bandwidth runs somewhat lower than Porter throughout.
"""

from __future__ import annotations

import random

from ..net.wavelan import ChannelConditions
from .base import Checkpoint, Scenario, jittered, spike

# Region boundaries as fractions of the traversal.
WALK_END = 0.38       # z0-z3
WAIT_END = 0.55       # z3-z4
ELEVATOR_END = 0.68   # z4-z5
# z5-z7 afterwards


class WeanScenario(Scenario):
    """Office-to-classroom walk inside Wean Hall, elevator included."""

    name = "wean"
    duration = 240.0
    checkpoints = tuple(
        Checkpoint(f"z{i}", frac)
        for i, frac in enumerate((0.0, 0.13, 0.26, 0.38, 0.55, 0.68,
                                  0.84, 0.96))
    )

    def base_conditions(self, u: float,
                        rng: random.Random) -> ChannelConditions:
        if u < WALK_END:
            # Office with poor connectivity, improving along the hallway.
            ramp = u / WALK_END
            signal = jittered(rng, 10.0 + 8.0 * ramp, rel=0.30)
            loss = jittered(rng, 0.005 - 0.003 * ramp, rel=0.5, hi=0.025)
            access = jittered(rng, 0.4e-3, rel=0.5, lo=0.1e-3)
            access += spike(rng, 0.02, 12e-3)
        elif u < WAIT_END:
            # Waiting by the elevator: quite good.
            signal = jittered(rng, 22.0, rel=0.08)
            loss = jittered(rng, 0.004, rel=0.5, hi=0.02)
            access = jittered(rng, 0.3e-3, rel=0.4, lo=0.1e-3)
        elif u < ELEVATOR_END:
            # The elevator: signal collapses, latency ~350 ms, loss atrocious.
            signal = jittered(rng, 2.0, rel=0.6)
            loss = jittered(rng, 0.40, rel=0.25, hi=0.70)
            access = jittered(rng, 120e-3, rel=0.5, lo=20e-3)
        else:
            # Walk to the classroom: good again.
            signal = jittered(rng, 19.0, rel=0.12)
            loss = jittered(rng, 0.006, rel=0.5, hi=0.03)
            access = jittered(rng, 0.4e-3, rel=0.5, lo=0.1e-3)

        # Bandwidth somewhat lower than Porter's throughout; terrible
        # inside the elevator.
        if u < WAIT_END or u >= ELEVATOR_END:
            bw = jittered(rng, 0.66, rel=0.04, lo=0.40, hi=0.74)
        else:
            bw = jittered(rng, 0.30, rel=0.3, lo=0.10, hi=0.55)

        return ChannelConditions(
            signal_level=signal,
            loss_prob_up=min(0.95, loss * 1.2),
            loss_prob_down=loss * 0.85,
            bandwidth_factor=bw,
            access_latency_mean=access,
        )
