"""The scenario registry.

Scenarios register themselves by name — builtin classes through the
:func:`register` decorator, spec files through
:func:`register_spec_file` — and every consumer (CLI, validation
harness, check runner, golden corpus) resolves them through one dict
lookup instead of scanning a hard-coded tuple.

``resolve_scenario`` additionally accepts a *path* to a TOML/JSON spec
file, which is what lets a scenario defined purely as data run through
the whole collect → distill → modulate pipeline from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .base import Scenario

SOURCE_BUILTIN = "builtin"


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: how to build it and where it came from."""

    name: str
    factory: Callable[[], Scenario]
    source: str = SOURCE_BUILTIN

    def make(self) -> Scenario:
        return self.factory()


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register(cls=None, *, name: Optional[str] = None,
             source: str = SOURCE_BUILTIN):
    """Class decorator adding a scenario to the registry.

    The registered name defaults to the class's ``name`` attribute.
    Registration is idempotent for the same factory; a *different*
    factory under an existing name is an error (catches copy-paste
    name collisions at import time).
    """

    def _register(factory):
        reg_name = (name or getattr(factory, "name", "")).lower()
        if not reg_name:
            raise ValueError(f"{factory!r} has no scenario name")
        existing = _REGISTRY.get(reg_name)
        if existing is not None and existing.factory is not factory:
            raise ValueError(
                f"scenario name {reg_name!r} already registered by "
                f"{existing.factory!r}")
        _REGISTRY[reg_name] = ScenarioEntry(name=reg_name, factory=factory,
                                            source=source)
        return factory

    if cls is None:
        return _register
    return _register(cls)


def unregister(name: str) -> None:
    """Remove a registration (test helper; unknown names are ignored)."""
    _REGISTRY.pop(name.lower(), None)


def register_spec_file(path: Union[str, Path]) -> ScenarioEntry:
    """Load a TOML/JSON spec file and register it under its own name."""
    from .spec import load_spec, SpecScenario

    path = Path(path)
    spec = load_spec(path)

    def factory(spec=spec):
        return SpecScenario(spec)

    factory.name = spec.name
    register(factory, name=spec.name, source=str(path))
    return _REGISTRY[spec.name]


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def registered_scenarios() -> List[ScenarioEntry]:
    """All registry entries, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def scenario_by_name(name: str) -> Scenario:
    """Instantiate a registered scenario by its (lowercase) name."""
    entry = _REGISTRY.get(name.lower())
    if entry is None:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {scenario_names()}")
    return entry.make()


def resolve_scenario(name_or_path: Union[str, Scenario]) -> Scenario:
    """A scenario from a registered name or a TOML/JSON spec file path.

    Already-built :class:`Scenario` instances pass through unchanged, so
    APIs can accept either form.
    """
    if isinstance(name_or_path, Scenario):
        return name_or_path
    text = str(name_or_path)
    if text.lower().endswith((".toml", ".json")) or "/" in text \
            or "\\" in text:
        from .spec import load_scenario

        path = Path(text)
        if not path.exists():
            raise FileNotFoundError(f"scenario spec file not found: {text}")
        return load_scenario(path)
    return scenario_by_name(text)
