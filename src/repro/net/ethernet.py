"""Shared-medium Ethernet segment.

Classic 10 Mb/s Ethernet is half duplex: every frame occupies the whole
segment while it is on the wire, so inbound and outbound traffic at a
host genuinely interfere.  The paper's delay-compensation step (§3.3)
measures exactly this — the long-term bottleneck per-byte cost of the
modulating LAN — so the segment models a single shared transmission
horizon rather than independent per-direction pipes.

CSMA/CD is simplified to FIFO arbitration with a short inter-frame gap;
collisions are not modelled (the isolated two-host segments used for
modulation would see almost none).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..sim import Simulator
from .device import NetworkDevice
from .packet import Packet
from .queue import DropTailQueue


class EthernetDevice(NetworkDevice):
    """A NIC attached to an :class:`EthernetSegment`."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 queue: Optional[DropTailQueue] = None):
        super().__init__(sim, name, address, queue)
        self.segment: Optional["EthernetSegment"] = None
        self.promiscuous = False
        self._pending = False

    def _kick_transmit(self) -> None:
        if self._pending or self.segment is None or self.queue.empty:
            return
        self._pending = True
        self.segment.request_transmit(self)

    def _grant(self) -> Optional[Packet]:
        """Segment grants the medium; hand it the head frame."""
        self._pending = False
        packet = self.queue.poll()
        if packet is not None:
            self._record_tx(packet)
        return packet

    def _after_transmit(self) -> None:
        if not self.queue.empty:
            self._kick_transmit()


class EthernetSegment:
    """A shared bus connecting any number of :class:`EthernetDevice`.

    Frames are delivered to the device whose address matches the IP
    destination when one is attached; otherwise the frame floods to all
    other devices (bridges listen promiscuously).
    """

    INTERFRAME_GAP = 9.6e-6  # 96 bit times at 10 Mb/s

    def __init__(self, sim: Simulator, bandwidth_bps: float = 10e6,
                 prop_delay: float = 25e-6, name: str = "ether0"):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.name = name
        self.devices: List[EthernetDevice] = []
        self._busy = False
        self._waiters: Deque[EthernetDevice] = deque()
        self.frames_carried = 0
        self.bytes_carried = 0

    # ------------------------------------------------------------------
    def attach(self, device: EthernetDevice) -> None:
        if device.segment is not None:
            raise ValueError(f"{device.name} already attached")
        device.segment = self
        self.devices.append(device)

    def per_byte_cost(self) -> float:
        """Ideal per-byte serialization cost of the segment (s/byte)."""
        return 8.0 / self.bandwidth_bps

    # ------------------------------------------------------------------
    def request_transmit(self, device: EthernetDevice) -> None:
        self._waiters.append(device)
        self._try_grant()

    def _try_grant(self) -> None:
        if self._busy or not self._waiters:
            return
        device = self._waiters.popleft()
        packet = device._grant()
        if packet is None:
            self._try_grant()
            return
        self._busy = True
        size = packet.size
        tx_time = size * 8.0 / self.bandwidth_bps
        self.frames_carried += 1
        self.bytes_carried += size
        # When propagation outlasts the inter-frame gap (every real
        # segment here), the entire frame lifetime — serialization,
        # propagation, release — rides a single event; otherwise the
        # classic sequence keeps delivery at exactly ``prop_delay``.
        if self.prop_delay >= self.INTERFRAME_GAP:
            self.sim.call_later(tx_time + self.prop_delay,
                              self._deliver_release, device, packet)
        else:
            self.sim.call_later(tx_time, self._transmit_done, device, packet)

    def _transmit_done(self, sender: EthernetDevice, packet: Packet) -> None:
        sender._after_transmit()
        self.sim.call_later(self.prop_delay, self._deliver, sender, packet)
        self.sim.call_later(self.INTERFRAME_GAP, self._release)

    def _deliver_release(self, sender: EthernetDevice, packet: Packet) -> None:
        # The sender re-queues before the medium is released so its
        # next frame contends in the same arbitration round.
        sender._after_transmit()
        self._busy = False
        self._try_grant()
        self._deliver(sender, packet)

    def _release(self) -> None:
        self._busy = False
        self._try_grant()

    def _deliver(self, sender: EthernetDevice, packet: Packet) -> None:
        dst = packet.ip.dst if packet.ip is not None else None
        targets = [d for d in self.devices if d is not sender and d.address == dst]
        if not targets:
            targets = [d for d in self.devices if d is not sender]
        # Clone before delivering (not after): the receiving stack may
        # recycle the frame it was handed, so later copies must be taken
        # from a pristine packet.
        last = len(targets) - 1
        for i, device in enumerate(targets):
            if i < last:
                spare = packet.clone()
                device.handle_receive(packet)
                packet = spare
            else:
                device.handle_receive(packet)
