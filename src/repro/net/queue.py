"""Drop-tail packet queues with accounting."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .packet import Packet


class DropTailQueue:
    """A bounded FIFO that drops arrivals when full.

    Limits may be expressed in packets, bytes, or both; a packet is
    accepted only if it fits under every configured limit.
    """

    def __init__(self, max_packets: Optional[int] = 100,
                 max_bytes: Optional[int] = None, name: str = ""):
        if max_packets is None and max_bytes is None:
            raise ValueError("queue must have at least one limit")
        self.max_packets = max_packets
        self.max_bytes = max_bytes
        self.name = name
        self._items: Deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.dropped_bytes = 0

    def offer(self, packet: Packet) -> bool:
        """Enqueue ``packet`` if room remains; returns False on drop."""
        if self.max_packets is not None and len(self._items) >= self.max_packets:
            self._drop(packet)
            return False
        if self.max_bytes is not None and self._bytes + packet.size > self.max_bytes:
            self._drop(packet)
            return False
        self._items.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def poll(self) -> Optional[Packet]:
        """Dequeue the head packet, or None if empty."""
        if not self._items:
            return None
        packet = self._items.popleft()
        self._bytes -= packet.size
        self.dequeued += 1
        return packet

    def peek(self) -> Optional[Packet]:
        return self._items[0] if self._items else None

    def _drop(self, packet: Packet) -> None:
        self.dropped += 1
        self.dropped_bytes += packet.size

    def stats(self) -> dict:
        """Accounting snapshot (Host.stats / metrics collectors)."""
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "dropped_bytes": self.dropped_bytes,
            "depth": len(self._items),
            "depth_bytes": self._bytes,
        }

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def empty(self) -> bool:
        return not self._items
