"""Network interface devices.

A :class:`NetworkDevice` is the boundary between a host's protocol stack
and a transmission medium.  Two properties matter for the paper:

* **Tracing hooks.**  The collection phase (§3.1.2) "places hooks in the
  input and output routines of traced devices".  Devices expose
  ``input_hooks`` and ``output_hooks`` lists; the in-kernel packet
  tracer registers callables there and sees every frame with its
  timestamp.
* **Status reporting.**  Wireless devices report signal level, signal
  quality and silence level (§3.1.1) through :meth:`device_status`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim import Simulator
from .packet import Packet
from .queue import DropTailQueue

# Hook signature: hook(device, packet, direction, timestamp)
Hook = Callable[["NetworkDevice", Packet, str, float], None]

DIR_IN = "in"
DIR_OUT = "out"


class NetworkDevice:
    """Base class for NICs and radios."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 queue: Optional[DropTailQueue] = None):
        self.sim = sim
        self.name = name
        self.address = address
        self.queue = queue or DropTailQueue(max_packets=100, name=f"{name}.txq")
        self.up = True
        self.upstream: Optional[Callable[[Packet], None]] = None
        self.input_hooks: List[Hook] = []
        self.output_hooks: List[Hook] = []
        # Lifecycle-tracer scope (repro.obs); None keeps the device on
        # the uninstrumented fast path.
        self.tracer = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_drops = 0

    # ------------------------------------------------------------------
    # Downward path (stack -> medium)
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Accept a frame from the protocol stack for transmission."""
        tracer = self.tracer
        if not self.up:
            self.tx_drops += 1
            if tracer is not None:
                tracer.drop("dev", packet, "device_down", device=self.name)
            return
        for hook in self.output_hooks:
            hook(self, packet, DIR_OUT, self.sim.now)
        if not self.queue.offer(packet):
            self.tx_drops += 1
            if tracer is not None:
                tracer.drop("dev", packet, "queue_full", device=self.name)
            return
        if tracer is not None:
            tracer.event("dev", "enqueue", packet, device=self.name)
        self._kick_transmit()

    def _kick_transmit(self) -> None:
        """Start the transmit machinery if idle.  Subclasses implement."""
        raise NotImplementedError

    def _record_tx(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.size
        if self.tracer is not None:
            self.tracer.event("dev", "tx", packet, device=self.name)

    # ------------------------------------------------------------------
    # Upward path (medium -> stack)
    # ------------------------------------------------------------------
    def handle_receive(self, packet: Packet) -> None:
        """Called by the medium when a frame arrives at this device."""
        tracer = self.tracer
        if not self.up:
            if tracer is not None:
                tracer.drop("dev", packet, "device_down", device=self.name)
            return
        self.rx_packets += 1
        self.rx_bytes += packet.size
        if tracer is not None:
            tracer.event("dev", "rx", packet, device=self.name)
        for hook in self.input_hooks:
            hook(self, packet, DIR_IN, self.sim.now)
        if self.upstream is not None:
            self.upstream(packet)

    # ------------------------------------------------------------------
    def device_status(self) -> Dict[str, Any]:
        """Device characteristics snapshot (subclasses extend)."""
        return {
            "device": self.name,
            "tx_packets": self.tx_packets,
            "rx_packets": self.rx_packets,
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name} addr={self.address}>"


class LoopbackDevice(NetworkDevice):
    """Delivers every transmitted frame back to its own stack.

    Useful in tests and as the attachment point for a modulation layer
    exercised without any physical medium at all.
    """

    def __init__(self, sim: Simulator, name: str = "lo0", address: str = "127.0.0.1"):
        super().__init__(sim, name, address)
        self.delay = 0.0

    def _kick_transmit(self) -> None:
        packet = self.queue.poll()
        while packet is not None:
            self._record_tx(packet)
            self.sim.call_later(self.delay, self.handle_receive, packet)
            packet = self.queue.poll()
