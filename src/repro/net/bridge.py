"""Link-layer bridge (the WavePoint base station).

The paper's infrastructure consists of WavePoint base stations that
"serve as bridges to an Ethernet" (§3.1.1).  :class:`Bridge` is a
two-port learning bridge: it learns which IP addresses live on which
port from source addresses and forwards frames accordingly, flooding
when the destination is unknown.
"""

from __future__ import annotations

from typing import Dict

from .device import NetworkDevice
from .packet import Packet


class Bridge:
    """A transparent two-port learning bridge."""

    def __init__(self, port_a: NetworkDevice, port_b: NetworkDevice, name: str = "bridge"):
        self.name = name
        self.port_a = port_a
        self.port_b = port_b
        self._table: Dict[str, NetworkDevice] = {}
        self.forwarded = 0
        self.flooded = 0
        port_a.upstream = lambda pkt: self._ingress(port_a, pkt)
        port_b.upstream = lambda pkt: self._ingress(port_b, pkt)

    def _ingress(self, port: NetworkDevice, packet: Packet) -> None:
        other = self.port_b if port is self.port_a else self.port_a
        if packet.ip is not None:
            self._table[packet.ip.src] = port
            out = self._table.get(packet.ip.dst)
            if out is port:
                return  # destination is on the ingress side; don't forward
            if out is None:
                self.flooded += 1
        self.forwarded += 1
        other.send(packet)

    def learned_addresses(self) -> Dict[str, str]:
        return {addr: dev.name for addr, dev in self._table.items()}
