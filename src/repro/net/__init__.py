"""Network substrate: packets, devices, queues, wired and wireless media."""

from .bridge import Bridge
from .device import DIR_IN, DIR_OUT, LoopbackDevice, NetworkDevice
from .ethernet import EthernetDevice, EthernetSegment
from .link import LinkDevice, PointToPointLink
from .packet import (
    ETHERNET_MTU,
    ICMPHeader,
    IPHeader,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from .queue import DropTailQueue
from .wavelan import (
    ChannelConditions,
    ChannelProfile,
    DOWNLINK,
    NOISE_FLOOR,
    PiecewiseProfile,
    UPLINK,
    WAVELAN_RATE_BPS,
    WaveLANDevice,
    WirelessMedium,
)

__all__ = [
    "Bridge",
    "ChannelConditions",
    "ChannelProfile",
    "DIR_IN",
    "DIR_OUT",
    "DOWNLINK",
    "DropTailQueue",
    "ETHERNET_MTU",
    "EthernetDevice",
    "EthernetSegment",
    "ICMPHeader",
    "IPHeader",
    "LinkDevice",
    "LoopbackDevice",
    "NOISE_FLOOR",
    "NetworkDevice",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PiecewiseProfile",
    "PointToPointLink",
    "TCPHeader",
    "UDPHeader",
    "UPLINK",
    "WAVELAN_RATE_BPS",
    "WaveLANDevice",
    "WirelessMedium",
]
