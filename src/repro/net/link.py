"""Full-duplex point-to-point wired links."""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator
from .device import NetworkDevice
from .packet import Packet
from .queue import DropTailQueue


class LinkDevice(NetworkDevice):
    """One endpoint of a :class:`PointToPointLink`."""

    def __init__(self, sim: Simulator, name: str, address: str,
                 queue: Optional[DropTailQueue] = None):
        super().__init__(sim, name, address, queue)
        self.link: Optional["PointToPointLink"] = None
        self._transmitting = False

    def _kick_transmit(self) -> None:
        if self._transmitting or self.link is None:
            return
        packet = self.queue.poll()
        if packet is None:
            return
        self._transmitting = True
        tx_time = self.link.serialization_time(packet)
        self._record_tx(packet)
        self.sim.call_later(tx_time, self._transmit_done, packet)

    def _transmit_done(self, packet: Packet) -> None:
        assert self.link is not None
        peer = self.link.peer_of(self)
        self.sim.call_later(self.link.prop_delay, peer.handle_receive, packet)
        self._transmitting = False
        self._kick_transmit()


class PointToPointLink:
    """A reliable full-duplex wire between exactly two devices.

    Each direction serializes independently at ``bandwidth`` bits/s and
    adds ``prop_delay`` seconds of propagation.
    """

    def __init__(self, sim: Simulator, dev_a: LinkDevice, dev_b: LinkDevice,
                 bandwidth_bps: float = 10e6, prop_delay: float = 50e-6):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.dev_a = dev_a
        self.dev_b = dev_b
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        dev_a.link = self
        dev_b.link = self

    def serialization_time(self, packet: Packet) -> float:
        return packet.size * 8.0 / self.bandwidth_bps

    def peer_of(self, device: LinkDevice) -> LinkDevice:
        if device is self.dev_a:
            return self.dev_b
        if device is self.dev_b:
            return self.dev_a
        raise ValueError(f"{device!r} is not attached to this link")
