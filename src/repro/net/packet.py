"""Packets and protocol headers.

A :class:`Packet` is a lightweight in-memory representation of a frame:
header objects for each layer that is present plus an opaque payload
with an explicit byte size.  Nothing is actually serialized on the hot
path — sizes are tracked arithmetically — but every header knows its
wire size so end-to-end byte counts match what a real stack would put
on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

ETHERNET_HEADER_BYTES = 14
IP_HEADER_BYTES = 20
ICMP_HEADER_BYTES = 8
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20

ETHERNET_MTU = 1500

# IP protocol numbers (the real ones, for familiarity).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_packet_ids = itertools.count(1)


class _FastCopy:
    """Allocation-light shallow copy for header dataclasses.

    ``copy.copy`` pays a generic ``__reduce_ex__`` round trip per call;
    broadcast fan-out on the shared WaveLAN medium clones headers
    hundreds of thousands of times per trial, so headers copy via
    ``__new__`` plus a dict update instead.
    """

    __slots__ = ()

    def copy(self):
        cls = type(self)
        dup = cls.__new__(cls)
        dup.__dict__.update(self.__dict__)
        return dup


@dataclass
class IPHeader(_FastCopy):
    """Minimal IPv4 header: addressing, protocol demux, TTL."""

    src: str
    dst: str
    proto: int
    ttl: int = 64
    ident: int = 0

    @property
    def wire_bytes(self) -> int:
        return IP_HEADER_BYTES


@dataclass
class ICMPHeader(_FastCopy):
    """ICMP echo / echo-reply header.

    ``icmp_type`` is 8 for ECHO and 0 for ECHOREPLY.  ``ident`` carries
    the pid of the generating process and ``seq`` the sequence number,
    exactly the fields the paper's collection phase records (§3.1.1).
    """

    icmp_type: int
    ident: int = 0
    seq: int = 0

    ECHO = 8
    ECHOREPLY = 0

    @property
    def wire_bytes(self) -> int:
        return ICMP_HEADER_BYTES


@dataclass
class UDPHeader(_FastCopy):
    src_port: int
    dst_port: int

    @property
    def wire_bytes(self) -> int:
        return UDP_HEADER_BYTES


@dataclass
class TCPHeader(_FastCopy):
    """TCP header with the fields our Reno implementation uses."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER_BYTES

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    def flag_names(self) -> str:
        names = []
        for bit, name in ((self.SYN, "SYN"), (self.FIN, "FIN"), (self.RST, "RST"),
                          (self.PSH, "PSH"), (self.ACK, "ACK")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"


@dataclass
class Packet:
    """A frame in flight.

    ``payload`` is opaque application data (any object); ``payload_bytes``
    is its wire size.  ``meta`` carries out-of-band bookkeeping (payload
    timestamps for ping, trace annotations) that a real implementation
    would encode inside the payload bytes.
    """

    # Pool bookkeeping.  Deliberately *not* dataclass fields: they are
    # plain class attributes that an instance only shadows once a pool
    # acquires or releases it, so ordinary construction — and
    # ``clone()``, which goes through ``__new__`` — pays nothing and
    # yields unpooled packets.
    _from_pool = None   # free-list key ("tcp"/"udp"/"frag"); None = never recycled
    _pooled = False     # True while the slot sits in a free list
    _gen = 0            # bumped on every slot reuse (stale-reference guard)

    ip: Optional[IPHeader] = None
    icmp: Optional[ICMPHeader] = None
    udp: Optional[UDPHeader] = None
    tcp: Optional[TCPHeader] = None
    payload: Any = None
    payload_bytes: int = 0
    link_bytes: int = ETHERNET_HEADER_BYTES
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Memoized wire size.  Headers are attached before a packet first
    # touches a device (the one post-construction assignment,
    # IPLayer.send, resets this), so the size is stable for the whole
    # journey through queues, media, and tracing hooks.
    _size: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def generation(self) -> int:
        """Slot generation: bumped each time a pooled packet is reused.

        Code that stashes a packet reference across a release can
        compare generations to detect that the slot now carries a
        different frame.  Packets that never met the pool stay at 0.
        """
        return self._gen

    @property
    def size(self) -> int:
        """Total wire size in bytes, link header included."""
        size = self._size
        if size is None:
            # Header sizes are fixed per layer; summing constants keeps
            # the first computation cheap, and the memo makes the many
            # queue/medium/tracer reads per frame O(1).
            size = self.link_bytes + self.payload_bytes
            if self.ip is not None:
                size += IP_HEADER_BYTES
            if self.icmp is not None:
                size += ICMP_HEADER_BYTES
            if self.udp is not None:
                size += UDP_HEADER_BYTES
            if self.tcp is not None:
                size += TCP_HEADER_BYTES
            self._size = size
        return size

    @property
    def ip_size(self) -> int:
        """Size of the IP datagram (no link header)."""
        return self.size - self.link_bytes

    def clone(self) -> "Packet":
        """A shallow copy with a fresh packet id (used by broadcast fan-out)."""
        ip, icmp, udp, tcp = self.ip, self.icmp, self.udp, self.tcp
        dup = Packet.__new__(Packet)
        dup.ip = None if ip is None else ip.copy()
        dup.icmp = None if icmp is None else icmp.copy()
        dup.udp = None if udp is None else udp.copy()
        dup.tcp = None if tcp is None else tcp.copy()
        dup.payload = self.payload
        dup.payload_bytes = self.payload_bytes
        dup.link_bytes = self.link_bytes
        dup.meta = dict(self.meta)
        dup.packet_id = next(_packet_ids)
        dup._size = self._size
        return dup

    def release(self) -> None:
        """Return this packet to the global pool (no-op if not pool-owned)."""
        POOL.release(self)

    def describe(self) -> str:
        """One-line human-readable summary (used in trace dumps)."""
        if self.ip is None:
            return f"pkt#{self.packet_id} raw {self.size}B"
        parts = [f"pkt#{self.packet_id} {self.ip.src}->{self.ip.dst}"]
        if self.icmp is not None:
            kind = "ECHO" if self.icmp.icmp_type == ICMPHeader.ECHO else "ECHOREPLY"
            parts.append(f"icmp {kind} id={self.icmp.ident} seq={self.icmp.seq}")
        elif self.udp is not None:
            parts.append(f"udp {self.udp.src_port}->{self.udp.dst_port}")
        elif self.tcp is not None:
            parts.append(
                f"tcp {self.tcp.src_port}->{self.tcp.dst_port}"
                f" seq={self.tcp.seq} ack={self.tcp.ack} [{self.tcp.flag_names()}]"
            )
        parts.append(f"{self.size}B")
        return " ".join(parts)


class PacketPool:
    """Slot-recycling allocator for hot-path packets.

    TCP segments, UDP datagrams, and IP fragments are created and
    destroyed hundreds of thousands of times per trial; the constant
    churn of ``Packet`` + header dataclass construction (two object
    allocations plus a fresh ``meta`` dict per frame) dominates the
    allocator profile.  The pool keeps freed packets on per-shape free
    lists — a slot that died as a TCP segment still carries its
    ``TCPHeader`` object, so reacquiring it overwrites header fields in
    place instead of allocating.

    Safety rules:

    * Only packets minted by an ``acquire_*`` call are pool-owned;
      :meth:`release` on anything else (test fixtures, ICMP echoes,
      ``clone()`` copies) is a no-op.
    * Release is idempotent — the ``_pooled`` flag guarantees a slot
      enters a free list at most once per lifetime.
    * Every reuse bumps the slot's generation counter and assigns a
      fresh ``packet_id``, so a stale reference held across a release
      is detectable and never aliases a later frame's identity.
    * Headers are never shared between packets (``clone()`` copies
      them), so overwriting a recycled slot's header can only touch the
      slot itself.

    Release sites are the points where a frame's journey ends: the TCP
    and UDP input routines, the IP not-for-me drop, fragment
    absorption into the reassembler, and channel loss on the radio.
    """

    MAX_FREE = 4096  # per shape; beyond this, released slots go to the GC

    __slots__ = ("enabled", "_free", "fresh", "reused", "released")

    def __init__(self) -> None:
        self.enabled = True
        self._free: Dict[str, list] = {"tcp": [], "udp": [], "frag": []}
        self.fresh = 0      # acquires served by real allocation
        self.reused = 0     # acquires served from a free list
        self.released = 0   # slots returned to a free list

    # ------------------------------------------------------------------
    def acquire_tcp(self, src_port: int, dst_port: int, seq: int, ack: int,
                    flags: int, window: int, payload_bytes: int) -> Packet:
        """A TCP segment packet (header attached, no IP header yet)."""
        free = self._free["tcp"]
        if free and self.enabled:
            p = free.pop()
            p._pooled = False
            p._gen += 1
            p.packet_id = next(_packet_ids)
            h = p.tcp
            h.src_port = src_port
            h.dst_port = dst_port
            h.seq = seq
            h.ack = ack
            h.flags = flags
            h.window = window
            p.payload = None
            p.payload_bytes = payload_bytes
            p.link_bytes = ETHERNET_HEADER_BYTES
            p._size = None
            self.reused += 1
            return p
        self.fresh += 1
        p = Packet(tcp=TCPHeader(src_port=src_port, dst_port=dst_port,
                                 seq=seq, ack=ack, flags=flags,
                                 window=window),
                   payload_bytes=payload_bytes)
        if self.enabled:
            p._from_pool = "tcp"
        return p

    def acquire_udp(self, src_port: int, dst_port: int, payload: Any,
                    payload_bytes: int) -> Packet:
        """A UDP datagram packet (header attached, no IP header yet)."""
        free = self._free["udp"]
        if free and self.enabled:
            p = free.pop()
            p._pooled = False
            p._gen += 1
            p.packet_id = next(_packet_ids)
            h = p.udp
            h.src_port = src_port
            h.dst_port = dst_port
            p.payload = payload
            p.payload_bytes = payload_bytes
            p.link_bytes = ETHERNET_HEADER_BYTES
            p._size = None
            self.reused += 1
            return p
        self.fresh += 1
        p = Packet(udp=UDPHeader(src_port=src_port, dst_port=dst_port),
                   payload=payload, payload_bytes=payload_bytes)
        if self.enabled:
            p._from_pool = "udp"
        return p

    def acquire_fragment(self, src: str, dst: str, proto: int, ttl: int,
                         ident: int, chunk: int, fragment: tuple,
                         original: Packet) -> Packet:
        """An IP fragment carrying its reassembly metadata."""
        free = self._free["frag"]
        if free and self.enabled:
            p = free.pop()
            p._pooled = False
            p._gen += 1
            p.packet_id = next(_packet_ids)
            h = p.ip
            h.src = src
            h.dst = dst
            h.proto = proto
            h.ttl = ttl
            h.ident = ident
            p.payload_bytes = chunk
            p.link_bytes = ETHERNET_HEADER_BYTES
            p._size = None
            m = p.meta
            m["fragment"] = fragment
            m["original"] = original
            self.reused += 1
            return p
        self.fresh += 1
        p = Packet(ip=IPHeader(src=src, dst=dst, proto=proto, ttl=ttl,
                               ident=ident),
                   payload_bytes=chunk,
                   meta={"fragment": fragment, "original": original})
        if self.enabled:
            p._from_pool = "frag"
        return p

    # ------------------------------------------------------------------
    def release(self, packet: Packet) -> None:
        """Recycle a pool-owned packet whose journey has ended.

        Safe to call on any packet: foreign packets and already-released
        slots are ignored.  Payload and metadata references are dropped
        immediately so the free list never pins application data.
        """
        key = packet._from_pool
        if key is None or packet._pooled or not self.enabled:
            return
        packet._pooled = True
        packet.payload = None
        packet.meta.clear()
        self.released += 1
        free = self._free[key]
        if len(free) < self.MAX_FREE:
            free.append(packet)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all free slots (tests and memory-profiling legs)."""
        for free in self._free.values():
            free.clear()

    def stats(self) -> Dict[str, int]:
        """Allocation-avoidance counters plus current free-list depths."""
        out = {"fresh": self.fresh, "reused": self.reused,
               "released": self.released}
        for key, free in self._free.items():
            out[f"free_{key}"] = len(free)
        return out


#: Process-wide packet pool.  Hosts on every simulated network share it;
#: determinism is unaffected because packet ids are assigned at acquire
#: time in the same order regardless of whether the slot is recycled.
POOL = PacketPool()
