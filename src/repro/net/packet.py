"""Packets and protocol headers.

A :class:`Packet` is a lightweight in-memory representation of a frame:
header objects for each layer that is present plus an opaque payload
with an explicit byte size.  Nothing is actually serialized on the hot
path — sizes are tracked arithmetically — but every header knows its
wire size so end-to-end byte counts match what a real stack would put
on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

ETHERNET_HEADER_BYTES = 14
IP_HEADER_BYTES = 20
ICMP_HEADER_BYTES = 8
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20

ETHERNET_MTU = 1500

# IP protocol numbers (the real ones, for familiarity).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_packet_ids = itertools.count(1)


class _FastCopy:
    """Allocation-light shallow copy for header dataclasses.

    ``copy.copy`` pays a generic ``__reduce_ex__`` round trip per call;
    broadcast fan-out on the shared WaveLAN medium clones headers
    hundreds of thousands of times per trial, so headers copy via
    ``__new__`` plus a dict update instead.
    """

    __slots__ = ()

    def copy(self):
        cls = type(self)
        dup = cls.__new__(cls)
        dup.__dict__.update(self.__dict__)
        return dup


@dataclass
class IPHeader(_FastCopy):
    """Minimal IPv4 header: addressing, protocol demux, TTL."""

    src: str
    dst: str
    proto: int
    ttl: int = 64
    ident: int = 0

    @property
    def wire_bytes(self) -> int:
        return IP_HEADER_BYTES


@dataclass
class ICMPHeader(_FastCopy):
    """ICMP echo / echo-reply header.

    ``icmp_type`` is 8 for ECHO and 0 for ECHOREPLY.  ``ident`` carries
    the pid of the generating process and ``seq`` the sequence number,
    exactly the fields the paper's collection phase records (§3.1.1).
    """

    icmp_type: int
    ident: int = 0
    seq: int = 0

    ECHO = 8
    ECHOREPLY = 0

    @property
    def wire_bytes(self) -> int:
        return ICMP_HEADER_BYTES


@dataclass
class UDPHeader(_FastCopy):
    src_port: int
    dst_port: int

    @property
    def wire_bytes(self) -> int:
        return UDP_HEADER_BYTES


@dataclass
class TCPHeader(_FastCopy):
    """TCP header with the fields our Reno implementation uses."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER_BYTES

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    def flag_names(self) -> str:
        names = []
        for bit, name in ((self.SYN, "SYN"), (self.FIN, "FIN"), (self.RST, "RST"),
                          (self.PSH, "PSH"), (self.ACK, "ACK")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"


@dataclass
class Packet:
    """A frame in flight.

    ``payload`` is opaque application data (any object); ``payload_bytes``
    is its wire size.  ``meta`` carries out-of-band bookkeeping (payload
    timestamps for ping, trace annotations) that a real implementation
    would encode inside the payload bytes.
    """

    ip: Optional[IPHeader] = None
    icmp: Optional[ICMPHeader] = None
    udp: Optional[UDPHeader] = None
    tcp: Optional[TCPHeader] = None
    payload: Any = None
    payload_bytes: int = 0
    link_bytes: int = ETHERNET_HEADER_BYTES
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Memoized wire size.  Headers are attached before a packet first
    # touches a device (the one post-construction assignment,
    # IPLayer.send, resets this), so the size is stable for the whole
    # journey through queues, media, and tracing hooks.
    _size: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        """Total wire size in bytes, link header included."""
        size = self._size
        if size is None:
            # Header sizes are fixed per layer; summing constants keeps
            # the first computation cheap, and the memo makes the many
            # queue/medium/tracer reads per frame O(1).
            size = self.link_bytes + self.payload_bytes
            if self.ip is not None:
                size += IP_HEADER_BYTES
            if self.icmp is not None:
                size += ICMP_HEADER_BYTES
            if self.udp is not None:
                size += UDP_HEADER_BYTES
            if self.tcp is not None:
                size += TCP_HEADER_BYTES
            self._size = size
        return size

    @property
    def ip_size(self) -> int:
        """Size of the IP datagram (no link header)."""
        return self.size - self.link_bytes

    def clone(self) -> "Packet":
        """A shallow copy with a fresh packet id (used by broadcast fan-out)."""
        ip, icmp, udp, tcp = self.ip, self.icmp, self.udp, self.tcp
        dup = Packet.__new__(Packet)
        dup.ip = None if ip is None else ip.copy()
        dup.icmp = None if icmp is None else icmp.copy()
        dup.udp = None if udp is None else udp.copy()
        dup.tcp = None if tcp is None else tcp.copy()
        dup.payload = self.payload
        dup.payload_bytes = self.payload_bytes
        dup.link_bytes = self.link_bytes
        dup.meta = dict(self.meta)
        dup.packet_id = next(_packet_ids)
        dup._size = self._size
        return dup

    def describe(self) -> str:
        """One-line human-readable summary (used in trace dumps)."""
        if self.ip is None:
            return f"pkt#{self.packet_id} raw {self.size}B"
        parts = [f"pkt#{self.packet_id} {self.ip.src}->{self.ip.dst}"]
        if self.icmp is not None:
            kind = "ECHO" if self.icmp.icmp_type == ICMPHeader.ECHO else "ECHOREPLY"
            parts.append(f"icmp {kind} id={self.icmp.ident} seq={self.icmp.seq}")
        elif self.udp is not None:
            parts.append(f"udp {self.udp.src_port}->{self.udp.dst_port}")
        elif self.tcp is not None:
            parts.append(
                f"tcp {self.tcp.src_port}->{self.tcp.dst_port}"
                f" seq={self.tcp.seq} ack={self.tcp.ack} [{self.tcp.flag_names()}]"
            )
        parts.append(f"{self.size}B")
        return " ".join(parts)
