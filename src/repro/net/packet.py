"""Packets and protocol headers.

A :class:`Packet` is a lightweight in-memory representation of a frame:
header objects for each layer that is present plus an opaque payload
with an explicit byte size.  Nothing is actually serialized on the hot
path — sizes are tracked arithmetically — but every header knows its
wire size so end-to-end byte counts match what a real stack would put
on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

ETHERNET_HEADER_BYTES = 14
IP_HEADER_BYTES = 20
ICMP_HEADER_BYTES = 8
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20

ETHERNET_MTU = 1500

# IP protocol numbers (the real ones, for familiarity).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_packet_ids = itertools.count(1)


@dataclass
class IPHeader:
    """Minimal IPv4 header: addressing, protocol demux, TTL."""

    src: str
    dst: str
    proto: int
    ttl: int = 64
    ident: int = 0

    @property
    def wire_bytes(self) -> int:
        return IP_HEADER_BYTES


@dataclass
class ICMPHeader:
    """ICMP echo / echo-reply header.

    ``icmp_type`` is 8 for ECHO and 0 for ECHOREPLY.  ``ident`` carries
    the pid of the generating process and ``seq`` the sequence number,
    exactly the fields the paper's collection phase records (§3.1.1).
    """

    icmp_type: int
    ident: int = 0
    seq: int = 0

    ECHO = 8
    ECHOREPLY = 0

    @property
    def wire_bytes(self) -> int:
        return ICMP_HEADER_BYTES


@dataclass
class UDPHeader:
    src_port: int
    dst_port: int

    @property
    def wire_bytes(self) -> int:
        return UDP_HEADER_BYTES


@dataclass
class TCPHeader:
    """TCP header with the fields our Reno implementation uses."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER_BYTES

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    def flag_names(self) -> str:
        names = []
        for bit, name in ((self.SYN, "SYN"), (self.FIN, "FIN"), (self.RST, "RST"),
                          (self.PSH, "PSH"), (self.ACK, "ACK")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"


@dataclass
class Packet:
    """A frame in flight.

    ``payload`` is opaque application data (any object); ``payload_bytes``
    is its wire size.  ``meta`` carries out-of-band bookkeeping (payload
    timestamps for ping, trace annotations) that a real implementation
    would encode inside the payload bytes.
    """

    ip: Optional[IPHeader] = None
    icmp: Optional[ICMPHeader] = None
    udp: Optional[UDPHeader] = None
    tcp: Optional[TCPHeader] = None
    payload: Any = None
    payload_bytes: int = 0
    link_bytes: int = ETHERNET_HEADER_BYTES
    meta: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        """Total wire size in bytes, link header included."""
        total = self.link_bytes + self.payload_bytes
        for header in (self.ip, self.icmp, self.udp, self.tcp):
            if header is not None:
                total += header.wire_bytes
        return total

    @property
    def ip_size(self) -> int:
        """Size of the IP datagram (no link header)."""
        return self.size - self.link_bytes

    def clone(self) -> "Packet":
        """A shallow copy with a fresh packet id (used by broadcast fan-out)."""
        import copy

        dup = Packet(
            ip=copy.copy(self.ip),
            icmp=copy.copy(self.icmp),
            udp=copy.copy(self.udp),
            tcp=copy.copy(self.tcp),
            payload=self.payload,
            payload_bytes=self.payload_bytes,
            link_bytes=self.link_bytes,
            meta=dict(self.meta),
        )
        return dup

    def describe(self) -> str:
        """One-line human-readable summary (used in trace dumps)."""
        if self.ip is None:
            return f"pkt#{self.packet_id} raw {self.size}B"
        parts = [f"pkt#{self.packet_id} {self.ip.src}->{self.ip.dst}"]
        if self.icmp is not None:
            kind = "ECHO" if self.icmp.icmp_type == ICMPHeader.ECHO else "ECHOREPLY"
            parts.append(f"icmp {kind} id={self.icmp.ident} seq={self.icmp.seq}")
        elif self.udp is not None:
            parts.append(f"udp {self.udp.src_port}->{self.udp.dst_port}")
        elif self.tcp is not None:
            parts.append(
                f"tcp {self.tcp.src_port}->{self.tcp.dst_port}"
                f" seq={self.tcp.seq} ack={self.tcp.ack} [{self.tcp.flag_names()}]"
            )
        parts.append(f"{self.size}B")
        return " ".join(parts)
