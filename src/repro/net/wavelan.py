"""WaveLAN radio model.

The AT&T WaveLAN device used in the paper is a 900 MHz, nominally
2 Mb/s shared-medium packet radio (§3.1.1).  We model:

* a **shared half-duplex medium** with FIFO arbitration and a random
  contention backoff, so concurrent stations (Chatterbox's SynRGen
  laptops) stretch each other's latency and shrink usable bandwidth;
* **time-varying channel conditions** supplied by a scenario profile —
  signal level (WaveLAN units), loss probability, bandwidth factor and
  a mean media-access latency, each allowed to differ by direction so
  the live network can be *asymmetric* (the effect the paper's FTP
  results expose, §5.3);
* **device status reporting** — signal level, signal quality and
  silence level — sampled by the collection phase alongside packets.

The substitution for real radio hardware is documented in DESIGN.md:
the methodology consumes only end-to-end observations, so any channel
whose delay/loss vary plausibly with time exercises the full pipeline
while giving us ground truth for validation.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim import RngStreams, Simulator
from .device import NetworkDevice
from .packet import POOL, Packet
from .queue import DropTailQueue

WAVELAN_RATE_BPS = 2e6
NOISE_FLOOR = 5.0  # signal levels below this are treated as noise by the driver

UPLINK = "up"      # mobile -> base station
DOWNLINK = "down"  # base station -> mobile


@dataclass
class ChannelConditions:
    """Instantaneous channel state as seen by the mobile host."""

    signal_level: float
    loss_prob_up: float
    loss_prob_down: float
    bandwidth_factor: float      # fraction of the nominal 2 Mb/s usable
    access_latency_mean: float   # mean extra media-access delay (s)

    def loss_prob(self, direction: str) -> float:
        return self.loss_prob_up if direction == UPLINK else self.loss_prob_down

    def clamped(self) -> "ChannelConditions":
        """Return a copy with every field forced into its legal range."""
        return ChannelConditions(
            signal_level=max(0.0, self.signal_level),
            loss_prob_up=min(1.0, max(0.0, self.loss_prob_up)),
            loss_prob_down=min(1.0, max(0.0, self.loss_prob_down)),
            bandwidth_factor=min(1.0, max(0.01, self.bandwidth_factor)),
            access_latency_mean=max(0.0, self.access_latency_mean),
        )


class ChannelProfile:
    """Base class: channel conditions as a function of simulated time.

    Scenario modules subclass or compose this; the default is a perfect
    channel (used for base stations and wired-quality stations).
    """

    def conditions(self, t: float) -> ChannelConditions:
        return ChannelConditions(
            signal_level=30.0,
            loss_prob_up=0.0,
            loss_prob_down=0.0,
            bandwidth_factor=1.0,
            access_latency_mean=0.0,
        )


class PiecewiseProfile(ChannelProfile):
    """A profile interpolated from (time, conditions) control points.

    ``conditions`` runs once per media grant, so the interval lookup is
    a bisect over the precomputed time axis rather than a linear scan,
    and interpolation + clamping happen in one allocation.
    """

    def __init__(self, points: List[tuple]):
        if not points:
            raise ValueError("profile needs at least one control point")
        self.points = sorted(points, key=lambda p: p[0])
        self._times = [p[0] for p in self.points]

    def conditions(self, t: float) -> ChannelConditions:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1].clamped()
        if t >= pts[-1][0]:
            return pts[-1][1].clamped()
        # First interval with t0 <= t <= t1: bisect_left yields the
        # smallest index j with times[j] >= t, so (j-1, j) brackets t.
        j = bisect_left(self._times, t)
        t0, c0 = pts[j - 1]
        t1, c1 = pts[j]
        frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
        sl = c0.signal_level + (c1.signal_level - c0.signal_level) * frac
        lu = c0.loss_prob_up + (c1.loss_prob_up - c0.loss_prob_up) * frac
        ld = (c0.loss_prob_down
              + (c1.loss_prob_down - c0.loss_prob_down) * frac)
        bw = (c0.bandwidth_factor
              + (c1.bandwidth_factor - c0.bandwidth_factor) * frac)
        al = (c0.access_latency_mean
              + (c1.access_latency_mean - c0.access_latency_mean) * frac)
        # Clamp inline (same formulas as ChannelConditions.clamped).
        return ChannelConditions(
            signal_level=max(0.0, sl),
            loss_prob_up=min(1.0, max(0.0, lu)),
            loss_prob_down=min(1.0, max(0.0, ld)),
            bandwidth_factor=min(1.0, max(0.01, bw)),
            access_latency_mean=max(0.0, al),
        )


class WaveLANDevice(NetworkDevice):
    """A WaveLAN radio attached to a :class:`WirelessMedium`.

    ``profile`` is set on mobile stations; base stations leave it None
    and inherit the mobile peer's channel for any exchange with it.
    ``is_base`` marks the infrastructure side so transmission direction
    (uplink/downlink) can be classified.
    """

    # Host-side per-packet driver cost between consecutive transmissions.
    # The 75 MHz 486 laptop needs visibly longer than the WavePoint's
    # dedicated bridging hardware, which is one source of the live
    # send/receive asymmetry the paper observes (§5.3).
    LAPTOP_DRIVER_GAP = 0.6e-3
    BASE_DRIVER_GAP = 0.3e-3

    def __init__(self, sim: Simulator, name: str, address: str,
                 profile: Optional[ChannelProfile] = None,
                 is_base: bool = False,
                 queue: Optional[DropTailQueue] = None,
                 driver_gap: Optional[float] = None):
        super().__init__(sim, name, address,
                         queue or DropTailQueue(max_packets=50, name=f"{name}.txq"))
        self.medium: Optional["WirelessMedium"] = None
        self.profile = profile
        self.is_base = is_base
        if driver_gap is None:
            driver_gap = self.BASE_DRIVER_GAP if is_base else self.LAPTOP_DRIVER_GAP
        self.driver_gap = driver_gap
        self._pending = False
        self._gap_until = 0.0

    # -- medium interaction (same contract as EthernetDevice) ----------
    def _kick_transmit(self) -> None:
        if self._pending or self.medium is None or self.queue.empty:
            return
        self._pending = True
        self.medium.request_transmit(self)

    def _grant(self) -> Optional[Packet]:
        self._pending = False
        if self.sim.now < self._gap_until:
            # The host driver is still busy post-processing the last
            # frame; come back for the medium once the gap elapses.
            self.sim.call_later(self._gap_until - self.sim.now,
                              self._kick_transmit)
            return None
        packet = self.queue.poll()
        if packet is not None:
            self._record_tx(packet)
        return packet

    def _after_transmit(self) -> None:
        self._gap_until = self.sim.now + self.driver_gap
        if not self.queue.empty:
            # Re-enter the arbitration queue immediately rather than
            # waiting out the driver gap: under contention the medium
            # is busy far longer than the gap, so by the time the grant
            # comes around the gap has usually elapsed and no wakeup
            # event is ever needed.  ``_grant`` still defers (and
            # schedules the one necessary wakeup) if the medium comes
            # free while the driver is mid-gap.
            self._kick_transmit()

    # -- status reporting ----------------------------------------------
    def device_status(self) -> dict:
        status = super().device_status()
        profile = self.profile or ChannelProfile()
        cond = profile.conditions(self.sim.now)
        noise = 0.0
        if self.medium is not None:
            noise = self.medium.rng.gauss(0.0, 0.8)
        level = max(0.0, cond.signal_level + noise)
        status.update({
            "signal_level": level,
            # WaveLAN "signal quality" loosely tracks SNR; map from loss.
            "signal_quality": max(0.0, 15.0 * (1.0 - cond.loss_prob_up)),
            "silence_level": max(0.0, NOISE_FLOOR - 1.0 + abs(noise)),
        })
        return status


class WirelessMedium:
    """The shared 2 Mb/s channel.

    Arbitration is FIFO with a random slotted backoff before each
    transmission; degraded ``bandwidth_factor`` stretches serialization
    time (modelling retries/rate fallback), which both delays the frame
    and occupies the medium longer — so back-to-back packets queue at
    exactly the bottleneck cost the distiller solves for (§3.2.2).
    """

    SLOT_TIME = 50e-6
    MAX_BACKOFF_SLOTS = 4
    PER_FRAME_OVERHEAD = 0.25e-3  # preamble, MAC framing, driver cost

    # Gilbert-Elliott fading: losses cluster into short bad periods
    # separated by long clean stretches, as on a real radio channel.
    # The factors are chosen so the long-term average loss tracks the
    # scenario profile's nominal rate.
    GE_GOOD_DWELL = 12.0     # mean seconds in the good state
    GE_BAD_DWELL = 0.6       # mean seconds in a fade
    GE_GOOD_FACTOR = 0.45    # loss multiplier while good
    GE_BAD_FACTOR = 8.0     # loss multiplier while fading
    GE_BAD_CAP = 0.7         # ceiling on fade loss probability

    def __init__(self, sim: Simulator, rngs: RngStreams,
                 rate_bps: float = WAVELAN_RATE_BPS, prop_delay: float = 5e-6,
                 name: str = "wlan0", bursty_loss: bool = True):
        self.sim = sim
        self.rng = rngs.stream(f"medium:{name}")
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.name = name
        self.bursty_loss = bursty_loss
        self.devices: List[WaveLANDevice] = []
        self._by_address: Dict[str, WaveLANDevice] = {}
        self.tracer = None  # repro.obs scope; None = uninstrumented
        self._busy = False
        self._waiters: List[WaveLANDevice] = []
        self.frames_carried = 0
        self.frames_lost = 0
        self._ge_bad = False
        self._ge_until = 0.0

    # -- fading state ----------------------------------------------------
    def _loss_multiplier(self) -> float:
        """Current Gilbert-Elliott loss multiplier."""
        if not self.bursty_loss:
            return 1.0
        now = self.sim.now
        while now >= self._ge_until:
            self._ge_bad = not self._ge_bad
            dwell = self.GE_BAD_DWELL if self._ge_bad else self.GE_GOOD_DWELL
            self._ge_until += self.rng.expovariate(1.0 / dwell)
        return self.GE_BAD_FACTOR if self._ge_bad else self.GE_GOOD_FACTOR

    def _effective_loss(self, nominal: float) -> float:
        if nominal <= 0.0:
            return 0.0
        if nominal >= 0.2:
            # A deep outage (the Wean elevator) dominates fading.
            return nominal
        scaled = nominal * self._loss_multiplier()
        return min(self.GE_BAD_CAP if self._ge_bad else 1.0, scaled)

    def attach(self, device: WaveLANDevice) -> None:
        if device.medium is not None:
            raise ValueError(f"{device.name} already attached")
        device.medium = self
        self.devices.append(device)
        self._by_address.setdefault(device.address, device)

    # ------------------------------------------------------------------
    def request_transmit(self, device: WaveLANDevice) -> None:
        self._waiters.append(device)
        self._try_grant()

    def _try_grant(self) -> None:
        if self._busy or not self._waiters:
            return
        device = self._waiters.pop(0)
        packet = device._grant()
        if packet is None:
            self._try_grant()
            return
        self._busy = True
        cond = self._conditions_for(device, packet)
        backoff = self.rng.randrange(0, self.MAX_BACKOFF_SLOTS + 1) * self.SLOT_TIME
        access = 0.0
        if cond.access_latency_mean > 0.0:
            access = self.rng.expovariate(1.0 / cond.access_latency_mean)
        tx_time = (packet.size * 8.0 / (self.rate_bps * cond.bandwidth_factor)
                   + self.PER_FRAME_OVERHEAD)
        self.frames_carried += 1
        # Propagation rides the same event as serialization: the frame
        # arrives (or is lost) one event after the grant, and the
        # medium frees at arrival time.
        self.sim.call_later(backoff + access + tx_time + self.prop_delay,
                          self._transmit_done, device, packet, cond)

    def _transmit_done(self, sender: WaveLANDevice, packet: Packet,
                       cond: ChannelConditions) -> None:
        direction = UPLINK if not sender.is_base else DOWNLINK
        lost = self.rng.random() < self._effective_loss(cond.loss_prob(direction))
        if lost:
            self.frames_lost += 1
            if self.tracer is not None:
                self.tracer.drop("radio", packet, "channel_loss",
                                 sender=sender.name, direction=direction)
            POOL.release(packet)
        self._busy = False
        # The sender's driver gap must be on the books before the next
        # grant is attempted, or a queued frame would sneak past it;
        # delivery stays after the grant attempt, matching the order the
        # separate propagation event used to impose.
        sender._after_transmit()
        self._try_grant()
        if not lost:
            self._deliver(sender, packet)

    def _conditions_for(self, sender: WaveLANDevice,
                        packet: Packet) -> ChannelConditions:
        """Channel conditions governing this transmission.

        The mobile endpoint's profile wins: frames to or from a mobile
        station see that station's channel.  Base-to-base (or two
        wired-quality stations) see a perfect channel.
        """
        if sender.profile is not None:
            return sender.profile.conditions(self.sim.now).clamped()
        receiver = self._receiver_for(sender, packet)
        if receiver is not None and receiver.profile is not None:
            return receiver.profile.conditions(self.sim.now).clamped()
        return ChannelProfile().conditions(self.sim.now)

    def _receiver_for(self, sender: WaveLANDevice,
                      packet: Packet) -> Optional[WaveLANDevice]:
        dst = packet.ip.dst if packet.ip is not None else None
        if dst is None:
            return None
        device = self._by_address.get(dst)
        if device is not None and device is not sender:
            return device
        return None

    def _deliver(self, sender: WaveLANDevice, packet: Packet) -> None:
        receiver = self._receiver_for(sender, packet)
        if receiver is not None:
            receiver.handle_receive(packet)
            return
        # No station owns the address: the frame leaves the cell through
        # a base station.  The radio is physically broadcast, but a
        # station's receive filter discards frames addressed elsewhere
        # with no observable effect, so delivery short-circuits to the
        # devices that actually look at the frame: base stations (which
        # bridge it onward) and any device carrying an input tap (the
        # collection daemon's hook makes the traced laptop
        # promiscuous).  Loss was already decided per transmission, so
        # skipping deaf stations draws no RNG and changes no result.
        # Clone *ahead of* each delivery: a receiver's stack may consume
        # the frame it was handed (terminal inputs recycle pool slots),
        # so the copy for the next receiver has to be taken while this
        # one is still pristine.
        receivers = [d for d in self.devices
                     if d is not sender and (d.is_base or d.input_hooks)]
        last = len(receivers) - 1
        for i, device in enumerate(receivers):
            if i < last:
                spare = packet.clone()
                device.handle_receive(packet)
                packet = spare
            else:
                device.handle_receive(packet)
            first = False
