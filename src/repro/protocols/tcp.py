"""A Reno-style TCP.

The FTP and Web benchmarks are TCP-limited, so the validation shapes in
Figures 6 and 7 depend on a real congestion-control loop: slow start,
congestion avoidance, fast retransmit/recovery, and the coarse
retransmission timers of a 1997 BSD stack (minimum RTO of one second —
losses that escape fast retransmit stall the connection visibly, which
is exactly what live WaveLAN FTP shows in the lossy scenarios).

Simulation shortcuts, documented here deliberately:

* Application data is *counted*, not carried: a segment knows how many
  payload bytes it represents.  Message boundaries for request/response
  protocols ride in per-connection marker lists consumed strictly
  in-order by stream offset (see :class:`MessageChannel`), so framing
  costs are still paid on the wire.
* Sequence numbers are absolute 64-bit offsets (no wraparound); the SYN
  occupies offset 0, data starts at 1, the FIN occupies one offset past
  the last data byte.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..net.packet import POOL, Packet, PROTO_TCP, TCPHeader
from ..sim import Signal, Simulator, Timeout

MSS = 1460
DEFAULT_RCV_BUF = 16384
INITIAL_RTO = 1.5
MIN_RTO = 1.0
MAX_RTO = 64.0
DELAYED_ACK = 0.2
DUPACK_THRESHOLD = 3
MAX_SYN_RETRIES = 6
MAX_DATA_RETRIES = 20
FIN_WAIT_2_TIMEOUT = 60.0  # orphaned half-close reaper, as in BSD

# Connection states (the subset our apps traverse).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
CLOSING = "CLOSING"


class TCPError(Exception):
    """Connection failed (reset, too many retransmissions, ...)."""


class TCPConnection:
    """One endpoint of a TCP connection."""

    def __init__(self, proto: "TCPProtocol", laddr: str, lport: int,
                 raddr: str, rport: int, passive: bool):
        self.proto = proto
        self.sim = proto.sim
        self.laddr = laddr
        self.lport = lport
        self.raddr = raddr
        self.rport = rport
        self.state = CLOSED
        self.passive = passive

        # --- send side -------------------------------------------------
        self.snd_una = 0          # oldest unacked offset
        self.snd_nxt = 0          # next offset to send
        self.snd_max = 0          # highest offset ever sent
        self.app_enqueued = 0     # app bytes accepted for sending
        self.fin_pending = False
        self.fin_offset: Optional[int] = None
        self.peer_window = DEFAULT_RCV_BUF
        self.cwnd = float(MSS)
        self.ssthresh = 65535.0
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recovery_point = 0
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self.backoff = 1
        self.retries = 0
        self._rtt_sample: Optional[Tuple[int, float]] = None  # (end_offset, sent_at)
        self._rtx_timer = None
        self.send_markers: List[Tuple[int, int, Any]] = []  # (start, end, message)

        # --- receive side ----------------------------------------------
        self.rcv_nxt = 0          # next expected offset (0 = expecting SYN)
        self.app_read = 0         # app bytes consumed
        self.rcv_buf = proto.rcv_buf
        self._ooo: Dict[int, int] = {}  # start offset -> end offset
        self.fin_received = False
        self._delack_timer = None
        self._segments_unacked = 0
        self.recv_markers: Dict[int, Any] = {}  # app end offset -> message

        # --- wakeups -----------------------------------------------------
        self.readable_signal = Signal(self.sim, "tcp.readable")
        self.acked_signal = Signal(self.sim, "tcp.acked")
        self.state_signal = Signal(self.sim, "tcp.state")
        self.error: Optional[TCPError] = None

        # --- stats -------------------------------------------------------
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # ==================================================================
    # Public (application) interface — coroutine style
    # ==================================================================
    def send(self, nbytes: int, message: Any = None) -> None:
        """Enqueue ``nbytes`` of application data (optionally tagged)."""
        self._check_error()
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise TCPError(f"send in state {self.state}")
        if nbytes < 0:
            raise ValueError("cannot send negative bytes")
        start = self.app_enqueued
        self.app_enqueued += nbytes
        if message is not None:
            self.send_markers.append((start, self.app_enqueued, message))
        self._try_send()

    def recv_exact(self, nbytes: int) -> Generator[Any, Any, int]:
        """Consume exactly ``nbytes``, incrementally as data arrives.

        Consuming as bytes arrive (rather than waiting for the full
        count) keeps the advertised window open for transfers larger
        than the receive buffer.  Returns the count consumed, which is
        less than ``nbytes`` only if the peer closed first.
        """
        remaining = nbytes
        while remaining > 0:
            readable = self.readable_bytes()
            if readable == 0:
                self._check_error()
                if self._eof_reached():
                    break
                yield self.readable_signal
                continue
            take = min(readable, remaining)
            self._consume(take)
            remaining -= take
        return nbytes - remaining

    def recv_some(self) -> Generator[Any, Any, int]:
        """Wait for any readable data; 0 means the peer closed."""
        while self.readable_bytes() == 0:
            self._check_error()
            if self._eof_reached():
                return 0
            yield self.readable_signal
        got = self.readable_bytes()
        self._consume(got)
        return got

    def send_wait(self, nbytes: int, message: Any = None,
                  sndbuf: int = 16384) -> Generator[Any, Any, None]:
        """Blocking send: waits for socket-buffer space first.

        Real senders block when the socket buffer fills; without this,
        a disk-paced application would decouple entirely from network
        backpressure.
        """
        while (1 + self.app_enqueued) - self.snd_una + nbytes > sndbuf \
                and self.snd_una < 1 + self.app_enqueued:
            self._check_error()
            yield self.acked_signal
        self.send(nbytes, message=message)

    def drain(self) -> Generator[Any, Any, None]:
        """Wait until every enqueued byte has been acknowledged."""
        while self.snd_una < 1 + self.app_enqueued:
            self._check_error()
            yield self.acked_signal

    def close(self) -> None:
        """Begin an orderly close once outstanding data drains."""
        if self.state in (ESTABLISHED, CLOSE_WAIT) and not self.fin_pending:
            self.fin_pending = True
            self._try_send()

    def close_and_wait(self) -> Generator[Any, Any, None]:
        """Close and wait for the teardown to finish.

        A connection that dies while closing (peer reset, exhausted
        retransmissions) is treated as closed — the caller wanted it
        gone either way.
        """
        self.close()
        while self.state != CLOSED:
            if self.error is not None:
                return
            yield self.state_signal

    def wait_established(self) -> Generator[Any, Any, "TCPConnection"]:
        while self.state not in (ESTABLISHED, CLOSE_WAIT):
            self._check_error()
            if self.state == CLOSED:
                raise self.error or TCPError("connection failed")
            yield self.state_signal
        return self

    def readable_bytes(self) -> int:
        """Application bytes received in order and not yet consumed."""
        return max(0, self._rcv_data_edge() - 1 - self.app_read)

    # ==================================================================
    # Internals — send machinery
    # ==================================================================
    def _start_active_open(self) -> None:
        self.state = SYN_SENT
        self._send_segment(seq=0, length=0, syn=True)
        self.snd_nxt = 1
        self.snd_max = 1
        self._arm_rtx()

    def _start_passive_open(self, syn_packet: Packet) -> None:
        self.state = SYN_RCVD
        self.rcv_nxt = 1
        self.peer_window = syn_packet.tcp.window
        self._send_segment(seq=0, length=0, syn=True, ack=True)
        self.snd_nxt = 1
        self.snd_max = 1
        self._arm_rtx()

    def _send_limit(self) -> int:
        """Highest offset the windows currently permit."""
        window = min(self.cwnd, float(self.peer_window))
        return self.snd_una + max(int(window), MSS if self.in_fast_recovery else 0)

    def _data_edge(self) -> int:
        """One past the last sendable data offset (before any FIN)."""
        return 1 + self.app_enqueued

    def _try_send(self) -> None:
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, CLOSING, LAST_ACK):
            return
        limit = self._send_limit()
        sent_any = False
        while self.snd_nxt < self._data_edge() and self.snd_nxt < limit:
            length = min(MSS, self._data_edge() - self.snd_nxt, limit - self.snd_nxt)
            if length <= 0:
                break
            push = (self.snd_nxt + length) >= self._data_edge()
            self._send_segment(seq=self.snd_nxt, length=length, ack=True, psh=push)
            self.snd_nxt += length
            self.snd_max = max(self.snd_max, self.snd_nxt)
            sent_any = True
        if (self.fin_pending and self.fin_offset is None
                and self.snd_nxt == self._data_edge()):
            self.fin_offset = self.snd_nxt
            self._send_segment(seq=self.snd_nxt, length=0, fin=True, ack=True)
            self.snd_nxt += 1
            self.snd_max = max(self.snd_max, self.snd_nxt)
            sent_any = True
            if self.state == ESTABLISHED:
                self._set_state(FIN_WAIT_1)
            elif self.state == CLOSE_WAIT:
                self._set_state(LAST_ACK)
        if sent_any:
            self._arm_rtx()

    def _send_segment(self, seq: int, length: int, syn: bool = False,
                      fin: bool = False, ack: bool = False, psh: bool = False,
                      is_rtx: bool = False) -> None:
        flags = 0
        if syn:
            flags |= TCPHeader.SYN
        if fin:
            flags |= TCPHeader.FIN
        if ack:
            flags |= TCPHeader.ACK
        if psh:
            flags |= TCPHeader.PSH
        packet = POOL.acquire_tcp(self.lport, self.rport, seq,
                                  self.rcv_nxt if ack else 0, flags,
                                  self._adv_window(), length)
        if length > 0 and self.send_markers:
            # Attach the markers of every message this segment overlaps;
            # app byte i (0-based) lives at stream offset 1+i.  Carrying
            # the boundary from the *first* byte onward lets the
            # receiver consume large messages incrementally.
            app_lo = seq - 1
            app_hi = app_lo + length
            carried = [(end, obj) for start, end, obj in self.send_markers
                       if app_lo < end and app_hi > start]
            if carried:
                packet.payload = carried
        self.segments_sent += 1
        if is_rtx:
            self.retransmits += 1
        # RTT sampling (Karn's rule: never sample retransmitted data).
        if not is_rtx and length > 0 and self._rtt_sample is None:
            self._rtt_sample = (seq + length, self.sim.now)
        self._cancel_delack()
        self._segments_unacked = 0
        tracer = self.proto.tracer
        if tracer is not None:
            tracer.event("tcp", "tx", packet, seq=seq, length=length,
                         flags=flags, rtx=is_rtx)
        self.proto.ip.send(self.laddr, self.raddr, PROTO_TCP, packet)

    # --- retransmission timer -----------------------------------------
    def _arm_rtx(self) -> None:
        if self._rtx_timer is not None and self._rtx_timer.pending:
            return
        self._rtx_timer = self.proto.callout(self.rto * self.backoff, self._rtx_fire)

    def _rearm_rtx(self) -> None:
        self._cancel_rtx()
        if self.snd_una < self.snd_nxt:
            self._rtx_timer = self.proto.callout(self.rto * self.backoff,
                                                 self._rtx_fire)

    def _cancel_rtx(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _rtx_fire(self) -> None:
        self._rtx_timer = None
        if self.snd_una >= self.snd_nxt and not self._handshake_in_flight():
            return
        self.timeouts += 1
        self.retries += 1
        max_retries = MAX_SYN_RETRIES if self.state in (SYN_SENT, SYN_RCVD) \
            else MAX_DATA_RETRIES
        if self.retries > max_retries:
            self._fail(TCPError("too many retransmissions"))
            return
        # Classic timeout response: collapse to one segment, back off.
        flight = max(self.snd_nxt - self.snd_una, MSS)
        self.ssthresh = max(flight / 2.0, 2.0 * MSS)
        self.cwnd = float(MSS)
        self.in_fast_recovery = False
        self.dupacks = 0
        self.backoff = min(self.backoff * 2, int(MAX_RTO / max(self.rto, 1e-9)) or 1)
        self._rtt_sample = None
        length = self._retransmit_oldest()
        if length:
            # Go-back-N after a timeout: data above the retransmitted
            # segment is resent as the window reopens.
            self.snd_nxt = self.snd_una + length
        self._arm_rtx()

    def _handshake_in_flight(self) -> bool:
        return self.state in (SYN_SENT, SYN_RCVD) and self.snd_una == 0

    def _retransmit_oldest(self) -> int:
        """Resend the oldest unacked segment; returns its length.

        Used by both the timeout path and partial-ACK recovery; only
        the timeout path may additionally pull ``snd_nxt`` back.
        """
        if self.state in (SYN_SENT, SYN_RCVD) and self.snd_una == 0:
            self._send_segment(seq=0, length=0, syn=True,
                               ack=(self.state == SYN_RCVD), is_rtx=True)
            return 0
        if self.fin_offset is not None and self.snd_una == self.fin_offset:
            self._send_segment(seq=self.fin_offset, length=0, fin=True, ack=True,
                               is_rtx=True)
            return 0
        length = min(MSS, self._data_edge() - self.snd_una)
        if length > 0:
            self._send_segment(seq=self.snd_una, length=length, ack=True,
                               psh=(self.snd_una + length >= self._data_edge()),
                               is_rtx=True)
        return length

    # ==================================================================
    # Internals — receive machinery
    # ==================================================================
    def segment_arrives(self, packet: Packet) -> None:
        self.segments_received += 1
        tcp = packet.tcp
        if tcp.has(TCPHeader.RST):
            self._fail(TCPError("connection reset"))
            return
        if self.state == SYN_SENT:
            self._segment_in_syn_sent(packet)
            return
        # Process the ACK before any duplicate-SYN handling: a SYN+ACK
        # retransmission answered while we are SYN_RCVD still completes
        # our side of the handshake.
        if tcp.has(TCPHeader.ACK):
            # RFC 5681 duplicate-ACK criteria: a pure ACK (no data, no
            # SYN/FIN) that neither advances snd_una nor changes the
            # advertised window.  Window updates must not feed fast
            # retransmit.
            is_pure = (packet.payload_bytes == 0
                       and not tcp.has(TCPHeader.SYN)
                       and not tcp.has(TCPHeader.FIN))
            self._process_ack(tcp.ack, tcp.window, countable_dup=is_pure)
        if tcp.has(TCPHeader.SYN):
            # Duplicate SYN from the peer (our reply was lost): if we are
            # still SYN_RCVD resend the SYN+ACK, otherwise a plain ACK
            # tells the peer where we stand.
            if self.state == SYN_RCVD:
                self._send_segment(seq=0, length=0, syn=True, ack=True,
                                   is_rtx=True)
            elif self.state != CLOSED:
                self._send_ack_now()
            return
        if packet.payload_bytes > 0 or tcp.has(TCPHeader.FIN):
            self._process_data(packet)

    def _segment_in_syn_sent(self, packet: Packet) -> None:
        tcp = packet.tcp
        if tcp.has(TCPHeader.SYN) and tcp.has(TCPHeader.ACK) and tcp.ack >= 1:
            self.rcv_nxt = 1
            self.snd_una = 1
            self.peer_window = tcp.window
            self.retries = 0
            self.backoff = 1
            self._cancel_rtx()
            self._set_state(ESTABLISHED)
            self._send_ack_now()
        # Anything else in SYN_SENT is ignored (no simultaneous open).

    def _process_ack(self, ack: int, window: int,
                     countable_dup: bool = True) -> None:
        window_changed = window != self.peer_window
        self.peer_window = window
        if ack > self.snd_max:
            return  # acks data we never sent; ignore
        if ack > self.snd_una:
            self._new_ack(ack)
        elif (ack == self.snd_una and self.snd_nxt > self.snd_una
              and countable_dup and not window_changed):
            self._duplicate_ack()

    def _new_ack(self, ack: int) -> None:
        acked = ack - self.snd_una
        self.snd_una = ack
        # An ACK above a pulled-back snd_nxt acknowledges data sent before
        # a timeout collapsed the window; fast-forward past it.
        self.snd_nxt = max(self.snd_nxt, ack)
        self.retries = 0
        self.backoff = 1
        if self.send_markers and self.send_markers[0][1] <= ack - 1:
            self.send_markers = [m for m in self.send_markers
                                 if m[1] > ack - 1]
        # RTT sample?
        if self._rtt_sample is not None and ack >= self._rtt_sample[0]:
            self._update_rtt(self.sim.now - self._rtt_sample[1])
            self._rtt_sample = None
        # Handshake completion on the passive side.
        if self.state == SYN_RCVD and ack >= 1:
            self._set_state(ESTABLISHED)
            if self._listener is not None:
                self._listener._connection_ready(self)
        # Congestion control.
        if self.in_fast_recovery:
            if ack >= self.recovery_point:
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
                self.dupacks = 0
            else:
                # Partial ack (NewReno-lite): retransmit next hole.
                self._retransmit_oldest()
                self.cwnd = max(self.cwnd - acked + MSS, float(MSS))
        else:
            self.dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += MSS  # slow start
            else:
                self.cwnd += MSS * MSS / self.cwnd  # congestion avoidance
        # FIN acked?
        if self.fin_offset is not None and ack > self.fin_offset:
            if self.state == FIN_WAIT_1:
                self._set_state(FIN_WAIT_2)
            elif self.state == CLOSING:
                self._teardown()
            elif self.state == LAST_ACK:
                self._teardown()
        self._rearm_rtx()
        self.acked_signal.fire()
        self._try_send()

    def _duplicate_ack(self) -> None:
        self.dupacks += 1
        if self.in_fast_recovery:
            self.cwnd += MSS  # window inflation
            self._try_send()
        elif self.dupacks == DUPACK_THRESHOLD:
            flight = self.snd_nxt - self.snd_una
            self.ssthresh = max(flight / 2.0, 2.0 * MSS)
            self.cwnd = self.ssthresh + DUPACK_THRESHOLD * MSS
            self.in_fast_recovery = True
            self.recovery_point = self.snd_nxt
            self.fast_retransmits += 1
            self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        length = min(MSS, self._data_edge() - self.snd_una)
        if length > 0:
            self._send_segment(seq=self.snd_una, length=length, ack=True,
                               psh=(self.snd_una + length >= self._data_edge()),
                               is_rtx=True)
        elif self.fin_offset is not None and self.snd_una == self.fin_offset:
            self._send_segment(seq=self.fin_offset, length=0, fin=True, ack=True,
                               is_rtx=True)
        self._rearm_rtx()

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            delta = sample - self.srtt
            self.srtt += 0.125 * delta
            self.rttvar += 0.25 * (abs(delta) - self.rttvar)
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4.0 * self.rttvar))

    # --- inbound data ---------------------------------------------------
    def _process_data(self, packet: Packet) -> None:
        tcp = packet.tcp
        seg_start = tcp.seq
        seg_end = seg_start + packet.payload_bytes
        fin_here = tcp.has(TCPHeader.FIN)
        if isinstance(packet.payload, list):
            for end, obj in packet.payload:
                if end > self.app_read:  # ignore re-delivery of consumed messages
                    self.recv_markers.setdefault(end, obj)
        advanced = False
        if seg_end > self.rcv_nxt or (fin_here and not self.fin_received):
            if seg_start <= self.rcv_nxt:
                self.rcv_nxt = max(self.rcv_nxt, seg_end)
                self._drain_ooo()
                if fin_here and not self.fin_received and seg_end <= self.rcv_nxt:
                    self.fin_received = True
                    self.rcv_nxt += 1
                    self._fin_arrived()
                advanced = True
            else:
                self._ooo[seg_start] = max(self._ooo.get(seg_start, 0), seg_end)
                if fin_here:
                    self._ooo_fin = seg_end  # noted; handled when hole fills
        elif fin_here and self.fin_received:
            pass  # duplicate FIN
        if advanced:
            self.readable_signal.fire()
            self._segments_unacked += 1
            if tcp.has(TCPHeader.PSH) or self._segments_unacked >= 2:
                self._send_ack_now()
            else:
                self._schedule_delack()
        else:
            # Out-of-order or duplicate: immediate ACK (generates dupacks).
            self._send_ack_now()

    def _drain_ooo(self) -> None:
        changed = True
        while changed:
            changed = False
            for start in sorted(self._ooo):
                end = self._ooo[start]
                if start <= self.rcv_nxt:
                    del self._ooo[start]
                    if end > self.rcv_nxt:
                        self.rcv_nxt = end
                    changed = True
                    break
        if getattr(self, "_ooo_fin", None) is not None \
                and self._ooo_fin <= self.rcv_nxt and not self.fin_received:
            self.fin_received = True
            self.rcv_nxt += 1
            self._ooo_fin = None
            self._fin_arrived()

    def _fin_arrived(self) -> None:
        if self.state == ESTABLISHED:
            self._set_state(CLOSE_WAIT)
        elif self.state == FIN_WAIT_2:
            self._teardown()
        elif self.state == FIN_WAIT_1:
            self._set_state(CLOSING)
        self.readable_signal.fire()
        self._send_ack_now()

    def _rcv_data_edge(self) -> int:
        """rcv_nxt excluding the FIN's sequence slot."""
        return self.rcv_nxt - 1 if self.fin_received else self.rcv_nxt

    def _eof_reached(self) -> bool:
        if self.error is not None:
            return True
        return self.fin_received and self.readable_bytes() == 0

    def _consume(self, nbytes: int) -> None:
        before = self._adv_window()
        self.app_read += nbytes
        # Window update if we had closed the advertised window down.
        if before < MSS and self._adv_window() >= MSS:
            self._send_ack_now()

    def _adv_window(self) -> int:
        backlog = max(0, self._rcv_data_edge() - 1 - self.app_read)
        return max(0, self.rcv_buf - backlog)

    # --- acking ---------------------------------------------------------
    def _send_ack_now(self) -> None:
        self._send_segment(seq=self.snd_nxt, length=0, ack=True)

    def _schedule_delack(self) -> None:
        if self._delack_timer is None or not self._delack_timer.pending:
            self._delack_timer = self.proto.callout(DELAYED_ACK, self._delack_fire)

    def _delack_fire(self) -> None:
        self._delack_timer = None
        if self._segments_unacked > 0:
            self._send_ack_now()

    def _cancel_delack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    # --- teardown ---------------------------------------------------------
    def _set_state(self, state: str) -> None:
        self.state = state
        self.state_signal.fire(state)
        if state == FIN_WAIT_2:
            self.proto.callout(FIN_WAIT_2_TIMEOUT, self._fin_wait_2_reaper)

    def _fin_wait_2_reaper(self) -> None:
        # The peer's FIN never arrived (it may have died); reap the
        # orphaned half-open connection as BSD's fin_wait_2 timer does.
        if self.state == FIN_WAIT_2:
            self._teardown()

    def _teardown(self) -> None:
        self._cancel_rtx()
        self._cancel_delack()
        self._set_state(CLOSED)
        self.proto._forget(self)
        self.readable_signal.fire()
        self.acked_signal.fire()

    def _fail(self, error: TCPError) -> None:
        self.error = error
        # Best-effort reset so the peer does not wait on a ghost.
        header = TCPHeader(src_port=self.lport, dst_port=self.rport,
                           seq=self.snd_nxt, flags=TCPHeader.RST)
        self.proto.ip.send(self.laddr, self.raddr, PROTO_TCP,
                           Packet(tcp=header))
        self._teardown()

    def _check_error(self) -> None:
        if self.error is not None:
            raise self.error

    # Listener backpointer, set on passive connections.
    _listener: Optional["TCPListener"] = None
    _ooo_fin: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TCP {self.laddr}:{self.lport}->{self.raddr}:{self.rport}"
                f" {self.state} una={self.snd_una} nxt={self.snd_nxt}"
                f" rcv={self.rcv_nxt}>")


class TCPListener:
    """A passive socket: accepts inbound connections on a port."""

    def __init__(self, proto: "TCPProtocol", address: str, port: int):
        self.proto = proto
        self.address = address
        self.port = port
        self._ready: List[TCPConnection] = []
        self._signal = Signal(proto.sim, f"listen:{port}")
        self.closed = False

    def accept(self) -> Generator[Any, Any, TCPConnection]:
        while not self._ready:
            yield self._signal
        return self._ready.pop(0)

    def _connection_ready(self, conn: TCPConnection) -> None:
        self._ready.append(conn)
        self._signal.fire()

    def close(self) -> None:
        self.closed = True
        self.proto._listeners.pop(self.port, None)


class TCPProtocol:
    """Per-host TCP: demux, port allocation, timer service."""

    EPHEMERAL_BASE = 49152

    def __init__(self, sim: Simulator, ip_layer, kernel=None,
                 rcv_buf: int = DEFAULT_RCV_BUF):
        self.sim = sim
        self.ip = ip_layer
        self.kernel = kernel
        self.rcv_buf = rcv_buf
        self._listeners: Dict[int, TCPListener] = {}
        self._conns: Dict[Tuple[int, str, int], TCPConnection] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.dropped_no_conn = 0
        self.tracer = None  # repro.obs scope; None = uninstrumented
        ip_layer.register_protocol(PROTO_TCP, self.input)

    # ------------------------------------------------------------------
    def callout(self, delay: float, fn, *args):
        """Schedule a timer through the host kernel when available.

        Kernel callouts are quantized to the clock-tick resolution,
        reproducing the coarse timers of the paper's NetBSD hosts.
        """
        if self.kernel is not None:
            return self.kernel.callout(delay, fn, *args)
        return self.sim.schedule(delay, fn, *args)

    # ------------------------------------------------------------------
    def listen(self, address: str, port: int) -> TCPListener:
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        listener = TCPListener(self, address, port)
        self._listeners[port] = listener
        return listener

    def connect(self, laddr: str, raddr: str, rport: int,
                lport: int = 0) -> Generator[Any, Any, TCPConnection]:
        """Coroutine: active open; returns an ESTABLISHED connection."""
        if lport == 0:
            lport = self._alloc_port()
        key = (lport, raddr, rport)
        if key in self._conns:
            raise ValueError(f"connection {key} already exists")
        conn = TCPConnection(self, laddr, lport, raddr, rport, passive=False)
        self._conns[key] = conn
        conn._start_active_open()
        result = yield from conn.wait_established()
        return result

    def _alloc_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _forget(self, conn: TCPConnection) -> None:
        self._conns.pop((conn.lport, conn.raddr, conn.rport), None)

    # ------------------------------------------------------------------
    def input(self, packet: Packet) -> None:
        # The segment's journey ends in this host: whatever _demux
        # extracts (data ranges, markers, ACK state) is copied out, so
        # the packet slot can be recycled as soon as it returns.
        self._demux(packet)
        POOL.release(packet)

    def _demux(self, packet: Packet) -> None:
        if packet.tcp is None or packet.ip is None:
            return
        key = (packet.tcp.dst_port, packet.ip.src, packet.tcp.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            if self.tracer is not None:
                self.tracer.event("tcp", "rx", packet, seq=packet.tcp.seq,
                                  flags=packet.tcp.flags)
            conn.segment_arrives(packet)
            return
        if packet.tcp.has(TCPHeader.SYN) and not packet.tcp.has(TCPHeader.ACK):
            listener = self._listeners.get(packet.tcp.dst_port)
            if listener is not None and not listener.closed:
                conn = TCPConnection(self, listener.address, listener.port,
                                     packet.ip.src, packet.tcp.src_port,
                                     passive=True)
                conn._listener = listener
                self._conns[key] = conn
                if self.tracer is not None:
                    self.tracer.event("tcp", "rx", packet,
                                      seq=packet.tcp.seq,
                                      flags=packet.tcp.flags)
                conn._start_passive_open(packet)
                return
        self.dropped_no_conn += 1
        if self.tracer is not None:
            self.tracer.drop("tcp", packet, "no_conn",
                             port=packet.tcp.dst_port)
        # No one owns this segment: answer with RST (unless it IS one)
        # so half-open peers tear down instead of waiting forever.
        if not packet.tcp.has(TCPHeader.RST):
            header = TCPHeader(src_port=packet.tcp.dst_port,
                               dst_port=packet.tcp.src_port,
                               seq=packet.tcp.ack, flags=TCPHeader.RST)
            self.ip.send(packet.ip.dst, packet.ip.src, PROTO_TCP,
                         Packet(tcp=header))


class MessageChannel:
    """Request/response framing over a TCP connection.

    The sender tags its byte ranges with message objects
    (``send_message(nbytes, message)``); markers ride inside the TCP
    segments that carry each message's final byte, so a marker can
    never be observed before its bytes have actually crossed the
    network.  ``recv_message`` consumes whole messages strictly in
    stream order.
    """

    def __init__(self, conn: TCPConnection):
        self.conn = conn

    def send_message(self, nbytes: int, message: Any) -> None:
        if nbytes <= 0:
            raise ValueError("a framed message needs at least one byte")
        self.conn.send(nbytes, message)

    def recv_message(self) -> Generator[Any, Any, Optional[Tuple[Any, int]]]:
        """Wait for the next framed message; None on EOF/error."""
        conn = self.conn
        while True:
            end = self._next_marker_end()
            if end is not None:
                break
            if conn.error is not None or conn._eof_reached():
                return None
            yield conn.readable_signal
        message = conn.recv_markers.pop(end)
        need = end - conn.app_read
        got = yield from conn.recv_exact(need)
        if got < need:
            return None
        return message, need

    def _next_marker_end(self) -> Optional[int]:
        conn = self.conn
        candidates = [end for end in conn.recv_markers if end > conn.app_read]
        return min(candidates) if candidates else None
