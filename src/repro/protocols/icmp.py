"""ICMP echo / echo-reply.

Only the pieces the paper's workload needs: the kernel responder that
turns an ECHO into an ECHOREPLY (copying ident, seq and payload — the
payload carries the sender's timestamp, §3.1.1), and a client interface
that the modified ping program drives.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..net.packet import ICMPHeader, IPHeader, Packet, PROTO_ICMP
from ..sim import Simulator

ReplyHandler = Callable[[Packet, float], None]


class ICMPProtocol:
    """Per-host ICMP: echo responder plus echo-reply demux by ident."""

    def __init__(self, sim: Simulator, ip_layer) -> None:
        self.sim = sim
        self.ip = ip_layer
        self._reply_handlers: Dict[int, ReplyHandler] = {}
        self.echoes_answered = 0
        self.replies_received = 0
        ip_layer.register_protocol(PROTO_ICMP, self.input)

    # ------------------------------------------------------------------
    def send_echo(self, src: str, dst: str, ident: int, seq: int,
                  payload_bytes: int,
                  meta: Optional[Dict] = None) -> Packet:
        """Transmit an ECHO carrying the current time in its payload.

        ``meta`` extends the payload metadata; ping uses it to embed its
        host-clock send timestamp (the reply echoes the payload back, so
        the tracer can compute a single-clock round-trip time).
        """
        packet_meta = {"echo_sent_at": self.sim.now}
        if meta:
            packet_meta.update(meta)
        packet = Packet(
            icmp=ICMPHeader(icmp_type=ICMPHeader.ECHO, ident=ident, seq=seq),
            payload_bytes=payload_bytes,
            meta=packet_meta,
        )
        self.ip.send(src, dst, PROTO_ICMP, packet)
        return packet

    def on_echo_reply(self, ident: int, handler: Optional[ReplyHandler]) -> None:
        """Register (or with None, remove) the reply handler for ``ident``."""
        if handler is None:
            self._reply_handlers.pop(ident, None)
        else:
            self._reply_handlers[ident] = handler

    # ------------------------------------------------------------------
    def input(self, packet: Packet) -> None:
        if packet.icmp is None:
            return
        if packet.icmp.icmp_type == ICMPHeader.ECHO:
            self._answer_echo(packet)
        elif packet.icmp.icmp_type == ICMPHeader.ECHOREPLY:
            self.replies_received += 1
            handler = self._reply_handlers.get(packet.icmp.ident)
            if handler is not None:
                handler(packet, self.sim.now)

    def _answer_echo(self, packet: Packet) -> None:
        self.echoes_answered += 1
        reply = Packet(
            icmp=ICMPHeader(icmp_type=ICMPHeader.ECHOREPLY,
                            ident=packet.icmp.ident, seq=packet.icmp.seq),
            payload_bytes=packet.payload_bytes,
            meta=dict(packet.meta),  # the payload timestamp rides back
        )
        self.ip.send(packet.ip.dst, packet.ip.src, PROTO_ICMP, reply)
