"""Sun-RPC-style remote procedure calls over UDP.

NFS v2 runs over UDP with client-side retransmission — on a lossy
wireless link this is what makes the Andrew benchmark's behaviour so
different from the TCP benchmarks (§4.2: "NFS ... makes no special
attempt to defer or eliminate traffic on networks of low quality").

The model: each call is one datagram (header + argument bytes), each
reply one datagram.  Clients retransmit on a timeout with exponential
backoff; servers keep a duplicate-request cache so retransmitted calls
are answered without re-executing.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..sim import Signal, Simulator, Timeout
from .udp import UdpSocket, UDPProtocol

RPC_HEADER_BYTES = 96  # xid, call/reply discriminant, program, creds, verifier

# Handler: (proc_name, args) -> (result, reply_payload_bytes)
RpcHandler = Callable[[str, Any], Tuple[Any, int]]


class RpcTimeout(Exception):
    """The call exhausted its retransmissions without a reply."""


class RpcServer:
    """Serves RPC calls arriving on a UDP port."""

    DUP_CACHE_SIZE = 256

    def __init__(self, sim: Simulator, udp: UDPProtocol, address: str, port: int,
                 handler: RpcHandler, service_time: float = 0.0):
        self.sim = sim
        self.sock = udp.bind(address, port)
        self.handler = handler
        self.service_time = service_time
        self.calls_handled = 0
        self.duplicates_seen = 0
        self._dup_cache: "OrderedDict[Tuple[str, int, int], Tuple[Any, int]]" = \
            OrderedDict()
        self._running = True

    def loop(self) -> Generator[Any, Any, None]:
        """Server process body: spawn with ``sim.spawn(server.loop())``."""
        while self._running:
            src_addr, src_port, payload, _ = yield from self.sock.recv()
            if not isinstance(payload, tuple) or payload[0] != "call":
                continue
            _, xid, proc, args = payload
            key = (src_addr, src_port, xid)
            cached = self._dup_cache.get(key)
            if cached is not None:
                self.duplicates_seen += 1
                result, reply_bytes = cached
            else:
                if self.service_time > 0.0:
                    yield Timeout(self.service_time)
                outcome = self.handler(proc, args)
                if len(outcome) == 3:
                    result, reply_bytes, extra_delay = outcome
                    if extra_delay > 0.0:
                        yield Timeout(extra_delay)
                else:
                    result, reply_bytes = outcome
                self.calls_handled += 1
                self._dup_cache[key] = (result, reply_bytes)
                while len(self._dup_cache) > self.DUP_CACHE_SIZE:
                    self._dup_cache.popitem(last=False)
            self.sock.send_to(src_addr, src_port,
                              payload=("reply", xid, result),
                              payload_bytes=RPC_HEADER_BYTES + reply_bytes)

    def stop(self) -> None:
        self._running = False
        self.sock.close()


class RpcClient:
    """Issues RPC calls with retransmission and duplicate filtering."""

    def __init__(self, sim: Simulator, udp: UDPProtocol, address: str,
                 server_addr: str, server_port: int,
                 initial_timeout: float = 1.1, max_retries: int = 8,
                 max_timeout: float = 30.0):
        self.sim = sim
        self.sock = udp.bind(address, 0)
        self.server_addr = server_addr
        self.server_port = server_port
        self.initial_timeout = initial_timeout
        self.max_retries = max_retries
        self.max_timeout = max_timeout
        self._xid = itertools.count(1)
        self._pending: Dict[int, Signal] = {}
        self._replies: Dict[int, Any] = {}
        self.calls = 0
        self.retransmissions = 0
        self.timeouts_exhausted = 0
        self._dispatcher: Optional[Any] = None

    def dispatcher(self) -> Generator[Any, Any, None]:
        """Background process demuxing replies to waiting callers."""
        while True:
            _, _, payload, _ = yield from self.sock.recv()
            if not isinstance(payload, tuple) or payload[0] != "reply":
                continue
            _, xid, result = payload
            signal = self._pending.get(xid)
            if signal is not None:
                self._replies[xid] = result
                signal.fire()

    def call(self, proc: str, args: Any,
             arg_bytes: int) -> Generator[Any, Any, Any]:
        """Coroutine: perform one RPC; returns the server's result."""
        xid = next(self._xid)
        signal = Signal(self.sim, f"rpc:{xid}")
        self._pending[xid] = signal
        payload = ("call", xid, proc, args)
        size = RPC_HEADER_BYTES + arg_bytes
        timeout = self.initial_timeout
        self.calls += 1
        try:
            for attempt in range(self.max_retries + 1):
                if attempt > 0:
                    self.retransmissions += 1
                self.sock.send_to(self.server_addr, self.server_port,
                                  payload=payload, payload_bytes=size)
                deadline = self.sim.now + timeout
                while self.sim.now < deadline:
                    if xid in self._replies:
                        return self._replies.pop(xid)
                    remaining = deadline - self.sim.now
                    race = _first_of(self.sim, signal, remaining)
                    yield race
                if xid in self._replies:
                    return self._replies.pop(xid)
                timeout = min(timeout * 2.0, self.max_timeout)
            self.timeouts_exhausted += 1
            raise RpcTimeout(f"rpc {proc} to {self.server_addr} timed out")
        finally:
            self._pending.pop(xid, None)
            self._replies.pop(xid, None)

    def close(self) -> None:
        self.sock.close()


class _Relay:
    """Forwards a signal wakeup into a race signal, cancelling the timer."""

    __slots__ = ("_timer", "_race")

    def __init__(self, timer, race: Signal):
        self._timer = timer
        self._race = race

    def _resume(self, value: Any) -> None:
        self._timer.cancel()
        self._race.fire(value)


def _first_of(sim: Simulator, signal: Signal, timeout: float) -> Signal:
    """A signal that fires on ``signal`` or after ``timeout``.

    Implemented by returning a fresh signal wired to both sources; the
    loser's wakeup finds the caller no longer waiting, which is safe.
    """
    race = Signal(sim, "race")
    timer = sim.schedule(timeout, race.fire)
    signal._add_waiter(_Relay(timer, race))  # type: ignore[arg-type]
    return race
