"""Protocol stack: IP, ICMP, UDP, TCP (Reno), RPC."""

from .icmp import ICMPProtocol
from .ip import IPLayer, RoutingTable
from .rpc import RPC_HEADER_BYTES, RpcClient, RpcServer, RpcTimeout
from .tcp import (
    MSS,
    MessageChannel,
    TCPConnection,
    TCPError,
    TCPListener,
    TCPProtocol,
)
from .udp import UDPProtocol, UdpSocket

__all__ = [
    "ICMPProtocol",
    "IPLayer",
    "MSS",
    "MessageChannel",
    "RPC_HEADER_BYTES",
    "RoutingTable",
    "RpcClient",
    "RpcServer",
    "RpcTimeout",
    "TCPConnection",
    "TCPError",
    "TCPListener",
    "TCPProtocol",
    "UDPProtocol",
    "UdpSocket",
]
