"""IP layer: addressing, routing, forwarding, fragmentation, demux.

The modulation layer is spliced *between IP and the link device*
(§3.3), so the IP layer deliberately routes every packet through a pair
of indirection points — ``outbound_filter`` and ``inbound_filter`` —
that default to pass-through and that
:class:`repro.core.modulator.ModulationLayer` replaces when installed.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..net.device import NetworkDevice
from ..net.packet import ETHERNET_MTU, IP_HEADER_BYTES, IPHeader, POOL, Packet
from ..sim import Simulator

PacketHandler = Callable[[Packet], None]

REASSEMBLY_TIMEOUT = 30.0


class Reassembler:
    """IPv4 fragment reassembly.

    Datagrams larger than the MTU (NFS's 8 KB UDP transfers) travel as
    fragments; the whole datagram is delivered only when every fragment
    has arrived, so the loss of *any* fragment loses the datagram — the
    classic NFS-over-lossy-wireless amplification.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        # (src, ident) -> {"need": int, "have": set, "original": Packet}
        self._partial: Dict[Tuple[str, int], Dict] = {}
        self.reassembled = 0
        self.timed_out = 0
        self.tracer = None  # repro.obs scope; None = uninstrumented

    def accept(self, packet: Packet) -> Optional[Packet]:
        """Feed one fragment; returns the full datagram when complete."""
        ident, index, count = packet.meta["fragment"]
        key = (packet.ip.src, ident)
        entry = self._partial.get(key)
        if entry is None:
            entry = {"need": count, "have": set(),
                     "original": packet.meta["original"],
                     "timer": self.sim.schedule(REASSEMBLY_TIMEOUT,
                                                self._expire, key)}
            self._partial[key] = entry
        entry["have"].add(index)
        if len(entry["have"]) == entry["need"]:
            del self._partial[key]
            # Cancel the expiry timer so completed datagrams don't pile
            # dead 30-second callouts onto the event heap.
            entry["timer"].cancel()
            self.reassembled += 1
            return entry["original"]
        return None

    def _expire(self, key: Tuple[str, int]) -> None:
        entry = self._partial.pop(key, None)
        if entry is not None:
            self.timed_out += 1
            if self.tracer is not None:
                self.tracer.drop("ip", entry["original"],
                                 "reassembly_timeout")

    @property
    def pending(self) -> int:
        return len(self._partial)


class RoutingTable:
    """Longest-prefix routing reduced to exact-host routes plus a default.

    Our topologies are single-subnet (hosts bridged at layer 2), so
    host routes and one default route cover everything the paper needs.
    """

    def __init__(self) -> None:
        self._host_routes: Dict[str, NetworkDevice] = {}
        self._default: Optional[NetworkDevice] = None

    def add_host_route(self, dst: str, device: NetworkDevice) -> None:
        self._host_routes[dst] = device

    def set_default(self, device: NetworkDevice) -> None:
        self._default = device

    def lookup(self, dst: str) -> Optional[NetworkDevice]:
        return self._host_routes.get(dst, self._default)

    def routes(self) -> Dict[str, str]:
        table = {dst: dev.name for dst, dev in self._host_routes.items()}
        if self._default is not None:
            table["default"] = self._default.name
        return table


class IPLayer:
    """Per-host IP input/output with pluggable filters."""

    def __init__(self, sim: Simulator, addresses: List[str],
                 forwarding: bool = False, mtu: int = ETHERNET_MTU):
        self.sim = sim
        self.addresses = list(addresses)
        self.forwarding = forwarding
        self.mtu = mtu
        self.reassembler = Reassembler(sim)
        self.fragments_sent = 0
        self.datagrams_fragmented = 0
        self.routing = RoutingTable()
        self._proto_handlers: Dict[int, PacketHandler] = {}
        self._ident = itertools.count(1)
        # Filters sit between IP and the link layer; a modulation layer
        # replaces them.  Each receives (packet, device, continuation).
        self.outbound_filter: Optional[Callable[[Packet, NetworkDevice,
                                                 Callable[[Packet], None]], None]] = None
        self.inbound_filter: Optional[Callable[[Packet, Callable[[Packet], None]],
                                               None]] = None
        self.tracer = None  # repro.obs scope; None = uninstrumented
        self.sent = 0
        self.received = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0
        self.dropped_not_mine = 0

    # ------------------------------------------------------------------
    def register_protocol(self, proto: int, handler: PacketHandler) -> None:
        self._proto_handlers[proto] = handler

    def attach_device(self, device: NetworkDevice) -> None:
        device.upstream = self.input

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------
    def output(self, packet: Packet) -> None:
        """Route and transmit a packet built by an upper layer."""
        if packet.ip is None:
            raise ValueError("packet has no IP header")
        if packet.ip.ident == 0:
            packet.ip.ident = next(self._ident)
        device = self.routing.lookup(packet.ip.dst)
        tracer = self.tracer
        if device is None:
            self.dropped_no_route += 1
            if tracer is not None:
                tracer.drop("ip", packet, "no_route", dst=packet.ip.dst)
            return
        self.sent += 1
        if tracer is not None:
            tracer.event("ip", "send", packet, dst=packet.ip.dst,
                         proto=packet.ip.proto)
        if packet.ip_size > self.mtu:
            self._fragment(packet, device)
        else:
            self._to_device(packet, device)

    def _fragment(self, packet: Packet, device: NetworkDevice) -> None:
        """Split an oversized datagram into MTU-sized fragments.

        Each fragment is a real packet on the wire (it pays its own IP
        header and link costs); the original datagram rides along in
        fragment metadata and is delivered by the receiver's
        reassembler once every fragment arrives.
        """
        self.datagrams_fragmented += 1
        chunk_capacity = self.mtu - IP_HEADER_BYTES
        body = packet.ip_size - IP_HEADER_BYTES
        count = (body + chunk_capacity - 1) // chunk_capacity
        ident = packet.ip.ident
        offset = 0
        for index in range(count):
            chunk = min(chunk_capacity, body - offset)
            frag = POOL.acquire_fragment(
                packet.ip.src, packet.ip.dst, packet.ip.proto,
                packet.ip.ttl, ident, chunk, (ident, index, count), packet)
            offset += chunk
            self.fragments_sent += 1
            if self.tracer is not None:
                self.tracer.event("ip", "fragment", frag,
                                  index=index, count=count)
            self._to_device(frag, device)

    def _to_device(self, packet: Packet, device: NetworkDevice) -> None:
        if self.outbound_filter is not None:
            self.outbound_filter(packet, device, device.send)
        else:
            device.send(packet)

    def send(self, src: str, dst: str, proto: int, packet: Packet) -> None:
        """Convenience: stamp an IP header onto ``packet`` and output it."""
        hdr = packet.ip
        if hdr is None:
            packet.ip = IPHeader(src=src, dst=dst, proto=proto,
                                 ident=next(self._ident))
        else:
            # A recycled pool slot arrives with its previous journey's
            # header still attached (headers are never shared between
            # packets); restamp every field in place.
            hdr.src = src
            hdr.dst = dst
            hdr.proto = proto
            hdr.ttl = 64
            hdr.ident = next(self._ident)
        packet._size = None  # header added after construction: drop the size memo
        self.output(packet)

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------
    def input(self, packet: Packet) -> None:
        if packet.ip is None:
            return
        if packet.ip.dst in self.addresses:
            if self.inbound_filter is not None:
                self.inbound_filter(packet, self._local_deliver)
            else:
                self._local_deliver(packet)
        elif self.forwarding:
            self._forward(packet)
        else:
            self.dropped_not_mine += 1
            if self.tracer is not None:
                self.tracer.drop("ip", packet, "not_mine", dst=packet.ip.dst)
            POOL.release(packet)

    def _local_deliver(self, packet: Packet) -> None:
        if "fragment" in packet.meta:
            whole = self.reassembler.accept(packet)
            # The reassembler recorded the fragment's arrival; the
            # fragment itself is finished either way.
            POOL.release(packet)
            if whole is None:
                return
            packet = whole
            if self.tracer is not None:
                self.tracer.event("ip", "reassembled", packet)
        self.received += 1
        if self.tracer is not None:
            self.tracer.event("ip", "recv", packet, src=packet.ip.src,
                              proto=packet.ip.proto)
        handler = self._proto_handlers.get(packet.ip.proto)
        if handler is not None:
            handler(packet)

    def _forward(self, packet: Packet) -> None:
        tracer = self.tracer
        if packet.ip.ttl <= 1:
            self.dropped_ttl += 1
            if tracer is not None:
                tracer.drop("ip", packet, "ttl", dst=packet.ip.dst)
            return
        device = self.routing.lookup(packet.ip.dst)
        if device is None:
            self.dropped_no_route += 1
            if tracer is not None:
                tracer.drop("ip", packet, "no_route", dst=packet.ip.dst)
            return
        packet.ip.ttl -= 1
        self.forwarded += 1
        if tracer is not None:
            tracer.event("ip", "forward", packet, dst=packet.ip.dst)
        self._to_device(packet, device)
