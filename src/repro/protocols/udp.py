"""UDP sockets.

Datagram service with port demux and a coroutine-friendly receive
queue.  NFS (and the SynRGen cross traffic that drives Chatterbox) run
over these sockets via the RPC layer.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from ..net.packet import POOL, Packet, PROTO_UDP, UDPHeader
from ..sim import Queue, Simulator

Datagram = Tuple[str, int, Any, int]  # (src_addr, src_port, payload, payload_bytes)


class UdpSocket:
    """A bound UDP socket."""

    def __init__(self, proto: "UDPProtocol", address: str, port: int):
        self.proto = proto
        self.address = address
        self.port = port
        self._queue: Queue = Queue(proto.sim, name=f"udp:{port}")
        self.closed = False
        self.rx_datagrams = 0
        self.tx_datagrams = 0

    def send_to(self, dst_addr: str, dst_port: int, payload: Any = None,
                payload_bytes: int = 0) -> None:
        if self.closed:
            raise RuntimeError("socket is closed")
        packet = POOL.acquire_udp(self.port, dst_port, payload,
                                  payload_bytes)
        self.tx_datagrams += 1
        if self.proto.tracer is not None:
            self.proto.tracer.event("udp", "tx", packet,
                                    dst_port=dst_port, port=self.port)
        self.proto.ip.send(self.address, dst_addr, PROTO_UDP, packet)

    def recv(self) -> Generator[Any, Any, Datagram]:
        """Coroutine: wait for the next datagram."""
        item = yield from self._queue.get()
        return item

    def recv_nowait(self) -> Optional[Datagram]:
        if len(self._queue):
            # Drain synchronously; Queue stores items in a plain list.
            return self._queue._items.pop(0)
        return None

    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.proto._unbind(self.port)

    def _deliver(self, packet: Packet) -> None:
        self.rx_datagrams += 1
        self._queue.put((packet.ip.src, packet.udp.src_port,
                         packet.payload, packet.payload_bytes))


class UDPProtocol:
    """Per-host UDP with ephemeral port allocation."""

    EPHEMERAL_BASE = 32768

    def __init__(self, sim: Simulator, ip_layer) -> None:
        self.sim = sim
        self.ip = ip_layer
        self._sockets: Dict[int, UdpSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.dropped_no_port = 0
        self.tracer = None  # repro.obs scope; None = uninstrumented
        ip_layer.register_protocol(PROTO_UDP, self.input)

    def bind(self, address: str, port: int = 0) -> UdpSocket:
        if port == 0:
            port = self._alloc_port()
        if port in self._sockets:
            raise ValueError(f"port {port} already bound")
        sock = UdpSocket(self, address, port)
        self._sockets[port] = sock
        return sock

    def _alloc_port(self) -> int:
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def input(self, packet: Packet) -> None:
        # Delivery copies the datagram out of the packet (the socket
        # queue holds an address/payload tuple), so the slot recycles
        # the moment demux returns.
        self._demux(packet)
        POOL.release(packet)

    def _demux(self, packet: Packet) -> None:
        if packet.udp is None:
            return
        sock = self._sockets.get(packet.udp.dst_port)
        if sock is None:
            self.dropped_no_port += 1
            if self.tracer is not None:
                self.tracer.drop("udp", packet, "no_port",
                                 port=packet.udp.dst_port)
            return
        if self.tracer is not None:
            self.tracer.event("udp", "rx", packet,
                              port=packet.udp.dst_port)
        sock._deliver(packet)
