"""Metrics registry: counters, gauges, histograms, and collectors.

The registry is the aggregation point of the observability layer.  Two
kinds of metric feed it:

* **Owned instruments** — :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` objects created through the registry and updated
  directly by instrumented code.  Instruments are plain-attribute
  objects (``__slots__``, no locks, no label indirection) so an
  ``inc()`` on a hot path costs one attribute add — the same budget
  :mod:`repro.sim.perf` allows the engine's counters.
* **Collectors** — zero-cost adapters over counters that already exist
  as plain integer attributes elsewhere (``DropTailQueue.dropped``,
  ``NetworkDevice.tx_drops``, the engine's perf counters, ...).  A
  collector is a callable returning a flat ``{name: value}`` dict; it
  runs only at :meth:`MetricsRegistry.snapshot` time, so registering a
  subsystem adds *nothing* to its hot path.

Histogram buckets are fixed at construction (cumulative-free, one count
per bucket plus overflow), which keeps ``observe`` a single bisect.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time float metric (set, not accumulated)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram of float observations.

    ``edges`` are the upper bounds of each bucket, strictly increasing;
    one extra overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "help", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float], help: str = ""):
        edges = list(edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.help = help
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }


Collector = Callable[[], Dict[str, float]]


class MetricsRegistry:
    """Namespace of instruments plus snapshot-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, so independent
    subsystems can share a metric without coordinating.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Collector] = []

    # -- instruments ----------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help)
        return inst

    def histogram(self, name: str, edges: Sequence[float],
                  help: str = "") -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, edges, help)
        elif tuple(edges) != inst.edges:
            raise ValueError(f"histogram {name!r} already registered "
                             f"with different edges")
        return inst

    # -- collectors -----------------------------------------------------
    def add_collector(self, collector: Collector) -> None:
        """Register a snapshot-time source of ``{name: value}`` pairs."""
        self._collectors.append(collector)

    # -- output ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of every metric the registry knows.

        Collector output lands under ``"collected"``; a collector that
        reuses a name overwrites the earlier value (last registration
        wins), which collectors avoid by namespacing
        (``host.device.counter``).
        """
        collected: Dict[str, float] = {}
        for collector in self._collectors:
            collected.update(collector())
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
            "collected": dict(sorted(collected.items())),
        }
