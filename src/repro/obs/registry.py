"""Metrics registry: counters, gauges, histograms, and collectors.

The registry is the aggregation point of the observability layer.  Two
kinds of metric feed it:

* **Owned instruments** — :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` objects created through the registry and updated
  directly by instrumented code.  Instruments are plain-attribute
  objects (``__slots__``, no locks, no label indirection) so an
  ``inc()`` on a hot path costs one attribute add — the same budget
  :mod:`repro.sim.perf` allows the engine's counters.
* **Collectors** — zero-cost adapters over counters that already exist
  as plain integer attributes elsewhere (``DropTailQueue.dropped``,
  ``NetworkDevice.tx_drops``, the engine's perf counters, ...).  A
  collector is a callable returning a flat ``{name: value}`` dict; it
  runs only at :meth:`MetricsRegistry.snapshot` time, so registering a
  subsystem adds *nothing* to its hot path.

Histogram buckets are fixed at construction (cumulative-free, one count
per bucket plus overflow), which keeps ``observe`` a single bisect.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time float metric (set, not accumulated)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram of float observations.

    ``edges`` are the upper bounds of each bucket, strictly increasing;
    one extra overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "help", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float], help: str = ""):
        edges = list(edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.help = help
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }


Collector = Callable[[], Dict[str, float]]


class MetricsRegistry:
    """Namespace of instruments plus snapshot-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, so independent
    subsystems can share a metric without coordinating.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Collector] = []
        self._collector_keys: Dict[str, int] = {}

    # -- instruments ----------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help)
        return inst

    def histogram(self, name: str, edges: Sequence[float],
                  help: str = "") -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, edges, help)
        elif tuple(edges) != inst.edges:
            raise ValueError(f"histogram {name!r} already registered "
                             f"with different edges")
        return inst

    # -- collectors -----------------------------------------------------
    def add_collector(self, collector: Collector,
                      key: Optional[str] = None) -> None:
        """Register a snapshot-time source of ``{name: value}`` pairs.

        ``key`` makes registration idempotent: registering the same key
        again *replaces* the earlier collector instead of adding a
        duplicate, so re-running ``attach_observability`` or reusing a
        :class:`~repro.validation.parallel.TrialExecutor` against the
        same registry never double-counts.
        """
        if key is not None:
            slot = self._collector_keys.get(key)
            if slot is not None:
                self._collectors[slot] = collector
                return
            self._collector_keys[key] = len(self._collectors)
        self._collectors.append(collector)

    # -- output ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of every metric the registry knows.

        Collector output lands under ``"collected"``; a collector that
        reuses a name overwrites the earlier value (last registration
        wins), which collectors avoid by namespacing
        (``host.device.counter``).
        """
        collected: Dict[str, float] = {}
        for collector in self._collectors:
            collected.update(collector())
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
            "collected": dict(sorted(collected.items())),
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """The registry as Prometheus text exposition (version 0.0.4).

        * counters → ``<prefix>_<name>_total`` with ``# TYPE ... counter``
        * gauges and collector output → ``# TYPE ... gauge``
        * histograms → cumulative ``_bucket{le=...}`` series ending in
          ``le="+Inf"`` plus ``_sum``/``_count``

        Metric names are sanitized to the Prometheus grammar
        (``[a-zA-Z_:][a-zA-Z0-9_:]*``); dots become underscores.  When
        two registry names sanitize to the same exposition name, the
        first wins and later ones are dropped rather than emitting an
        invalid duplicate family.
        """
        lines: List[str] = []
        emitted: set = set()

        def _name(raw: str, suffix: str = "") -> Optional[str]:
            base = _sanitize_metric_name(f"{prefix}_{raw}") + suffix
            if base in emitted:
                return None
            emitted.add(base)
            return base

        def _fmt(value: float) -> str:
            if isinstance(value, float):
                if value != value:
                    return "NaN"
                if value == float("inf"):
                    return "+Inf"
                if value == float("-inf"):
                    return "-Inf"
                if value == int(value) and abs(value) < 1e15:
                    return str(int(value))
            return repr(value) if isinstance(value, float) else str(value)

        for raw, counter in sorted(self._counters.items()):
            name = _name(raw, "_total")
            if name is None:
                continue
            if counter.help:
                lines.append(f"# HELP {name} {_escape_help(counter.help)}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(counter.value)}")
        for raw, gauge in sorted(self._gauges.items()):
            name = _name(raw)
            if name is None:
                continue
            if gauge.help:
                lines.append(f"# HELP {name} {_escape_help(gauge.help)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(gauge.value)}")
        for raw, hist in sorted(self._histograms.items()):
            name = _name(raw)
            if name is None:
                continue
            if hist.help:
                lines.append(f"# HELP {name} {_escape_help(hist.help)}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for edge, count in zip(hist.edges, hist.counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_fmt(float(edge))}"}} '
                             f"{cumulative}")
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.total}')
            lines.append(f"{name}_sum {_fmt(hist.sum)}")
            lines.append(f"{name}_count {hist.total}")
        collected: Dict[str, float] = {}
        for collector in self._collectors:
            collected.update(collector())
        for raw, value in sorted(collected.items()):
            name = _name(raw)
            if name is None:
                continue
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(float(value))}")
        return "\n".join(lines) + "\n" if lines else ""


def _sanitize_metric_name(raw: str) -> str:
    """Map an arbitrary registry name onto the Prometheus name grammar
    ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots and dashes become underscores)."""
    out = []
    for i, ch in enumerate(raw):
        if ch.isascii() and (ch.isalpha() or ch == "_" or ch == ":"
                             or (ch.isdigit() and i > 0)):
            out.append(ch)
        else:
            out.append("_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "_" + text
    return text


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")
