"""Modulation-fidelity audit: what the replay *intended* vs. *applied*.

The paper's accuracy discussion (§5.4) attributes most replay error to
three mechanisms inside the modulation machinery:

* **tick rounding** — releases land on the kernel's 10 ms callout grid,
  and anything under half a tick is sent immediately, so short sparse
  messages are under-delayed;
* **feed starvation** — when the :class:`ReplayFeedDevice` runs dry the
  layer holds the last tuple (or passes packets through unmodulated
  before the first tuple arrives);
* **loss realization** — each tuple's loss probability ``L`` is sampled
  per packet, so the observed drop rate only converges to ``L`` over
  many packets.

The audit turns that discussion into queryable data: for every quality
tuple the modulation layer enforced, it accumulates the delay the model
computed (``intended``) and the delay the tick-quantized kernel will
actually apply (``applied``), plus packet/byte/drop counts.  The
modulation layer feeds it only when attached, under the same
``is not None`` guard as the tracer, so unaudited runs pay one
attribute check per packet.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .registry import Histogram

TupleKey = Tuple[float, float, float, float, float]


class _TupleAudit:
    """Accumulators for one quality tuple."""

    __slots__ = ("packets", "bytes", "dropped", "delivered",
                 "intended_delay_sum", "applied_delay_sum",
                 "under_delayed", "over_delayed", "sent_immediately")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.dropped = 0
        self.delivered = 0
        self.intended_delay_sum = 0.0
        self.applied_delay_sum = 0.0
        self.under_delayed = 0
        self.over_delayed = 0
        self.sent_immediately = 0


class ModulationFidelityAudit:
    """Per-tuple intended-vs-applied accounting for one modulation layer."""

    def __init__(self, tick_resolution: float,
                 delay_histogram: Optional[Histogram] = None):
        self.tick_resolution = tick_resolution
        self.delay_histogram = delay_histogram
        self._by_tuple: Dict[TupleKey, _TupleAudit] = {}
        self._order: List[TupleKey] = []
        self.passthrough = 0  # packets forwarded with no tuple at all

    # ------------------------------------------------------------------
    def observe(self, tup, size: int, intended: float, applied: float,
                dropped: bool) -> None:
        """One modulated packet.

        ``intended`` is the exact model delay (bottleneck queueing
        included — that part is intended); ``applied`` is the delay
        after the kernel's round-to-tick / send-immediately policy.
        Dropped packets count toward the loss audit but contribute no
        delay samples (they are never delivered).
        """
        key = (tup.d, tup.F, tup.Vb, tup.Vr, tup.L)
        audit = self._by_tuple.get(key)
        if audit is None:
            audit = self._by_tuple[key] = _TupleAudit()
            self._order.append(key)
        audit.packets += 1
        audit.bytes += size
        if dropped:
            audit.dropped += 1
            return
        audit.delivered += 1
        audit.intended_delay_sum += intended
        audit.applied_delay_sum += applied
        if applied < intended - 1e-12:
            audit.under_delayed += 1
        elif applied > intended + 1e-12:
            audit.over_delayed += 1
        if applied == 0.0:
            audit.sent_immediately += 1
        if self.delay_histogram is not None:
            self.delay_histogram.observe(applied)

    def observe_passthrough(self) -> None:
        """A packet forwarded unmodulated because the feed was empty."""
        self.passthrough += 1

    # ------------------------------------------------------------------
    @property
    def tuples_seen(self) -> int:
        return len(self._by_tuple)

    def enforced_order(self) -> List[TupleKey]:
        """Tuple keys in the order the layer first enforced them.

        The replay feed is a strict FIFO, so this must always be a
        subsequence of the replay trace's own first-occurrence order —
        the invariant ``repro.check``'s FIFO monitor asserts.
        """
        return list(self._order)

    def as_records(self) -> List[Dict[str, Any]]:
        """One JSON-friendly record per tuple, in first-enforced order."""
        records = []
        for key in self._order:
            d, F, Vb, Vr, L = key
            a = self._by_tuple[key]
            n = a.delivered
            records.append({
                "d": d, "F": F, "Vb": Vb, "Vr": Vr, "L": L,
                "intended_bandwidth_bps": (8.0 / Vb) if Vb > 0
                                          else float("inf"),
                "packets": a.packets,
                "bytes": a.bytes,
                "dropped": a.dropped,
                "observed_loss": a.dropped / a.packets if a.packets else 0.0,
                "mean_intended_delay": a.intended_delay_sum / n if n else 0.0,
                "mean_applied_delay": a.applied_delay_sum / n if n else 0.0,
                "mean_rounding_error": ((a.applied_delay_sum
                                         - a.intended_delay_sum) / n
                                        if n else 0.0),
                "under_delayed": a.under_delayed,
                "over_delayed": a.over_delayed,
                "sent_immediately": a.sent_immediately,
            })
        return records

    def totals(self) -> Dict[str, Any]:
        """Whole-run rollup across every tuple."""
        packets = sum(a.packets for a in self._by_tuple.values())
        dropped = sum(a.dropped for a in self._by_tuple.values())
        delivered = sum(a.delivered for a in self._by_tuple.values())
        intended = sum(a.intended_delay_sum for a in self._by_tuple.values())
        applied = sum(a.applied_delay_sum for a in self._by_tuple.values())
        return {
            "tuples_enforced": len(self._by_tuple),
            "packets": packets,
            "dropped": dropped,
            "passthrough": self.passthrough,
            "observed_loss": dropped / packets if packets else 0.0,
            "mean_intended_delay": intended / delivered if delivered else 0.0,
            "mean_applied_delay": applied / delivered if delivered else 0.0,
            "under_delayed": sum(a.under_delayed
                                 for a in self._by_tuple.values()),
            "sent_immediately": sum(a.sent_immediately
                                    for a in self._by_tuple.values()),
        }
