"""Attaching the observability layer to a world.

:class:`WorldObservability` owns one trial's instruments: a
:class:`~repro.obs.registry.MetricsRegistry`, optionally a
:class:`~repro.obs.tracer.LifecycleTracer`, and — once a modulation
layer is installed — a
:class:`~repro.obs.audit.ModulationFidelityAudit`.  ``attach`` walks a
world (:class:`~repro.hosts.worlds.LiveWorld` or
:class:`~repro.hosts.worlds.ModulationWorld`) and hands every
instrumented object its tracer scope; the registry sees those objects
only through snapshot-time collectors, so metrics collection adds
nothing to any hot path.

Everything here must respect the harness's determinism contract:
attaching observability draws no RNG, schedules no events, and touches
no packet — so validation tables from an instrumented run are
byte-identical to an uninstrumented one.

The module-level ``enabled()`` flag is the single global kill switch:
:func:`attach_observability` returns ``None`` when disabled, and every
call site threads that ``None`` through, leaving all ``tracer`` /
``audit`` attributes at their ``None`` defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .audit import ModulationFidelityAudit
from .registry import MetricsRegistry
from .tracer import DEFAULT_SPAN_LIMIT, LifecycleTracer

# Applied-delay histogram edges (seconds).  The first bucket isolates
# sub-half-tick "sent immediately" releases; the rest follow the spread
# of real quality tuples (a few ms on a clean LAN to seconds in the
# Wean elevator outage).
DELAY_BUCKETS = (0.005, 0.010, 0.020, 0.050, 0.100,
                 0.250, 0.500, 1.000, 2.500)

_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Globally enable/disable observability attachment."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


@dataclass(frozen=True)
class ObsConfig:
    """What to instrument.  Frozen and primitive-only, so it pickles
    into :class:`~repro.validation.parallel.TrialSpec` unchanged.

    ``metrics``
        Attach a registry with per-world collectors; snapshots land in
        the trial record under ``"metrics"``.
    ``trace``
        Attach a :class:`LifecycleTracer` to every layer; the record
        gains a ``"trace"`` summary.
    ``spans``
        Also ship the raw span-event list (``"spans"``) — the input to
        the Chrome trace sink.  Off by default because a long trial's
        spans dominate the record's size.
    ``profile``
        Wrap each trial's simulator run in a :mod:`cProfile` session and
        attach the top-``profile_top`` functions (by internal time) to
        the record under ``"profile"`` — the input to
        :func:`repro.obs.telemetry.aggregate_profiles`.
    """

    metrics: bool = True
    trace: bool = False
    spans: bool = False
    span_limit: int = DEFAULT_SPAN_LIMIT
    profile: bool = False
    profile_top: int = 20

    def cache_token(self):
        # Pipeline fingerprints must not move for pre-existing configs:
        # reproduce the dataclass token exactly as it was before the
        # profile fields existed, adding them only when profiling is on
        # (profiled results are fresh entries either way).
        token = {
            "__dataclass__": "ObsConfig",
            "metrics": self.metrics,
            "trace": self.trace,
            "spans": self.spans,
            "span_limit": self.span_limit,
        }
        if self.profile:
            token["profile"] = True
            token["profile_top"] = self.profile_top
        return token


def world_hosts(world) -> List:
    """Every Host a world assembles, in a fixed, documented order."""
    hosts = []
    for attr in ("laptop", "server"):
        host = getattr(world, attr, None)
        if host is not None:
            hosts.append(host)
    hosts.extend(getattr(world, "cross_hosts", ()))
    return hosts


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = value


class WorldObservability:
    """One trial's attached instruments, and its metrics record."""

    def __init__(self, world, config: Optional[ObsConfig] = None):
        self.world = world
        self.config = config or ObsConfig()
        self.registry = MetricsRegistry()
        self.tracer: Optional[LifecycleTracer] = None
        if self.config.trace:
            self.tracer = LifecycleTracer(world.sim,
                                          limit=self.config.span_limit)
        self.audit: Optional[ModulationFidelityAudit] = None
        self.layer = None  # the ModulationLayer, once attached
        self._attach()

    # ------------------------------------------------------------------
    def _attach(self) -> None:
        tracer = self.tracer
        for host in world_hosts(self.world):
            if tracer is not None:
                scope = tracer.scope(host.name)
                host.ip.tracer = scope
                host.ip.reassembler.tracer = scope
                host.tcp.tracer = scope
                host.udp.tracer = scope
                for device in host.devices:
                    device.tracer = scope
            if self.config.metrics:
                self.registry.add_collector(self._host_collector(host),
                                            key=f"host:{host.name}")
        medium = getattr(self.world, "medium", None)
        if medium is not None:
            if tracer is not None:
                medium.tracer = tracer.scope(medium.name)
            if self.config.metrics:
                self.registry.add_collector(self._medium_collector(medium),
                                            key=f"medium:{medium.name}")
        if self.config.metrics:
            self.registry.add_collector(self._engine_collector(),
                                        key="engine")

    @staticmethod
    def _host_collector(host):
        def collect() -> Dict[str, float]:
            out: Dict[str, float] = {}
            _flatten(host.name, host.stats(), out)
            return out
        return collect

    @staticmethod
    def _medium_collector(medium):
        def collect() -> Dict[str, float]:
            return {
                f"{medium.name}.frames_carried": medium.frames_carried,
                f"{medium.name}.frames_lost": medium.frames_lost,
            }
        return collect

    def _engine_collector(self):
        sim = self.world.sim

        def collect() -> Dict[str, float]:
            return {f"engine.{name}": value
                    for name, value in sim.stats().as_dict().items()}
        return collect

    # ------------------------------------------------------------------
    def attach_modulation(self, layer) -> ModulationFidelityAudit:
        """Instrument an installed ModulationLayer (audit + spans)."""
        histogram = None
        if self.config.metrics:
            histogram = self.registry.histogram(
                "modulation.applied_delay", DELAY_BUCKETS,
                help="Applied (tick-rounded) modulation delay, seconds")
        audit = ModulationFidelityAudit(layer.host.kernel.tick_resolution,
                                        delay_histogram=histogram)
        layer.audit = audit
        if self.tracer is not None:
            layer.tracer = self.tracer.scope(layer.host.name)
        self.audit = audit
        self.layer = layer
        if self.config.metrics:
            self.registry.add_collector(self._modulation_collector(layer),
                                        key="modulation")
        return audit

    @staticmethod
    def _modulation_collector(layer):
        def collect() -> Dict[str, float]:
            feed = layer.feed
            return {
                "modulation.out_packets": layer.out_packets,
                "modulation.in_packets": layer.in_packets,
                "modulation.out_dropped": layer.out_dropped,
                "modulation.in_dropped": layer.in_dropped,
                "modulation.sent_immediately": layer.sent_immediately,
                "modulation.feed.tuples_written": feed.tuples_written,
                "modulation.feed.tuples_consumed": feed.tuples_consumed,
                "modulation.feed.underruns": feed.underruns,
            }
        return collect

    # ------------------------------------------------------------------
    def drop_rollup(self) -> Dict[str, int]:
        """Every drop counter in the world, flattened to one namespace."""
        out: Dict[str, int] = {}
        for host in world_hosts(self.world):
            for device in host.devices:
                out[f"{host.name}.{device.name}.queue_full"] = \
                    device.queue.dropped
                out[f"{host.name}.{device.name}.tx_drops"] = device.tx_drops
            ip = host.ip
            out[f"{host.name}.ip.no_route"] = ip.dropped_no_route
            out[f"{host.name}.ip.ttl"] = ip.dropped_ttl
            out[f"{host.name}.ip.not_mine"] = ip.dropped_not_mine
            out[f"{host.name}.ip.reassembly_timeout"] = \
                ip.reassembler.timed_out
            out[f"{host.name}.tcp.no_conn"] = host.tcp.dropped_no_conn
            out[f"{host.name}.udp.no_port"] = host.udp.dropped_no_port
        medium = getattr(self.world, "medium", None)
        if medium is not None:
            out[f"{medium.name}.channel_loss"] = medium.frames_lost
        if self.layer is not None:
            out["modulation.out_dropped"] = self.layer.out_dropped
            out["modulation.in_dropped"] = self.layer.in_dropped
        return out

    # ------------------------------------------------------------------
    def record(self, **context: Any) -> Dict[str, Any]:
        """The trial's metrics record: one JSON-friendly dict.

        ``context`` keys (scenario, benchmark, trial, ...) lead the
        record; everything else is read out of the world *now*, so call
        this after the trial completes.
        """
        rec: Dict[str, Any] = dict(context)
        rec["engine"] = self.world.sim.stats().as_dict()
        rec["hosts"] = {host.name: host.stats()
                        for host in world_hosts(self.world)}
        rec["drops"] = self.drop_rollup()
        if self.config.metrics:
            rec["metrics"] = self.registry.snapshot()
        if self.tracer is not None:
            rec["trace"] = self.tracer.summary()
            if self.config.spans:
                rec["spans"] = list(self.tracer.spans)
        if self.audit is not None:
            modulation: Dict[str, Any] = {
                "audit": self.audit.as_records(),
                "totals": self.audit.totals(),
            }
            if self.layer is not None:
                feed = self.layer.feed
                modulation["feed"] = {
                    "tuples_written": feed.tuples_written,
                    "tuples_consumed": feed.tuples_consumed,
                    "underruns": feed.underruns,
                }
            rec["modulation"] = modulation
        return rec


def attach_observability(world, config: Optional[ObsConfig] = None
                         ) -> Optional[WorldObservability]:
    """Attach instruments to ``world`` — or do nothing when disabled.

    Returning ``None`` is the disabled fast path: call sites keep their
    ``obs`` handle ``None`` and every layer keeps its ``tracer`` /
    ``audit`` attributes at the ``None`` default, so a disabled run's
    only cost is the per-boundary ``is not None`` test.
    """
    if not _ENABLED or config is None:
        return None
    if not (config.metrics or config.trace or config.profile):
        return None
    return WorldObservability(world, config)
