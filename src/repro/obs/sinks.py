"""Observability sinks: JSONL, Chrome trace-event JSON, text tables.

Three interchangeable ways out of the process:

* :func:`write_jsonl` — one JSON object per line, the machine-readable
  stream ``repro validate --metrics-out`` emits (one record per trial);
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (the JSON Array/Object format accepted by
  Perfetto and chrome://tracing): hosts map to processes, layers to
  threads, span events to instants, and modulation delays to complete
  (``"ph": "X"``) events whose duration is the applied delay;
* :func:`render_obs_summary` — a human-readable rollup built on
  :mod:`repro.analysis.tables`, printed by ``repro trace``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.tables import render_table

# A span event whose name is in this set becomes a Chrome "X" (complete)
# event with the given field as its duration (seconds).
_DURATION_FIELDS = {("mod", "delay"): "applied"}


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats (JSON has no Infinity/NaN literals)."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def write_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write records as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(_json_safe(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL file back into a list of dicts (tests, tooling)."""
    out = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ======================================================================
# Chrome trace-event format
# ======================================================================
def chrome_trace(span_groups: Sequence[Tuple[str, Sequence[Dict[str, Any]]]],
                 pid_base: int = 0) -> Dict[str, Any]:
    """Convert span-event groups into a Chrome trace-event document.

    ``span_groups`` is ``[(group_label, spans), ...]``; each group gets
    its own process-id namespace so several trials can share one trace
    file.  Within a group, each ``host`` becomes a process and each
    ``layer`` a thread, both named via metadata events.  Timestamps are
    simulated microseconds.  ``pid_base`` offsets every assigned
    process id — the sweep-timeline merger uses it to keep these
    synthetic pids clear of real worker pids in one document.
    """
    events: List[Dict[str, Any]] = []
    pid_of: Dict[Tuple[str, str], int] = {}
    tid_of: Dict[Tuple[int, str], int] = {}

    def pid_for(group: str, host: str) -> int:
        key = (group, host)
        pid = pid_of.get(key)
        if pid is None:
            pid = pid_of[key] = pid_base + len(pid_of) + 1
            name = f"{group}:{host}" if group else host
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": 0,
                           "args": {"name": name}})
        return pid

    def tid_for(pid: int, layer: str) -> int:
        key = (pid, layer)
        tid = tid_of.get(key)
        if tid is None:
            tid = tid_of[key] = sum(1 for (p, _) in tid_of if p == pid) + 1
            events.append({"name": "thread_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": tid,
                           "args": {"name": layer}})
        return tid

    for label, spans in span_groups:
        for span in spans:
            pid = pid_for(label, span["host"])
            tid = tid_for(pid, span["layer"])
            name = f"{span['layer']}.{span['event']}"
            args = {k: _json_safe(v) for k, v in span.items()
                    if k not in ("t", "host", "layer", "event")}
            event: Dict[str, Any] = {
                "name": name,
                "ph": "i",
                "ts": span["t"] * 1e6,
                "pid": pid,
                "tid": tid,
                "s": "t",
                "args": args,
            }
            duration_field = _DURATION_FIELDS.get(
                (span["layer"], span["event"]))
            if duration_field is not None and span.get(duration_field):
                event["ph"] = "X"
                event["dur"] = span[duration_field] * 1e6
                del event["s"]
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str,
                       span_groups: Sequence[Tuple[str, Sequence[dict]]]
                       ) -> int:
    """Write a Chrome trace file; returns the number of trace events."""
    document = chrome_trace(span_groups)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f)
    return len(document["traceEvents"])


def validate_chrome_trace(document: Dict[str, Any]) -> None:
    """Raise ValueError unless ``document`` is schema-valid and non-empty.

    Checks the fields chrome://tracing's JSON Object format requires:
    a non-empty ``traceEvents`` array whose entries carry ``name``,
    ``ph``, ``ts``, ``pid`` and ``tid``, with ``dur`` present on every
    complete ("X") event.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")
    for i, event in enumerate(events):
        missing = {"name", "ph", "ts", "pid", "tid"} - set(event)
        if missing:
            raise ValueError(f"event {i} missing fields {sorted(missing)}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"complete event {i} has no dur")


# ======================================================================
# Text summary
# ======================================================================
def render_obs_summary(record: Dict[str, Any]) -> str:
    """A human-readable rollup of one trial's observability record."""
    parts: List[str] = []

    drops = record.get("drops") or {}
    rows = [[name, str(count)] for name, count in sorted(drops.items())]
    if not rows:
        rows = [["(no drops)", "0"]]
    parts.append(render_table(["Drop counter", "Packets"], rows,
                              title="Per-layer drop counters"))

    trace = record.get("trace") or {}
    by_layer = trace.get("by_layer_event") or {}
    if by_layer:
        rows = [[name, str(count)]
                for name, count in sorted(by_layer.items())]
        caption = ""
        if trace.get("spans_dropped"):
            caption = (f"{trace['spans_dropped']} span events beyond the "
                       f"buffer limit were counted but not stored.")
        parts.append(render_table(["Span event", "Count"], rows,
                                  title="Packet-lifecycle span events",
                                  caption=caption))

    modulation = record.get("modulation")
    if modulation:
        rows = []
        for rec in modulation.get("audit", []):
            bw = rec["intended_bandwidth_bps"]
            bw_text = ("inf" if not isinstance(bw, float)
                       or not math.isfinite(bw) else f"{bw / 1e3:.0f}")
            rows.append([
                f"{rec['F'] * 1e3:.1f}ms/{bw_text}Kbps",
                f"{rec['L'] * 100:.1f}",
                str(rec["packets"]),
                f"{rec['observed_loss'] * 100:.1f}",
                f"{rec['mean_intended_delay'] * 1e3:.2f}",
                f"{rec['mean_applied_delay'] * 1e3:.2f}",
                str(rec["under_delayed"]),
                str(rec["sent_immediately"]),
            ])
        if rows:
            parts.append(render_table(
                ["Tuple (F/BW)", "L %", "Pkts", "Loss %",
                 "Intended ms", "Applied ms", "Under", "Immediate"],
                rows,
                title="Modulation fidelity (intended vs. applied)",
                caption="Applied delays are rounded to the kernel tick; "
                        "sub-half-tick delays are applied immediately "
                        "(the paper's under-delay artifact, §5.4)."))
        feed = modulation.get("feed")
        if feed:
            rows = [[name, str(value)] for name, value in sorted(feed.items())]
            parts.append(render_table(["Feed counter", "Value"], rows,
                                      title="Replay feed device"))

    engine = record.get("engine")
    if engine:
        rows = [[name, (f"{value:.3f}" if isinstance(value, float)
                        else str(value))]
                for name, value in sorted(engine.items())]
        parts.append(render_table(["Engine counter", "Value"], rows,
                                  title="Simulation engine"))
    return "\n\n".join(parts)
