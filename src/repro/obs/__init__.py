"""repro.obs: the unified observability layer.

Three instruments, one wiring point, pluggable sinks:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  plus snapshot-time collectors over counters that already exist as
  plain attributes (docs/OBSERVABILITY.md, "Metrics registry");
* :class:`LifecycleTracer` — per-packet span events at every layer
  boundary, with trace ids shared across clones and fragments;
* :class:`ModulationFidelityAudit` — intended-vs-applied delay/loss
  accounting per quality tuple inside the modulation layer.

:func:`attach_observability` is the only entry point production code
needs: given a world and an :class:`ObsConfig` it returns a
:class:`WorldObservability` (or ``None`` when observability is globally
disabled via :func:`set_enabled`, or no config was passed — the
zero-cost path).
"""

from .audit import ModulationFidelityAudit
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import (
    chrome_trace,
    read_jsonl,
    render_obs_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .telemetry import (
    LEDGER_SCHEMA,
    RunLedger,
    SweepProgress,
    SweepTelemetry,
    aggregate_profiles,
    fold_fleet,
    fold_records,
    merged_chrome_trace,
    render_profile_table,
    sweep_ledger_record,
    sweep_registry,
)
from .tracer import DEFAULT_SPAN_LIMIT, LifecycleTracer, TracerScope
from .wiring import (
    DELAY_BUCKETS,
    ObsConfig,
    WorldObservability,
    attach_observability,
    enabled,
    set_enabled,
    world_hosts,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LifecycleTracer",
    "TracerScope",
    "DEFAULT_SPAN_LIMIT",
    "ModulationFidelityAudit",
    "ObsConfig",
    "WorldObservability",
    "DELAY_BUCKETS",
    "attach_observability",
    "enabled",
    "set_enabled",
    "world_hosts",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "render_obs_summary",
    "LEDGER_SCHEMA",
    "RunLedger",
    "SweepProgress",
    "SweepTelemetry",
    "aggregate_profiles",
    "fold_fleet",
    "fold_records",
    "merged_chrome_trace",
    "render_profile_table",
    "sweep_ledger_record",
    "sweep_registry",
]
