"""Sweep-scope telemetry: where the *orchestration tier* spends time.

:mod:`repro.obs` instruments one world at a time — per-trial metrics,
packet-lifecycle spans, the modulation audit.  Since the sweep became a
multi-process pipeline (warm worker pool, envelope transport, artifact
cache) the interesting time is spent *between* worlds: queue wait,
codec encode, store writes, replay resolution, stragglers.  This module
makes that layer observable, end to end:

* **Stage spans** — workers record ``(stage, label, pid, ts, dur)``
  spans around every orchestration stage (``queue``, ``collect`` /
  ``distill`` / ``live`` / ``modulated`` / ``ethernet`` trial bodies,
  ``encode``, ``store_write``, ``replay_resolve``, ``chunk``) using
  :func:`time.perf_counter_ns` for durations and :func:`time.time_ns`
  for cross-process placement.  Spans travel back to the parent as one
  compact codec frame per chunk and merge into a
  :class:`SweepTelemetry` timeline.
* **Chrome-trace timeline** — :meth:`SweepTelemetry.to_chrome_trace`
  renders the merged spans with **one process track per worker pid**
  (plus the parent), so stragglers, queue wait and pool utilization
  read off a single flamegraph.
* **Run ledger** — :class:`RunLedger` appends one structured JSONL
  manifest per sweep/bench invocation (:func:`sweep_ledger_record`),
  making the perf trajectory machine-readable across revisions.
* **Live progress** — :class:`SweepProgress` renders per-sweep trial
  completion, cache hits and an ETA; single rewritten line on a TTY,
  plain throttled lines otherwise.
* **Profiling** — helpers for ``ObsConfig(profile=True)``: per-trial
  cProfile extraction (:func:`profile_rows`), cross-trial aggregation
  (:func:`aggregate_profiles`) and a rendered top-N table.
* **Unified registry** — :func:`sweep_registry` folds world counters,
  engine stats, pipeline hit/miss and transport counters into one
  :class:`~repro.obs.registry.MetricsRegistry`, whose
  ``render_prometheus()`` is the future daemon's ``/metrics``.

Zero-cost contract: with telemetry off, the only instrumentation cost
is a :func:`span_begin` call returning ``None`` (one global load and a
``None`` test) at a handful of per-trial — never per-packet — call
sites.  Telemetry reads wall clocks only; it draws no RNG, schedules no
events and touches no packet, so validation tables are byte-identical
with it on or off.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .registry import MetricsRegistry
from .sinks import _json_safe, chrome_trace

__all__ = [
    "SPAN_SCHEMA",
    "LEDGER_SCHEMA",
    "SweepTelemetry",
    "RunLedger",
    "SweepProgress",
    "capture_begin",
    "capture_end",
    "capture_active",
    "span_begin",
    "span_end",
    "record_point",
    "pack_spans",
    "unpack_spans",
    "merged_chrome_trace",
    "profile_rows",
    "aggregate_profiles",
    "render_profile_table",
    "engine_rollup",
    "fold_fleet",
    "fold_records",
    "sweep_registry",
    "sweep_ledger_record",
    "table_digest",
]

SPAN_SCHEMA = 1
LEDGER_SCHEMA = 1

# Fields every span carries; extra keys are free-form metadata.
_SPAN_CORE = ("stage", "label", "pid", "ts", "dur")


# ======================================================================
# Worker-side span capture (module-global so sealed helpers deep in the
# worker call stack can record without threading a handle through)
# ======================================================================
_CAPTURE: Optional[List[Dict[str, Any]]] = None
_SWEEP_ID = ""


def capture_begin(sweep_id: str = "") -> None:
    """Start buffering spans in this process (worker chunk entry)."""
    global _CAPTURE, _SWEEP_ID
    _CAPTURE = []
    _SWEEP_ID = sweep_id


def capture_active() -> bool:
    return _CAPTURE is not None


def capture_end() -> List[Dict[str, Any]]:
    """Stop buffering; returns (and clears) the captured spans."""
    global _CAPTURE
    spans = _CAPTURE or []
    _CAPTURE = None
    return spans


def span_begin() -> Optional[Tuple[int, int]]:
    """A span token ``(time_ns, perf_counter_ns)`` — or ``None`` when
    capture is off.  This is the *entire* disabled-path cost of an
    instrumentation point: one global load and a ``None`` test at the
    caller."""
    if _CAPTURE is None:
        return None
    return (time.time_ns(), time.perf_counter_ns())


def span_end(token: Optional[Tuple[int, int]], stage: str,
             label: str = "", **meta: Any) -> None:
    """Close a span started by :func:`span_begin` (no-op on ``None``)."""
    if token is None or _CAPTURE is None:
        return
    ts, p0 = token
    span: Dict[str, Any] = {
        "stage": stage,
        "label": label,
        "pid": os.getpid(),
        "ts": ts,
        "dur": time.perf_counter_ns() - p0,
    }
    if meta:
        span.update(meta)
    _CAPTURE.append(span)


def record_point(stage: str, label: str = "", ts: Optional[int] = None,
                 dur: int = 0, **meta: Any) -> None:
    """Record a span with explicit timing (queue wait, instants)."""
    if _CAPTURE is None:
        return
    span: Dict[str, Any] = {
        "stage": stage,
        "label": label,
        "pid": os.getpid(),
        "ts": time.time_ns() if ts is None else ts,
        "dur": max(0, dur),
    }
    if meta:
        span.update(meta)
    _CAPTURE.append(span)


# ======================================================================
# Wire form: spans cross the pool pipe as one compact codec frame
# ======================================================================
def pack_spans(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Columnar form for the codec: one shared key list, one row per
    span — repeated dict keys never cross the pipe."""
    keys: List[str] = list(_SPAN_CORE)
    seen = set(keys)
    for span in spans:
        for key in span:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return {
        "v": SPAN_SCHEMA,
        "keys": keys,
        "rows": [[span.get(key) for key in keys] for span in spans],
    }


def unpack_spans(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Inverse of :func:`pack_spans` (unknown schema → empty list)."""
    if not isinstance(doc, dict) or doc.get("v") != SPAN_SCHEMA:
        return []
    keys = doc["keys"]
    return [{key: value for key, value in zip(keys, row) if value is not None
             or key in ("label",)}
            for row in doc["rows"]]


# ======================================================================
# The parent-side merged timeline
# ======================================================================
class SweepTelemetry:
    """One sweep's merged cross-process stage-span timeline."""

    def __init__(self, sweep_id: Optional[str] = None):
        self.sweep_id = sweep_id or (
            f"sweep-{os.getpid()}-{time.time_ns():x}")
        self.parent_pid = os.getpid()
        self.spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    # -- recording (parent side) ---------------------------------------
    def begin(self) -> Tuple[int, int]:
        return (time.time_ns(), time.perf_counter_ns())

    def end(self, token: Tuple[int, int], stage: str, label: str = "",
            **meta: Any) -> None:
        ts, p0 = token
        span: Dict[str, Any] = {
            "stage": stage, "label": label, "pid": os.getpid(),
            "ts": ts, "dur": time.perf_counter_ns() - p0,
        }
        if meta:
            span.update(meta)
        with self._lock:
            self.spans.append(span)

    def point(self, stage: str, label: str = "", dur: int = 0,
              **meta: Any) -> None:
        span: Dict[str, Any] = {
            "stage": stage, "label": label, "pid": os.getpid(),
            "ts": time.time_ns(), "dur": max(0, dur),
        }
        if meta:
            span.update(meta)
        with self._lock:
            self.spans.append(span)

    def extend(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Merge a batch of worker spans into the timeline."""
        with self._lock:
            self.spans.extend(spans)

    # -- analysis ------------------------------------------------------
    def worker_pids(self) -> List[int]:
        return sorted({s["pid"] for s in self.spans
                       if s["pid"] != self.parent_pid})

    def stage_totals(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage count and total wall seconds across all processes."""
        out: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            entry = out.setdefault(span["stage"],
                                   {"count": 0, "wall_s": 0.0})
            entry["count"] += 1
            entry["wall_s"] += span["dur"] / 1e9
        for entry in out.values():
            entry["wall_s"] = round(entry["wall_s"], 6)
        return dict(sorted(out.items()))

    def utilization(self) -> Dict[str, Any]:
        """Pool utilization: per-worker busy time (chunk spans) over the
        sweep's wall span.  1.0 means every worker was busy the whole
        time; low numbers expose stragglers and queue stalls."""
        if not self.spans:
            return {"wall_s": 0.0, "workers": {}, "utilization": None}
        t_lo = min(s["ts"] for s in self.spans)
        t_hi = max(s["ts"] + s["dur"] for s in self.spans)
        wall = max(t_hi - t_lo, 1) / 1e9
        busy: Dict[int, float] = {}
        for span in self.spans:
            if span["pid"] == self.parent_pid or span["stage"] != "chunk":
                continue
            busy[span["pid"]] = busy.get(span["pid"], 0.0) \
                + span["dur"] / 1e9
        util = None
        if busy:
            util = round(sum(busy.values()) / (wall * len(busy)), 4)
        return {
            "wall_s": round(wall, 6),
            "workers": {str(pid): round(s, 6)
                        for pid, s in sorted(busy.items())},
            "utilization": util,
        }

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly rollup (ledger / ``--json`` payload)."""
        return {
            "sweep_id": self.sweep_id,
            "spans": len(self.spans),
            "worker_pids": self.worker_pids(),
            "stage_totals": self.stage_totals(),
            "utilization": self.utilization(),
        }

    # -- rendering -----------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The merged timeline as a Chrome trace-event document: one
        process per pid (named ``parent``/``worker``), complete ("X")
        events in relative microseconds."""
        events: List[Dict[str, Any]] = []
        if not self.spans:
            return {"traceEvents": events, "displayTimeUnit": "ms"}
        t0 = min(s["ts"] for s in self.spans)
        named: set = set()
        for span in sorted(self.spans, key=lambda s: (s["pid"], s["ts"])):
            pid = span["pid"]
            if pid not in named:
                named.add(pid)
                role = "parent" if pid == self.parent_pid else "worker"
                events.append({"name": "process_name", "ph": "M", "ts": 0,
                               "pid": pid, "tid": 1,
                               "args": {"name": f"{role} pid {pid}"}})
            args = {k: _json_safe(v) for k, v in span.items()
                    if k not in ("stage", "pid", "ts", "dur")}
            args["sweep"] = self.sweep_id
            events.append({
                "name": span["stage"],
                "ph": "X",
                "ts": (span["ts"] - t0) / 1e3,
                "dur": span["dur"] / 1e3,
                "pid": pid,
                "tid": 1,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def merged_chrome_trace(timeline: Optional[SweepTelemetry],
                        span_groups: Sequence[Tuple[str, Sequence[dict]]]
                        ) -> Dict[str, Any]:
    """One trace document holding both the sweep timeline (real pids)
    and per-trial packet-lifecycle groups (synthetic pids above them)."""
    if timeline is None:
        return chrome_trace(span_groups)
    doc = timeline.to_chrome_trace()
    if span_groups:
        base = max((e["pid"] for e in doc["traceEvents"]), default=0)
        packet_doc = chrome_trace(span_groups, pid_base=base + 1)
        doc["traceEvents"].extend(packet_doc["traceEvents"])
    return doc


# ======================================================================
# Run ledger
# ======================================================================
class RunLedger:
    """Append-only JSONL manifest of sweep/bench invocations.

    One file per ``--run-dir``; every :meth:`append` stamps the schema
    version and a wall-clock timestamp, so the perf trajectory of a
    checkout is machine-readable across revisions (and uploadable as a
    CI artifact)."""

    FILENAME = "ledger.jsonl"

    def __init__(self, run_dir: str):
        os.makedirs(run_dir, exist_ok=True)
        self.path = os.path.join(run_dir, self.FILENAME)

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        stamped = {"schema": LEDGER_SCHEMA, "ts": round(time.time(), 3)}
        stamped.update(record)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(_json_safe(stamped), sort_keys=False) + "\n")
        return stamped

    def read(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                return [json.loads(line) for line in f if line.strip()]
        except OSError:
            return []


def table_digest(text: str) -> str:
    """SHA-256 of a rendered table — the ledger's byte-identity pin."""
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def engine_rollup(trial_metrics: Sequence[Dict[str, Any]]
                  ) -> Optional[Dict[str, Any]]:
    """Aggregate engine counters across a sweep's trial records."""
    fired = scheduled = 0
    wall = 0.0
    seen = False
    for record in trial_metrics:
        engine = record.get("engine")
        if not engine:
            continue
        seen = True
        fired += int(engine.get("events_fired", 0))
        scheduled += int(engine.get("events_scheduled", 0))
        wall += float(engine.get("wall_time", 0.0))
    if not seen:
        return None
    return {
        "events_fired": fired,
        "events_scheduled": scheduled,
        "wall_s": round(wall, 6),
        "events_per_sec": round(fired / wall) if wall > 0 else None,
    }


def sweep_ledger_record(sweep, *, command: str, scenario: str,
                        seed: int, trials: int, wall_s: float,
                        cpu_s: Optional[float] = None,
                        table: Optional[str] = None,
                        telemetry: Optional[SweepTelemetry] = None,
                        extra: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
    """The ledger manifest of one validation sweep."""
    record: Dict[str, Any] = {
        "kind": command,
        "benchmark": sweep.benchmark,
        "scenario": scenario,
        "scenarios": [v.scenario for v in sweep.validations],
        "seed": seed,
        "trials": trials,
        "workers": sweep.workers_used,
        "transport": dict(sweep.transport or {}),
        "cache": {"hits": sweep.cache_hits, "misses": sweep.cache_misses},
        "wall_s": round(wall_s, 6),
        "cpu_s": round(cpu_s, 6) if cpu_s is not None else None,
        "table_sha256": table_digest(table) if table else None,
        "engine": engine_rollup(sweep.trial_metrics),
        "telemetry": telemetry.summary() if telemetry is not None else None,
    }
    if extra:
        record.update(extra)
    return record


# ======================================================================
# Live progress
# ======================================================================
class SweepProgress:
    """Sweep progress: trials done / total, cache hits, workers, ETA.

    On a TTY the line is rewritten in place; otherwise plain lines are
    printed, throttled to one per ``plain_interval`` seconds (plus the
    first and last), so CI logs stay readable."""

    def __init__(self, stream=None, label: str = "sweep",
                 min_interval: float = 0.1, plain_interval: float = 1.0):
        self.stream = stream if stream is not None else sys.stderr
        self.tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.label = label
        self.total = 0
        self.done = 0
        self.hits = 0
        self.workers = 0
        self._t0 = time.monotonic()
        self._last_emit = 0.0
        self._interval = min_interval if self.tty else plain_interval
        self._emitted = False
        self._lock = threading.Lock()

    # -- event feed (called from the executor, any thread) -------------
    def add_total(self, n: int) -> None:
        with self._lock:
            self.total += n
            self._emit()

    def cache_hit(self, n: int = 1) -> None:
        with self._lock:
            self.hits += n
            self.done += n
            self._emit()

    def completed(self, n: int = 1) -> None:
        with self._lock:
            self.done += n
            self._emit()

    def set_workers(self, n: int) -> None:
        with self._lock:
            self.workers = n

    # -- rendering -----------------------------------------------------
    def line(self) -> str:
        elapsed = time.monotonic() - self._t0
        computed = self.done - self.hits
        if computed > 0 and self.done < self.total:
            eta = elapsed / max(computed, 1) * (self.total - self.done)
            eta_text = f" eta {eta:5.1f}s"
        else:
            eta_text = ""
        return (f"[{self.label}] {self.done}/{self.total} trials "
                f"({self.hits} cached) workers={self.workers} "
                f"elapsed {elapsed:6.1f}s{eta_text}")

    def _emit(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and self._emitted \
                and now - self._last_emit < self._interval \
                and self.done < self.total:
            return
        self._last_emit = now
        self._emitted = True
        text = self.line()
        try:
            if self.tty:
                self.stream.write("\r\x1b[2K" + text)
            else:
                self.stream.write(text + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def finish(self) -> None:
        """Print the final line (always) and release the TTY line."""
        with self._lock:
            self._emit(force=True)
            if self.tty:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):
                    pass


# ======================================================================
# Profiling (ObsConfig(profile=True))
# ======================================================================
def profile_rows(profiler, top: int = 20) -> List[Dict[str, Any]]:
    """Top-``top`` functions of a finished cProfile by internal time."""
    import pstats

    entries = []
    stats = pstats.Stats(profiler)
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        entries.append({
            "func": f"{os.path.basename(filename)}:{lineno}({name})",
            "ncalls": nc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    entries.sort(key=lambda e: (-e["tottime"], e["func"]))
    return entries[:max(1, top)]


def aggregate_profiles(records: Sequence[Dict[str, Any]],
                       top: int = 20) -> List[Dict[str, Any]]:
    """Merge per-trial profile rows (summing times and calls) into one
    cross-sweep top-``top`` table."""
    merged: Dict[str, Dict[str, Any]] = {}
    trials = 0
    for record in records:
        rows = record.get("profile")
        if not rows:
            continue
        trials += 1
        for row in rows:
            entry = merged.setdefault(row["func"], {
                "func": row["func"], "ncalls": 0,
                "tottime": 0.0, "cumtime": 0.0, "trials": 0})
            entry["ncalls"] += row["ncalls"]
            entry["tottime"] += row["tottime"]
            entry["cumtime"] += row["cumtime"]
            entry["trials"] += 1
    out = sorted(merged.values(),
                 key=lambda e: (-e["tottime"], e["func"]))[:max(1, top)]
    for entry in out:
        entry["tottime"] = round(entry["tottime"], 6)
        entry["cumtime"] = round(entry["cumtime"], 6)
    return out


def render_profile_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Human-readable profile table (``repro validate --profile``)."""
    from ..analysis.tables import render_table

    body = [[row["func"], f"{row['ncalls']:,}",
             f"{row['tottime']:.4f}", f"{row['cumtime']:.4f}"]
            for row in rows] or [["(no profile data)", "0", "0", "0"]]
    return render_table(["Function", "Calls", "Internal s", "Cumulative s"],
                        body,
                        title="Aggregated trial profile (top by "
                              "internal time)")


# ======================================================================
# Unified metrics registry (the future daemon's /metrics)
# ======================================================================
def fold_records(registry: MetricsRegistry,
                 records: Sequence[Dict[str, Any]]) -> MetricsRegistry:
    """Fold per-trial metrics records into one registry: engine and
    drop counters are summed across trials, trial counts kept per
    kind."""
    for record in records:
        kind = record.get("kind", "trial")
        registry.counter(f"trials.{kind}",
                         help="Trials folded into this snapshot").inc()
        engine = record.get("engine") or {}
        for name in ("events_scheduled", "events_fired",
                     "events_cancelled", "bucket_sweeps", "runs"):
            if name in engine:
                registry.counter(
                    f"engine.{name}",
                    help="Summed simulator counter across trials",
                ).inc(int(engine[name]))
        if "wall_time" in engine:
            registry.counter("engine.wall_ms",
                             help="Summed run() wall clock, ms").inc(
                int(engine["wall_time"] * 1e3))
        for name, value in (record.get("drops") or {}).items():
            registry.counter(f"drops.{name}",
                             help="Summed drop counter").inc(int(value))
    rollup = engine_rollup(records)
    if rollup and rollup["events_per_sec"]:
        registry.gauge("engine.events_per_sec",
                       help="Fired events per wall second, all trials"
                       ).set(float(rollup["events_per_sec"]))
    fold_fleet(registry, records)
    return registry


def fold_fleet(registry: MetricsRegistry,
               records: Sequence[Dict[str, Any]]) -> MetricsRegistry:
    """Fold per-node fleet contribution out of run-ledger manifests.

    Distributed runs record ``transport.backend`` (per-node chunk/job
    counts, artifact-sync bytes, busy wall) in their ledger records;
    this rolls those up into ``fleet.*`` counters — per-node series
    plus fleet totals and a utilization gauge (node busy time over
    fleet capacity, summed across manifests) — so ``repro metrics
    DIR/ledger.jsonl`` answers "how evenly did the fleet pull?"."""
    busy_s = 0.0
    capacity_s = 0.0
    seen = False
    for record in records:
        transport = record.get("transport") or {}
        backend = transport.get("backend") or {}
        nodes = backend.get("nodes")
        if not nodes:
            continue
        seen = True
        workers = 0
        for node in nodes:
            name = str(node.get("host", "?"))
            for counter in ("chunks", "jobs", "bytes_fetched",
                            "bytes_pushed"):
                registry.counter(
                    f"fleet.node.{name}.{counter}",
                    help="Per-node fleet contribution",
                ).inc(int(node.get(counter, 0)))
                registry.counter(
                    f"fleet.{counter}",
                    help="Summed fleet contribution across nodes",
                ).inc(int(node.get(counter, 0)))
            registry.counter(
                f"fleet.node.{name}.busy_ms",
                help="Per-node busy wall, ms",
            ).inc(int(float(node.get("wall_s", 0.0)) * 1e3))
            busy_s += float(node.get("wall_s", 0.0))
            workers += int(node.get("workers", 0))
        for counter in ("redispatches", "workers_lost"):
            registry.counter(
                f"fleet.{counter}",
                help="Fleet recovery counter across manifests",
            ).inc(int(backend.get(counter, 0)))
        sync = backend.get("sync") or {}
        for counter in ("fetch_requests", "unique_keys_fetched"):
            if counter in sync:
                registry.counter(
                    f"fleet.sync.{counter}",
                    help="Artifact-sync counter across manifests",
                ).inc(int(sync.get(counter, 0)))
        wall = float(record.get("wall_s") or 0.0)
        capacity_s += wall * workers
    if seen:
        registry.gauge("fleet.nodes",
                       help="Distinct fleet nodes seen").set(float(
            len([n for n in registry._counters
                 if n.startswith("fleet.node.")
                 and n.endswith(".chunks")])))
        if capacity_s > 0:
            registry.gauge(
                "fleet.utilization",
                help="Node busy time over fleet capacity",
            ).set(round(busy_s / capacity_s, 6))
    return registry


def sweep_registry(sweep, pipeline=None,
                   telemetry: Optional[SweepTelemetry] = None
                   ) -> MetricsRegistry:
    """One registry snapshot unifying a finished sweep's accounting:
    world/engine counters (from trial records), transport counters,
    cache hit/miss, and sweep-timeline stage totals."""
    registry = MetricsRegistry()
    registry.gauge("sweep.workers_used",
                   help="Effective worker count of the sweep").set(
        float(sweep.workers_used))
    transport = sweep.transport or {}
    for name in ("envelope_count", "ipc_bytes_sent", "ipc_bytes_recv",
                 "artifact_bytes", "encode_ns", "rehydrate_ns",
                 "serial_fallbacks"):
        if name in transport:
            registry.counter(f"transport.{name}",
                             help="Executor data-plane counter").inc(
                int(transport[name] or 0))
    registry.gauge("transport.pool_broken",
                   help="1 when the worker pool broke mid-sweep").set(
        1.0 if transport.get("pool_broken") else 0.0)
    registry.counter("cache.hits",
                     help="Artifact-cache hits this sweep").inc(
        sweep.cache_hits)
    registry.counter("cache.misses",
                     help="Artifact-cache misses this sweep").inc(
        sweep.cache_misses)
    if pipeline is not None:
        registry.add_collector(pipeline.collector(), key="pipeline")
    fold_records(registry, sweep.trial_metrics)
    if telemetry is not None:
        for stage, entry in telemetry.stage_totals().items():
            registry.counter(f"sweep.stage.{stage}.count",
                             help="Timeline spans of this stage").inc(
                entry["count"])
            registry.counter(f"sweep.stage.{stage}.wall_ms",
                             help="Total wall ms in this stage").inc(
                int(entry["wall_s"] * 1e3))
        util = telemetry.utilization().get("utilization")
        if util is not None:
            registry.gauge("sweep.pool_utilization",
                           help="Worker busy time over sweep wall"
                           ).set(float(util))
    return registry
