"""Packet-lifecycle tracing: span events at every layer boundary.

The paper's collection phase hooks the traced *device*; the lifecycle
tracer generalizes that to the whole stack.  Every instrumented layer
(IP, TCP/UDP, the modulation layer, devices, the shared media) carries
a ``tracer`` attribute that defaults to ``None``; the only cost an
untraced run pays is one attribute load and a ``None`` test per
boundary crossing.  When a :class:`LifecycleTracer` is attached, each
crossing appends one **span event** — a flat dict with the simulated
timestamp, host, layer, event name, trace id, packet id and size, plus
event-specific fields (drop cause, modulation delays, ...).

Trace ids
---------
A packet is assigned a trace id the first time any layer records it,
stored in ``Packet.meta["trace_id"]``:

* clones (broadcast fan-out) copy ``meta`` and therefore *share* the
  trace id of the original frame — one logical transmission, one trace;
* IP fragments carry the parent datagram in ``meta["original"]`` and
  inherit its trace id, so an 8 KB NFS datagram and its six fragments
  read as a single lifecycle.

Span events are bounded by ``limit``; once full, events are counted in
``dropped_spans`` but not stored (aggregated ``span_counts`` and
``drop_counts`` keep counting), mirroring the kernel trace buffer's
overrun accounting.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

DEFAULT_SPAN_LIMIT = 250_000


class TracerScope:
    """A tracer bound to one host name (what layer objects hold)."""

    __slots__ = ("tracer", "host")

    def __init__(self, tracer: "LifecycleTracer", host: str):
        self.tracer = tracer
        self.host = host

    def event(self, layer: str, name: str, packet, **fields: Any) -> None:
        self.tracer.event(self.host, layer, name, packet, **fields)

    def drop(self, layer: str, packet, cause: str, **fields: Any) -> None:
        self.tracer.drop(self.host, layer, packet, cause, **fields)


class LifecycleTracer:
    """Collects span events for every packet crossing a layer boundary."""

    def __init__(self, sim, limit: int = DEFAULT_SPAN_LIMIT):
        self.sim = sim
        self.limit = limit
        self.enabled = True
        self.spans: List[Dict[str, Any]] = []
        self.dropped_spans = 0
        self.span_counts: Dict[Tuple[str, str], int] = {}
        self.drop_counts: Dict[str, int] = {}
        self._trace_ids = itertools.count(1)

    # ------------------------------------------------------------------
    def scope(self, host: str) -> TracerScope:
        return TracerScope(self, host)

    def trace_id_for(self, packet) -> int:
        """The packet's trace id, assigning (or inheriting) one if new."""
        meta = packet.meta
        tid = meta.get("trace_id")
        if tid is None:
            original = meta.get("original")
            if original is not None:
                tid = self.trace_id_for(original)
            else:
                tid = next(self._trace_ids)
            meta["trace_id"] = tid
        return tid

    # ------------------------------------------------------------------
    def event(self, host: str, layer: str, name: str, packet,
              **fields: Any) -> None:
        if not self.enabled:
            return
        key = (layer, name)
        counts = self.span_counts
        counts[key] = counts.get(key, 0) + 1
        if len(self.spans) >= self.limit:
            self.dropped_spans += 1
            return
        span: Dict[str, Any] = {
            "t": self.sim.now,
            "host": host,
            "layer": layer,
            "event": name,
            "trace": self.trace_id_for(packet),
            "pkt": packet.packet_id,
            "size": packet.size,
        }
        if fields:
            span.update(fields)
        self.spans.append(span)

    def drop(self, host: str, layer: str, packet, cause: str,
             **fields: Any) -> None:
        """Record a packet loss with its cause (always counted)."""
        if not self.enabled:
            return
        drops = self.drop_counts
        drops[cause] = drops.get(cause, 0) + 1
        self.event(host, layer, "drop", packet, cause=cause, **fields)

    # ------------------------------------------------------------------
    def spans_for_trace(self, trace_id: int) -> List[Dict[str, Any]]:
        """All stored span events of one trace, in time order."""
        return [s for s in self.spans if s["trace"] == trace_id]

    def summary(self) -> Dict[str, Any]:
        """Aggregated view (survives the span limit): counts only."""
        return {
            "spans_recorded": len(self.spans),
            "spans_dropped": self.dropped_spans,
            "by_layer_event": {f"{l}.{e}": n for (l, e), n
                               in sorted(self.span_counts.items())},
            "drop_causes": dict(sorted(self.drop_counts.items())),
        }
