"""Tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_increments():
    c = Counter("packets", help="frames seen")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.name == "packets"
    assert c.help == "frames seen"


def test_gauge_sets_point_in_time_value():
    g = Gauge("depth")
    g.set(3.5)
    g.set(1.0)
    assert g.value == 1.0


def test_histogram_bucket_placement():
    h = Histogram("delay", edges=(0.01, 0.1, 1.0))
    # bisect_right: bucket i holds edges[i-1] <= value < edges[i], so a
    # value exactly on an edge lands in the bucket above it
    h.observe(0.005)    # first bucket
    h.observe(0.01)     # second bucket (on the edge)
    h.observe(0.05)     # second
    h.observe(0.5)      # third
    h.observe(2.0)      # overflow
    assert h.counts == [1, 2, 1, 1]
    assert h.total == 5
    assert h.sum == pytest.approx(0.005 + 0.01 + 0.05 + 0.5 + 2.0)
    assert h.mean == pytest.approx(h.sum / 5)


def test_histogram_empty_mean_is_zero():
    h = Histogram("x", edges=[1.0])
    assert h.mean == 0.0


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram("x", edges=[])
    with pytest.raises(ValueError):
        Histogram("x", edges=[1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("x", edges=[2.0, 1.0])


def test_histogram_as_dict_round_trips_counts():
    h = Histogram("delay", edges=(0.1, 0.2))
    h.observe(0.15)
    d = h.as_dict()
    assert d == {"edges": [0.1, 0.2], "counts": [0, 1, 0],
                 "total": 1, "sum": 0.15, "mean": 0.15}
    # as_dict returns copies, not live views
    d["counts"][0] = 99
    assert h.counts[0] == 0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("tx")
    b = reg.counter("tx")
    assert a is b
    a.inc()
    assert reg.snapshot()["counters"]["tx"] == 1
    assert reg.gauge("depth") is reg.gauge("depth")
    assert reg.histogram("h", [1.0]) is reg.histogram("h", [1.0])


def test_registry_histogram_edge_mismatch_raises():
    reg = MetricsRegistry()
    reg.histogram("delay", edges=(0.1, 0.2))
    with pytest.raises(ValueError):
        reg.histogram("delay", edges=(0.1, 0.3))


def test_collectors_run_only_at_snapshot_time():
    reg = MetricsRegistry()
    calls = []

    def collector():
        calls.append(1)
        return {"host.dev.drops": 7}

    reg.add_collector(collector)
    assert calls == []
    snap = reg.snapshot()
    assert calls == [1]
    assert snap["collected"]["host.dev.drops"] == 7


def test_snapshot_is_sorted_and_json_friendly():
    reg = MetricsRegistry()
    reg.counter("zeta").inc(2)
    reg.counter("alpha").inc(1)
    reg.gauge("g").set(0.5)
    reg.histogram("h", [1.0]).observe(0.5)
    reg.add_collector(lambda: {"b": 2, "a": 1})
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["alpha", "zeta"]
    assert list(snap["collected"]) == ["a", "b"]
    assert snap["gauges"] == {"g": 0.5}
    assert snap["histograms"]["h"]["total"] == 1
    import json
    json.dumps(snap)  # must serialize without custom encoders
