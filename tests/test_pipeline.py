"""The unified pipeline API: fingerprints, the artifact store, caching.

Three layers under test:

* :mod:`repro.pipeline.fingerprint` — deterministic cache tokens and
  SHA-256 fingerprints (stable across processes, loud on unstable
  inputs);
* :mod:`repro.pipeline.store` / :mod:`repro.pipeline.api` — the
  content-addressed artifact store and the hit/miss/bypass accounting
  of :class:`Pipeline.run`;
* the harness integrations — a warm ``run_validation`` rerun loads
  every trial from the cache, recomputes nothing, and renders the very
  same bytes as the cold (and the uncached) run.
"""

import pickle
import time

import pytest

from repro.pipeline import (
    ALL_STAGES,
    ArtifactStore,
    CollectStage,
    CompensationStage,
    DistillStage,
    LiveTrialStage,
    ModulatedTrialStage,
    Pipeline,
    as_pipeline,
    cache_token,
    canonical_json,
    digest,
)
from repro.scenarios import scenario_by_name
from repro.validation import FtpRunner, run_validation
from repro.validation.parallel import (
    TrialExecutor,
    TrialSpec,
    spec_fingerprint,
)


def wean():
    return scenario_by_name("wean")


# ======================================================================
# cache_token / digest
# ======================================================================
class TestCacheToken:
    def test_plain_data_passes_through(self):
        assert cache_token(None) is None
        assert cache_token(True) is True
        assert cache_token(3) == 3
        assert cache_token(2.5) == 2.5
        assert cache_token("hi") == "hi"

    def test_containers_recurse(self):
        assert cache_token([1, (2, 3)]) == [1, [2, 3]]
        assert cache_token({"a": {"b": 1}}) == {"a": {"b": 1}}

    def test_cache_token_method_wins(self):
        class Thing:
            def cache_token(self):
                return {"thing": 7}

        assert cache_token(Thing()) == {"thing": 7}

    def test_scenario_and_runner_have_tokens(self):
        token = cache_token(wean())
        assert token["spec"]["name"] == "wean"
        token = cache_token(FtpRunner(nbytes=1000, direction="send"))
        assert token["nbytes"] == 1000

    def test_unstable_object_is_loud(self):
        with pytest.raises(TypeError, match="no stable cache token"):
            cache_token(object())
        with pytest.raises(TypeError):
            cache_token({"inner": object()})

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_digest_is_sha256_hex(self):
        fp = digest({"x": 1})
        assert len(fp) == 64
        assert fp == digest({"x": 1})
        assert fp != digest({"x": 2})


class TestStageFingerprints:
    def test_deterministic_across_instances(self):
        a = CollectStage(wean(), seed=0, trial=0)
        b = CollectStage(wean(), seed=0, trial=0)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("kwargs", [
        {"seed": 1}, {"trial": 1}, {"duration": 60.0},
    ])
    def test_input_changes_change_fingerprint(self, kwargs):
        base = CollectStage(wean(), seed=0, trial=0)
        changed = CollectStage(wean(), **{"seed": 0, "trial": 0, **kwargs})
        assert base.fingerprint() != changed.fingerprint()

    def test_scenario_change_changes_fingerprint(self):
        assert (CollectStage(wean(), 0, 0).fingerprint()
                != CollectStage(scenario_by_name("porter"), 0,
                                0).fingerprint())

    def test_downstream_chains_upstream(self):
        collect0 = CollectStage(wean(), seed=0, trial=0)
        collect1 = CollectStage(wean(), seed=1, trial=0)
        assert (DistillStage(collect0).fingerprint()
                != DistillStage(collect1).fingerprint())
        runner = FtpRunner(nbytes=1000)
        assert (ModulatedTrialStage(DistillStage(collect0), runner,
                                    0, 0).fingerprint()
                != ModulatedTrialStage(DistillStage(collect1), runner,
                                       0, 0).fingerprint())

    def test_version_is_part_of_the_key(self):
        stage = CollectStage(wean(), seed=0, trial=0)
        fp = stage.fingerprint()

        class Collect2(CollectStage):
            version = 2

        assert Collect2(wean(), seed=0, trial=0).fingerprint() != fp

    def test_all_stage_names_distinct(self):
        names = [cls.stage_name for cls in ALL_STAGES]
        assert len(set(names)) == len(names)


# ======================================================================
# ArtifactStore
# ======================================================================
@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return ArtifactStore()
    return ArtifactStore(tmp_path / "cache")


class TestArtifactStore:
    def test_round_trip(self, store):
        fp = digest("x")
        assert not store.contains(fp)
        assert store.get(fp) == (False, None)
        store.put(fp, {"value": [1, 2, 3]})
        assert store.contains(fp)
        found, value = store.get(fp)
        assert found and value == {"value": [1, 2, 3]}
        assert list(store.fingerprints()) == [fp]
        assert len(store) == 1

    def test_values_are_fresh_copies(self, store):
        fp = digest("y")
        original = {"items": [1, 2]}
        store.put(fp, original)
        original["items"].append(3)          # caller mutates its copy
        _, first = store.get(fp)
        first["items"].append(99)            # ... and what it got back
        _, second = store.get(fp)
        assert second == {"items": [1, 2]}

    def test_delete(self, store):
        fp = digest("z")
        store.put(fp, 1)
        store.delete(fp)
        assert not store.contains(fp)
        store.delete(fp)                     # idempotent

    def test_unpicklable_value_is_loud(self, store):
        with pytest.raises(Exception):
            store.put(digest("bad"), lambda: None)


class TestDiskStore:
    def test_corrupt_artifact_is_a_miss_and_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = digest("c")
        store.put(fp, 42, meta={"stage": "test"})
        path = store._object_path(fp)
        path.write_bytes(b"not a pickle")
        assert store.get(fp) == (False, None)
        assert not path.exists()             # dropped, not left to rot

    def test_meta_sidecar(self, tmp_path):
        import json

        store = ArtifactStore(tmp_path)
        fp = digest("m")
        store.put(fp, "artifact", meta={"stage": "collect", "version": 1})
        doc = json.loads(store._meta_path(fp).read_text())
        assert doc["stage"] == "collect"
        assert doc["fingerprint"] == fp
        assert doc["bytes"] > 0

    def test_persists_across_instances(self, tmp_path):
        fp = digest("p")
        ArtifactStore(tmp_path).put(fp, [1, 2])
        assert ArtifactStore(tmp_path).get(fp) == (True, [1, 2])


# ======================================================================
# Pipeline accounting
# ======================================================================
class CountingStage(CompensationStage):
    """A cheap stage that counts its compute() calls."""

    calls = 0

    def compute(self, pipeline, world_out=None):
        type(self).calls += 1
        return {"value": self.seed}


class TestPipeline:
    def test_miss_then_hit(self):
        CountingStage.calls = 0
        pipeline = Pipeline()
        stage = CountingStage(seed=5)
        assert pipeline.run(stage) == {"value": 5}
        assert pipeline.run(stage) == {"value": 5}
        assert CountingStage.calls == 1
        assert pipeline.misses == 1 and pipeline.hits == 1

    def test_world_out_bypasses_lookup_but_still_stores(self):
        CountingStage.calls = 0
        pipeline = Pipeline()
        stage = CountingStage(seed=6)
        pipeline.run(stage, world_out={})
        pipeline.run(stage, world_out={})    # live state: computes again
        assert CountingStage.calls == 2
        assert pipeline.summary()["bypassed"] == 2
        # ... but the artifact was stored, so a plain run now hits.
        assert pipeline.run(stage) == {"value": 6}
        assert CountingStage.calls == 2
        assert pipeline.hits == 1

    def test_summary_window_and_render(self):
        pipeline = Pipeline()
        pipeline.run(CountingStage(seed=7))
        assert "cold" in pipeline.render_summary()
        mark = len(pipeline.executions)
        pipeline.run(CountingStage(seed=7))
        warm = pipeline.summary(since=mark)
        assert warm == {"hits": 1, "misses": 0, "bypassed": 0,
                        "stages": warm["stages"]}
        assert "(warm)" in pipeline.render_summary(since=mark)

    def test_as_pipeline_coercions(self, tmp_path):
        assert as_pipeline(None) is None
        pipeline = Pipeline()
        assert as_pipeline(pipeline) is pipeline
        assert as_pipeline(tmp_path / "c").store.root == tmp_path / "c"
        store = ArtifactStore()
        assert as_pipeline(store).store is store


# ======================================================================
# Harness integration: warm reruns recompute nothing
# ======================================================================
RUNNER = FtpRunner(nbytes=100_000, direction="send")


class TestValidationCaching:
    def test_warm_rerun_is_hits_only_faster_and_byte_identical(
            self, tmp_path):
        cache_dir = tmp_path / "cache"
        started = time.perf_counter()
        cold = run_validation(wean(), RUNNER, seed=0, trials=1,
                              workers=1, cache=cache_dir)
        cold_s = time.perf_counter() - started
        assert cold.cache_hits == 0 and cold.cache_misses > 0

        started = time.perf_counter()
        warm = run_validation(wean(), RUNNER, seed=0, trials=1,
                              workers=1, cache=cache_dir)
        warm_s = time.perf_counter() - started
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert warm_s * 5 < cold_s, \
            f"warm rerun {warm_s:.2f}s not 5x faster than {cold_s:.2f}s"

        uncached = run_validation(wean(), RUNNER, seed=0, trials=1,
                                  workers=1)
        assert uncached.cache_hits == 0 and uncached.cache_misses == 0
        assert warm.render() == cold.render() == uncached.render()

    def test_changed_seed_invalidates(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_validation(wean(), RUNNER, seed=0, trials=1, workers=1,
                       cache=cache_dir)
        other = run_validation(wean(), RUNNER, seed=1, trials=1,
                               workers=1, cache=cache_dir)
        assert other.cache_misses > 0

    def test_spec_fingerprint_matches_stage_keyspace(self):
        """Sweep trials and pipeline stages share cached artifacts."""
        spec = TrialSpec(kind="live", seed=0, trial=0, scenario=wean(),
                         runner=RUNNER)
        stage = LiveTrialStage(wean(), RUNNER, 0, 0)
        assert spec_fingerprint(spec) == stage.fingerprint()

    def test_spec_fingerprint_none_on_unstable_input(self):
        class Opaque:
            name = "opaque"

        spec = TrialSpec(kind="live", seed=0, trial=0, scenario=Opaque(),
                         runner=RUNNER)
        assert spec_fingerprint(spec) is None

    def test_serial_executor_map_uses_the_cache(self):
        pipeline = Pipeline()
        from dataclasses import replace

        spec = TrialSpec(kind="ethernet", seed=0, trial=0, runner=RUNNER)
        spec = replace(spec, fingerprint=spec_fingerprint(spec))
        with TrialExecutor(workers=1, pipeline=pipeline) as exe:
            first = exe.map([spec])
            second = exe.map([spec])
        assert first == second
        assert pipeline.misses == 1 and pipeline.hits == 1


class TestCheckReportCaching:
    def test_warm_check_serves_the_stored_report(self, tmp_path):
        from repro.check import check_scenario

        cache = Pipeline(tmp_path / "cache")
        cold = check_scenario("wean", ftp_bytes=60_000, cache=cache)
        assert cold.ok
        mark = len(cache.executions)
        warm = check_scenario("wean", ftp_bytes=60_000, cache=cache)
        stats = cache.summary(since=mark)
        assert stats == {"hits": 1, "misses": 0, "bypassed": 0,
                         "stages": stats["stages"]}
        assert warm.render() == cold.render()
        # A different transfer size is a different report.
        other = check_scenario("wean", ftp_bytes=61_000, cache=cache)
        assert other.render() != ""  # recomputed, no exception

    def test_violations_pickle_round_trip(self):
        from repro.check.invariants import InvariantViolation

        violation = InvariantViolation(
            "monitor", "invariant", "message", trace=7, k=1)
        clone = pickle.loads(pickle.dumps(violation))
        assert clone.monitor == "monitor"
        assert clone.trace == 7
        assert clone.details == {"k": 1}
        assert str(clone) == str(violation)
