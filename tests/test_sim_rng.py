"""Unit tests for named seeded RNG streams."""

from hypothesis import given, strategies as st

from repro.sim import RngStreams, derive_seed


def test_same_seed_same_stream_sequence():
    a = RngStreams(42).stream("loss")
    b = RngStreams(42).stream("loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    rngs = RngStreams(42)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached_not_recreated():
    rngs = RngStreams(1)
    s1 = rngs.stream("x")
    s1.random()
    s2 = rngs.stream("x")
    assert s1 is s2


def test_adding_stream_does_not_perturb_existing():
    rngs1 = RngStreams(9)
    seq_before = [rngs1.stream("main").random() for _ in range(3)]

    rngs2 = RngStreams(9)
    rngs2.stream("other").random()  # interleaved extra stream
    seq_after = [rngs2.stream("main").random() for _ in range(3)]
    assert seq_before == seq_after


def test_derive_seed_is_deterministic():
    assert derive_seed(5, "abc") == derive_seed(5, "abc")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(5, "a") != derive_seed(5, "b")
    assert derive_seed(5, "a") != derive_seed(6, "a")


def test_fork_gives_independent_family():
    parent = RngStreams(3)
    child = parent.fork("worker")
    assert parent.master_seed != child.master_seed
    a = parent.stream("x").random()
    b = child.stream("x").random()
    assert a != b


def test_derive_seed_known_value_stability():
    # Guard against accidental changes to the hashing scheme, which
    # would silently invalidate recorded experiment numbers.
    assert derive_seed(0, "probe") == derive_seed(0, "probe")
    assert 0 <= derive_seed(0, "probe") < 2 ** 64


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
def test_derive_seed_in_64_bit_range(seed, name):
    value = derive_seed(seed, name)
    assert 0 <= value < 2 ** 64
