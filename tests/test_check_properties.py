"""Property-based fuzzing of the collect→distill→replay→modulate pipeline.

Hypothesis generates random *valid* inputs at three levels:

* serialization — replay-trace JSON and the RFC-2041-style binary
  trace format must round-trip losslessly for any valid content;
* modulation — for any valid replay trace, the modulator never
  under-accounts a delivered packet's delay by more than one 10 ms
  kernel tick, and every rounded release lands on the tick grid
  (the §5.4 error-analysis bound as an executable property);
* pipeline fidelity — distilling a traversal over a random synthetic
  channel yields a replay model whose predicted small-probe RTT is
  within a small factor of what the traversal actually observed.

World-spinning properties keep ``max_examples`` deliberately small:
each example is a full simulated trial, and the goal is breadth of
*parameters*, not statistical volume.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import CheckContext, WellFormednessMonitor
from repro.core.replay import QualityTuple, ReplayTrace
from repro.core.traceformat import (DIR_IN, DeviceStatusRecord,
                                    LostRecordsRecord, PacketRecord,
                                    dumps_trace, loads_trace)
from repro.net.wavelan import ChannelConditions
from repro.obs import ObsConfig
from repro.scenarios.base import Scenario
from repro.validation.harness import (FtpRunner, collect_trace,
                                      compensation_vb,
                                      distill_scenario_trace,
                                      run_modulated_trial)

pytestmark = pytest.mark.check

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite = dict(allow_nan=False, allow_infinity=False)

quality_tuples = st.builds(
    QualityTuple,
    d=st.floats(min_value=0.5, max_value=10.0, **finite),
    F=st.floats(min_value=0.0, max_value=0.2, **finite),
    Vb=st.floats(min_value=0.0, max_value=2e-4, **finite),
    Vr=st.floats(min_value=0.0, max_value=2e-5, **finite),
    L=st.floats(min_value=0.0, max_value=1.0, **finite),
)

replay_traces = st.builds(
    ReplayTrace,
    st.lists(quality_tuples, min_size=1, max_size=20),
    name=st.text(
        alphabet=st.characters(codec="ascii",
                               categories=("L", "N", "P")),
        max_size=12),
)

packet_records = st.builds(
    PacketRecord,
    timestamp=st.floats(min_value=0.0, max_value=1e4, **finite),
    direction=st.sampled_from([0, 1]),
    proto=st.integers(min_value=0, max_value=255),
    size=st.integers(min_value=1, max_value=65535),
    src=st.sampled_from(["", "10.0.0.2", "10.1.0.1"]),
    dst=st.sampled_from(["", "10.0.0.2", "10.1.0.1"]),
    icmp_type=st.integers(min_value=-1, max_value=18),
    seq=st.integers(min_value=-1, max_value=2**31),
    rtt=st.one_of(st.just(-1.0),
                  st.floats(min_value=0.0, max_value=10.0, **finite)),
)

status_records = st.builds(
    DeviceStatusRecord,
    timestamp=st.floats(min_value=0.0, max_value=1e4, **finite),
    signal_level=st.floats(min_value=-10.0, max_value=40.0, **finite),
    signal_quality=st.floats(min_value=0.0, max_value=30.0, **finite),
    silence_level=st.floats(min_value=0.0, max_value=10.0, **finite),
)

lost_records = st.builds(
    LostRecordsRecord,
    timestamp=st.floats(min_value=0.0, max_value=1e4, **finite),
    record_type=st.sampled_from(["packet", "device_status"]),
    count=st.integers(min_value=1, max_value=10_000),
)

trace_records = st.one_of(packet_records, status_records, lost_records)


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------
@given(replay_traces)
def test_replay_json_roundtrip(trace):
    back = ReplayTrace.from_json(trace.to_json())
    assert back.name == trace.name
    assert back.tuples == trace.tuples
    # And the JSON text itself is a fixed point (golden determinism).
    assert back.to_json() == trace.to_json()


@given(st.lists(trace_records, max_size=30),
       st.text(max_size=40))
def test_binary_trace_roundtrip(records, description):
    back = loads_trace(dumps_trace(records, description))
    assert back == records


@given(st.lists(quality_tuples, min_size=1, max_size=20))
def test_generated_tuples_are_well_formed(tuples):
    """The generator and the wellformed monitor agree on validity."""
    monitor = WellFormednessMonitor()
    assert monitor.check_replay(ReplayTrace(tuples)) == []


# ----------------------------------------------------------------------
# Modulator delay bound
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(
    st.builds(
        QualityTuple,
        d=st.floats(min_value=1.0, max_value=4.0, **finite),
        F=st.floats(min_value=0.0, max_value=0.08, **finite),
        Vb=st.floats(min_value=0.0, max_value=1e-4, **finite),
        Vr=st.floats(min_value=0.0, max_value=1e-5, **finite),
        L=st.just(0.0),   # lossless keeps the short FTP deterministic-fast
    ),
    min_size=1, max_size=4))
def test_modulator_never_underdelays_past_one_tick(tuples):
    replay = ReplayTrace(tuples, name="fuzz")
    out = {}
    run_modulated_trial(replay, FtpRunner(nbytes=20_000, direction="send"),
                        seed=0, trial=0,
                        compensation_vb=compensation_vb(),
                        obs=ObsConfig(metrics=False, trace=True,
                                      spans=True),
                        world_out=out)
    layer = out["layer"]
    tick = layer.host.kernel.tick_resolution
    delays = [s for s in out["obs"].tracer.spans
              if s["layer"] == "mod" and s["event"] == "delay"]
    assert delays, "modulated trial produced no delayed packets"
    for span in delays:
        under = span["intended"] - span["applied"]
        assert under <= tick + 1e-9, \
            f"under-delayed by {under * 1e3:.3f} ms (> one tick)"
        assert span["applied"] >= 0.0
        if span["applied"] > 0.0:
            release = span["t"] + span["applied"]
            off = abs(release - round(release / tick) * tick)
            assert off <= 1e-9, f"release {off:.2e}s off the tick grid"


# ----------------------------------------------------------------------
# Pipeline fidelity on synthetic channels
# ----------------------------------------------------------------------
class SyntheticScenario(Scenario):
    """A constant random-parameter channel the test knows ground truth for."""

    name = "synthetic"
    duration = 40.0
    has_motion = False

    def __init__(self, signal, bandwidth_factor, access_latency):
        self._cond = ChannelConditions(
            signal_level=signal,
            loss_prob_up=0.0,
            loss_prob_down=0.0,
            bandwidth_factor=bandwidth_factor,
            access_latency_mean=access_latency,
        )

    def base_conditions(self, u, rng):
        return self._cond


def _weighted_mean(tuples, key):
    total = sum(t.d for t in tuples)
    return sum(key(t) * t.d for t in tuples) / total


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(signal=st.floats(min_value=15.0, max_value=25.0, **finite),
       bandwidth_factor=st.floats(min_value=0.5, max_value=1.0, **finite),
       access_latency=st.floats(min_value=2e-4, max_value=2e-3, **finite))
def test_distilled_replay_models_observed_rtt(signal, bandwidth_factor,
                                              access_latency):
    scenario = SyntheticScenario(signal, bandwidth_factor, access_latency)
    records = collect_trace(scenario, seed=0, trial=0)
    result = distill_scenario_trace(records, name="synthetic")
    replay = result.replay

    # The distillate must always be well-formed…
    assert WellFormednessMonitor().check(
        CheckContext(kind="fuzz", replay=replay,
                     distillation=result, records=records)) == []

    # …and its model must predict the small-probe RTT the traversal
    # actually measured.  Small ECHOREPLYs are the sub-500 B inbound
    # records carrying an RTT sample.
    observed = [r.rtt for r in records
                if isinstance(r, PacketRecord) and r.direction == DIR_IN
                and r.rtt >= 0.0 and r.size < 500]
    assert len(observed) >= 10, "traversal lost most small probes"
    observed_rtt = sum(observed) / len(observed)
    size = next(r.size for r in records
                if isinstance(r, PacketRecord) and r.direction == DIR_IN
                and r.rtt >= 0.0 and r.size < 500)
    model_rtt = 2.0 * (_weighted_mean(replay.tuples, lambda t: t.F)
                       + size * _weighted_mean(replay.tuples,
                                               lambda t: t.V))
    assert math.isfinite(model_rtt) and model_rtt > 0.0
    # Factor-2 band plus absolute slack: distillation error on a
    # constant channel stays well inside it; a broken pipeline
    # (dropped stage, unit slip, swapped F/V) lands far outside.
    slack = 0.02
    assert model_rtt <= 2.0 * observed_rtt + slack
    assert model_rtt >= 0.5 * observed_rtt - slack
