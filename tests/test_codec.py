"""The binary artifact codec: exact round-trips, strict rejection.

The pipeline store and the parallel sweep's envelope handoff both rest
on ``repro.pipeline.codec``: every artifact must survive encode→decode
bit-exactly (or the determinism contract breaks), and every malformed
frame must be rejected loudly (or a corrupt cache poisons results).
"""

import gzip
import json
import pickle
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import Summary
from repro.core.distill import DistillationResult, ParameterEstimate
from repro.core.replay import QualityTuple, ReplayTrace
from repro.core.traceformat import (
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
)
from repro.pipeline import codec
from repro.pipeline.codec import CodecError
from repro.pipeline.stages import CollectStage
from repro.pipeline.store import ArtifactStore


# ======================================================================
# Hypothesis strategies
# ======================================================================
# Exact round-trip excludes NaN (NaN != NaN would fail equality even on
# a correct codec); -0.0/infinities must survive.
_floats = st.floats(allow_nan=False)
_scalars = (st.none() | st.booleans() | st.integers() | _floats
            | st.text(max_size=40) | st.binary(max_size=40))
_values = st.recursive(
    _scalars,
    lambda children: (
        st.lists(children, max_size=5)
        | st.lists(children, max_size=5).map(tuple)
        | st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=25)

_quality_tuples = st.builds(
    QualityTuple,
    d=st.floats(min_value=0.001, max_value=100, allow_nan=False),
    F=st.floats(min_value=0, max_value=10, allow_nan=False),
    Vb=st.floats(min_value=0, max_value=1, allow_nan=False),
    Vr=st.floats(min_value=0, max_value=1, allow_nan=False),
    L=st.floats(min_value=0, max_value=1, allow_nan=False))

_packets = st.builds(
    PacketRecord,
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    direction=st.sampled_from([0, 1]),
    proto=st.integers(min_value=0, max_value=255),
    size=st.integers(min_value=0, max_value=65535),
    src=st.text(max_size=16),
    dst=st.text(max_size=16),
    rtt=st.floats(min_value=-1, max_value=60, allow_nan=False))

_statuses = st.builds(
    DeviceStatusRecord,
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    signal_level=st.floats(min_value=-100, max_value=0, allow_nan=False),
    signal_quality=st.floats(min_value=0, max_value=1, allow_nan=False),
    silence_level=st.floats(min_value=-100, max_value=0, allow_nan=False))


# ======================================================================
# Round-trip properties
# ======================================================================
@given(_values)
@settings(max_examples=200, deadline=None)
def test_roundtrip_values(value):
    assert codec.decode(codec.encode(value)) == value


@given(_values)
@settings(max_examples=50, deadline=None)
def test_roundtrip_gzip_framing(value):
    blob = codec.encode_gz(value)
    assert codec.decode_gz(blob) == value
    # gzip framing is deterministic (mtime pinned), so fingerprint-free
    # content digests are stable across processes and runs
    assert codec.encode_gz(value) == blob


def test_roundtrip_preserves_container_types():
    value = {"t": (1, 2), "l": [1, 2], "nested": ({"a": (None,)},)}
    out = codec.decode(codec.encode(value))
    assert out == value
    assert type(out["t"]) is tuple and type(out["l"]) is list
    assert type(out["nested"]) is tuple


@given(st.lists(_quality_tuples, min_size=1, max_size=20),
       st.text(max_size=20))
@settings(max_examples=50, deadline=None)
def test_roundtrip_replay_trace(tuples, name):
    replay = ReplayTrace(tuples, name=name)
    out = codec.decode(codec.encode(replay))
    assert isinstance(out, ReplayTrace)
    assert out == replay


@given(st.lists(st.one_of(_packets, _statuses), max_size=20))
@settings(max_examples=50, deadline=None)
def test_roundtrip_trace_records(records):
    records = records + [LostRecordsRecord(timestamp=1.0,
                                           record_type="packet", count=3)]
    assert codec.decode(codec.encode(records)) == records


@given(st.floats(allow_nan=False), st.floats(min_value=0, allow_nan=False),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_roundtrip_summary(mean, std, n):
    s = Summary(mean=mean, std=std, n=n)
    assert codec.decode(codec.encode(s)) == s


def test_roundtrip_distillation_result():
    replay = ReplayTrace([QualityTuple(d=1.0, F=0.05, Vb=1e-4, Vr=0.0,
                                       L=0.1)], name="x")
    dist = DistillationResult(
        replay=replay,
        estimates=[ParameterEstimate(time=0.5, F=0.05, Vb=1e-4, Vr=0.0,
                                     corrected=True)],
        groups_total=10, groups_used=8, groups_corrected=1,
        groups_skipped=2, echoes_sent=100, replies_received=90,
        status_records=[DeviceStatusRecord(timestamp=0.0, signal_level=-60,
                                           signal_quality=0.9,
                                           silence_level=-90)])
    out = codec.decode(codec.encode(dist))
    assert out == dist
    assert isinstance(out.estimates[0], ParameterEstimate)


def test_roundtrip_huge_int():
    for value in (2**100, -(2**100), 2**63, -(2**63) - 1):
        assert codec.decode(codec.encode(value)) == value


def test_content_digest_is_sha256_hex():
    blob = codec.encode_gz([1, 2, 3])
    digest = codec.content_digest(blob)
    assert len(digest) == 64 and int(digest, 16) >= 0


# ======================================================================
# Strict rejection
# ======================================================================
def test_rejects_bad_magic():
    blob = bytearray(codec.encode(42))
    blob[:4] = b"NOPE"
    with pytest.raises(CodecError):
        codec.decode(bytes(blob))


def test_rejects_wrong_version():
    bad = codec.MAGIC + struct.pack("<H", codec.VERSION + 1) + b"\x00"
    with pytest.raises(CodecError):
        codec.decode(bad)


def test_rejects_truncation_at_every_point():
    blob = codec.encode({"key": [1.5, "text", (None, b"bytes")]})
    for cut in range(len(blob)):
        with pytest.raises(CodecError):
            codec.decode(blob[:cut])


def test_rejects_trailing_garbage():
    with pytest.raises(CodecError):
        codec.decode(codec.encode([1, 2]) + b"\x00")


def test_rejects_unknown_tag():
    blob = codec.MAGIC + struct.pack("<H", codec.VERSION) + b"\x6e"
    with pytest.raises(CodecError):
        codec.decode(blob)


def test_rejects_corrupt_gzip():
    blob = bytearray(codec.encode_gz([1, 2, 3]))
    blob[-3] ^= 0xFF
    with pytest.raises(CodecError):
        codec.decode_gz(bytes(blob))


def test_rejects_corrupt_replay_duration():
    replay = ReplayTrace([QualityTuple(d=1.0, F=0.0, Vb=0.0, Vr=0.0,
                                       L=0.0)], name="")
    blob = bytearray(codec.encode(replay))
    # overwrite the (little-endian) duration double with -1.0
    blob[-40:-32] = struct.pack("<d", -1.0)
    with pytest.raises(CodecError):
        codec.decode(bytes(blob))


# ======================================================================
# Store integration: old caches miss cleanly
# ======================================================================
def test_pickle_era_cache_dir_misses_cleanly(tmp_path):
    """A cache dir written by the pickle-era store (``.pkl`` objects,
    version-less sidecars) must produce clean misses — never a crash,
    never a stale artifact."""
    store = ArtifactStore(tmp_path)
    fp = CollectStage.__name__.lower() * 4  # any 64ish-char-safe key
    legacy_dir = tmp_path / "objects" / fp[:2]
    legacy_dir.mkdir(parents=True)
    (legacy_dir / f"{fp}.pkl").write_bytes(
        pickle.dumps({"records": [1, 2, 3]}))
    (legacy_dir / f"{fp}.json").write_text(
        json.dumps({"stage": "collect", "fingerprint": fp}))
    found, value = store.get(fp)
    assert not found and value is None
    # and the store still works for new-format objects
    store.put(fp, {"records": [1, 2, 3]})
    found, value = store.get(fp)
    assert found and value == {"records": [1, 2, 3]}


def test_corrupt_artifact_is_dropped_and_missed(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("ab" * 32, [1, 2, 3])
    (path,) = (tmp_path / "objects").glob("*/*.rba")
    path.write_bytes(b"not a frame at all")
    found, value = store.get("ab" * 32)
    assert not found and value is None
    assert not path.exists()  # the bad object was evicted


def test_store_objects_are_gzip_framed_binary(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("cd" * 32, {"table": [1.5] * 100})
    (path,) = (tmp_path / "objects").glob("*/*.rba")
    raw = path.read_bytes()
    assert raw[:2] == b"\x1f\x8b"  # gzip magic
    assert gzip.decompress(raw)[:4] == codec.MAGIC


def test_sidecar_metadata_still_json(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("ef" * 32, [1, 2], meta={"stage": "collect"})
    sidecars = list(tmp_path.glob("objects/*/*.json"))
    assert sidecars, "sidecar metadata must remain human-readable JSON"
    doc = json.loads(sidecars[0].read_text())
    assert doc["stage"] == "collect"
    assert doc["codec"] == codec.VERSION


def test_format_version_changes_stage_fingerprints(monkeypatch):
    """Bumping CACHE_FORMAT_VERSION must re-key every stage, so caches
    written under the old on-disk format miss cleanly."""
    from repro.pipeline import stages
    from repro.scenarios import PorterScenario

    stage = CollectStage(PorterScenario(), seed=0, trial=0)
    now = stage.fingerprint()
    monkeypatch.setattr(stages, "CACHE_FORMAT_VERSION", 1)
    assert stage.fingerprint() != now
