"""Unit tests for point-to-point links, Ethernet, and the bridge."""

import pytest

from repro.net import (
    Bridge,
    EthernetDevice,
    EthernetSegment,
    IPHeader,
    LinkDevice,
    LoopbackDevice,
    Packet,
    PointToPointLink,
    PROTO_ICMP,
)
from repro.sim import Simulator


def _ip_packet(src, dst, nbytes=1000):
    return Packet(ip=IPHeader(src, dst, PROTO_ICMP), payload_bytes=nbytes)


# ----------------------------------------------------------------------
# Point-to-point link
# ----------------------------------------------------------------------
def _p2p(sim, bandwidth=8e6, prop=1e-3):
    a = LinkDevice(sim, "a0", "10.0.0.1")
    b = LinkDevice(sim, "b0", "10.0.0.2")
    link = PointToPointLink(sim, a, b, bandwidth_bps=bandwidth, prop_delay=prop)
    return a, b, link


def test_p2p_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    a, b, link = _p2p(sim, bandwidth=8e6, prop=1e-3)
    arrivals = []
    b.upstream = lambda pkt: arrivals.append(sim.now)
    p = _ip_packet("10.0.0.1", "10.0.0.2", nbytes=1000 - 34)
    a.send(p)  # 1000 wire bytes at 8 Mb/s = 1 ms
    sim.run()
    assert arrivals == [pytest.approx(0.002)]


def test_p2p_back_to_back_serialize():
    sim = Simulator()
    a, b, _ = _p2p(sim, bandwidth=8e6, prop=0.0)
    arrivals = []
    b.upstream = lambda pkt: arrivals.append(sim.now)
    for _i in range(3):
        a.send(_ip_packet("10.0.0.1", "10.0.0.2", nbytes=1000 - 34))
    sim.run()
    assert arrivals == [pytest.approx(0.001 * (i + 1)) for i in range(3)]


def test_p2p_full_duplex_directions_do_not_interfere():
    sim = Simulator()
    a, b, _ = _p2p(sim, bandwidth=8e6, prop=0.0)
    times = {}
    a.upstream = lambda pkt: times.setdefault("at_a", sim.now)
    b.upstream = lambda pkt: times.setdefault("at_b", sim.now)
    a.send(_ip_packet("10.0.0.1", "10.0.0.2", nbytes=1000 - 34))
    b.send(_ip_packet("10.0.0.2", "10.0.0.1", nbytes=1000 - 34))
    sim.run()
    assert times["at_a"] == pytest.approx(0.001)
    assert times["at_b"] == pytest.approx(0.001)


def test_p2p_counters():
    sim = Simulator()
    a, b, _ = _p2p(sim)
    b.upstream = lambda pkt: None
    a.send(_ip_packet("10.0.0.1", "10.0.0.2"))
    sim.run()
    assert a.tx_packets == 1
    assert b.rx_packets == 1


def test_down_device_drops():
    sim = Simulator()
    a, b, _ = _p2p(sim)
    a.up = False
    a.send(_ip_packet("10.0.0.1", "10.0.0.2"))
    sim.run()
    assert a.tx_drops == 1
    assert b.rx_packets == 0


def test_device_hooks_see_both_directions():
    sim = Simulator()
    a, b, _ = _p2p(sim)
    seen = []
    hook = lambda dev, pkt, direction, ts: seen.append((dev.name, direction))
    a.output_hooks.append(hook)
    b.input_hooks.append(hook)
    b.upstream = lambda pkt: None
    a.send(_ip_packet("10.0.0.1", "10.0.0.2"))
    sim.run()
    assert ("a0", "out") in seen and ("b0", "in") in seen


# ----------------------------------------------------------------------
# Loopback
# ----------------------------------------------------------------------
def test_loopback_delivers_to_self():
    sim = Simulator()
    lo = LoopbackDevice(sim)
    got = []
    lo.upstream = got.append
    p = _ip_packet("127.0.0.1", "127.0.0.1")
    lo.send(p)
    sim.run()
    assert got == [p]


# ----------------------------------------------------------------------
# Ethernet segment
# ----------------------------------------------------------------------
def _ether(sim, n=2, bandwidth=10e6):
    seg = EthernetSegment(sim, bandwidth_bps=bandwidth, prop_delay=0.0)
    devs = []
    for i in range(n):
        d = EthernetDevice(sim, f"en{i}", f"10.0.0.{i + 1}")
        seg.attach(d)
        devs.append(d)
    return seg, devs


def test_ethernet_unicast_reaches_only_addressee():
    sim = Simulator()
    seg, (d1, d2, d3) = _ether(sim, n=3)
    got = {d.name: [] for d in (d1, d2, d3)}
    for d in (d1, d2, d3):
        d.upstream = (lambda name: lambda pkt: got[name].append(pkt))(d.name)
    d1.send(_ip_packet("10.0.0.1", "10.0.0.2"))
    sim.run()
    assert len(got["en1"]) == 1
    assert got["en2"] == []


def test_ethernet_floods_unknown_destination():
    sim = Simulator()
    seg, (d1, d2, d3) = _ether(sim, n=3)
    counts = {d.name: 0 for d in (d1, d2, d3)}

    def counter(name):
        def inner(pkt):
            counts[name] += 1
        return inner

    for d in (d1, d2, d3):
        d.upstream = counter(d.name)
    d1.send(_ip_packet("10.0.0.1", "10.99.99.99"))
    sim.run()
    assert counts == {"en0": 0, "en1": 1, "en2": 1}


def test_ethernet_is_half_duplex():
    sim = Simulator()
    seg, (d1, d2) = _ether(sim, bandwidth=8e6)
    arrivals = []
    d1.upstream = lambda pkt: arrivals.append(("to1", sim.now))
    d2.upstream = lambda pkt: arrivals.append(("to2", sim.now))
    # Both stations transmit 1000-byte frames at t=0: the second must
    # wait for the first to clear the shared wire.
    d1.send(_ip_packet("10.0.0.1", "10.0.0.2", nbytes=1000 - 34))
    d2.send(_ip_packet("10.0.0.2", "10.0.0.1", nbytes=1000 - 34))
    sim.run()
    times = sorted(t for _, t in arrivals)
    assert times[0] == pytest.approx(0.001)
    assert times[1] >= 0.002  # second frame serialized after the first


def test_ethernet_per_byte_cost():
    sim = Simulator()
    seg, _ = _ether(sim, bandwidth=10e6)
    assert seg.per_byte_cost() == pytest.approx(8.0 / 10e6)


def test_ethernet_accounting():
    sim = Simulator()
    seg, (d1, d2) = _ether(sim)
    d2.upstream = lambda pkt: None
    d1.send(_ip_packet("10.0.0.1", "10.0.0.2"))
    sim.run()
    assert seg.frames_carried == 1
    assert seg.bytes_carried > 0


def test_ethernet_double_attach_rejected():
    sim = Simulator()
    seg, (d1, _) = _ether(sim)
    with pytest.raises(ValueError):
        seg.attach(d1)


# ----------------------------------------------------------------------
# Bridge
# ----------------------------------------------------------------------
def test_bridge_learns_and_forwards():
    sim = Simulator()
    a = LoopbackDevice(sim, "porta", "0.0.0.0")
    b = LoopbackDevice(sim, "portb", "0.0.0.0")
    sent = {"a": [], "b": []}
    a.send = lambda pkt: sent["a"].append(pkt)   # capture egress
    b.send = lambda pkt: sent["b"].append(pkt)
    bridge = Bridge(a, b)
    # Frame from host X arrives on port A: learned + forwarded to B.
    a.upstream(_ip_packet("10.0.0.1", "10.0.0.2"))
    assert len(sent["b"]) == 1
    assert bridge.learned_addresses() == {"10.0.0.1": "porta"}
    # Reply arrives on port B: forwarded to A and learned.
    b.upstream(_ip_packet("10.0.0.2", "10.0.0.1"))
    assert len(sent["a"]) == 1
    # A frame for a host already known on the ingress side is NOT
    # forwarded back out.
    b.upstream(_ip_packet("10.0.0.9", "10.0.0.2"))
    assert len(sent["a"]) == 1
