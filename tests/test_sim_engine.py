"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_fires_in_time_order(sim):
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5]
    assert sim.now == 1.5


def test_ties_fire_in_scheduling_order(sim):
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(3.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 3.0


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_cancel_prevents_firing(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_event_pending_lifecycle(sim):
    event = sim.schedule(1.0, lambda: None)
    assert event.pending
    sim.run()
    assert event.fired
    assert not event.pending


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0  # clock advances to the horizon


def test_run_until_then_resume(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_exact_event_time_fires_event(sim):
    fired = []
    sim.schedule(2.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]


def test_max_events_limits_execution(sim):
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_step_fires_one_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]


def test_step_on_empty_queue_returns_false(sim):
    assert not sim.step()


def test_step_skips_cancelled(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    event.cancel()
    assert sim.step()
    assert fired == ["b"]


def test_pending_count_excludes_cancelled(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_count() == 2
    e1.cancel()
    assert sim.pending_count() == 1


def test_events_processed_counter(sim):
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_not_reentrant(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_zero_delay_fires_at_current_time(sim):
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, fired.append, sim.now))
    sim.run()
    assert fired == [1.0]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=29))
def test_cancelling_any_event_removes_exactly_that_one(n, victim):
    victim = victim % n
    sim = Simulator()
    fired = []
    events = [sim.schedule(float(i + 1), fired.append, i) for i in range(n)]
    events[victim].cancel()
    sim.run()
    assert fired == [i for i in range(n) if i != victim]
