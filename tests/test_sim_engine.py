"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_fires_in_time_order(sim):
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5]
    assert sim.now == 1.5


def test_ties_fire_in_scheduling_order(sim):
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(3.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 3.0


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_cancel_prevents_firing(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_event_pending_lifecycle(sim):
    event = sim.schedule(1.0, lambda: None)
    assert event.pending
    sim.run()
    assert event.fired
    assert not event.pending


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0  # clock advances to the horizon


def test_run_until_then_resume(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_exact_event_time_fires_event(sim):
    fired = []
    sim.schedule(2.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]


def test_max_events_limits_execution(sim):
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_step_fires_one_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]


def test_step_on_empty_queue_returns_false(sim):
    assert not sim.step()


def test_step_skips_cancelled(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    event.cancel()
    assert sim.step()
    assert fired == ["b"]


def test_pending_count_excludes_cancelled(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_count() == 2
    e1.cancel()
    assert sim.pending_count() == 1


def test_events_processed_counter(sim):
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_not_reentrant(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_zero_delay_fires_at_current_time(sim):
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, fired.append, sim.now))
    sim.run()
    assert fired == [1.0]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=29))
def test_cancelling_any_event_removes_exactly_that_one(n, victim):
    victim = victim % n
    sim = Simulator()
    fired = []
    events = [sim.schedule(float(i + 1), fired.append, i) for i in range(n)]
    events[victim].cancel()
    sim.run()
    assert fired == [i for i in range(n) if i != victim]


# ----------------------------------------------------------------------
# Hot-path behaviour: compaction, counters, cancelled-event accounting
# ----------------------------------------------------------------------
def test_max_events_never_counts_cancelled(sim):
    """A budget of N fires exactly N live events even when cancelled
    entries are interleaved ahead of them on the heap."""
    fired = []
    cancelled = []
    for i in range(20):
        e = sim.schedule(float(i + 1), fired.append, i)
        if i % 2 == 0:
            cancelled.append(e)
    for e in cancelled:
        e.cancel()
    sim.run(max_events=5)
    assert fired == [1, 3, 5, 7, 9]  # five *live* events, none skipped


def test_max_events_budget_resumes_cleanly(sim):
    fired = []
    events = [sim.schedule(float(i + 1), fired.append, i) for i in range(10)]
    events[0].cancel()
    events[1].cancel()
    sim.run(max_events=3)
    assert fired == [2, 3, 4]
    sim.run()
    assert fired == list(range(2, 10))


def test_cancel_is_idempotent_and_counted_once(sim):
    e = sim.schedule(1.0, lambda: None)
    e.cancel()
    e.cancel()
    e.cancel()
    assert sim.stats().events_cancelled == 1
    assert sim.pending_count() == 0


def test_cancel_after_firing_is_a_noop(sim):
    fired = []
    e = sim.schedule(1.0, fired.append, "x")
    sim.run()
    e.cancel()
    assert fired == ["x"]
    assert sim.stats().events_cancelled == 0


def test_heap_compaction_under_retransmit_churn(sim):
    """The TCP retransmit pattern — schedule a far-future timer every
    step, cancel it the next step — must trigger heap compaction and
    keep ordering and the fired-event count exactly as if no dead
    entries had ever existed."""
    n = 10_000
    fired_times = []
    state = {"remaining": n, "timer": None}

    def rto():  # timers are always cancelled before they fire
        raise AssertionError("cancelled retransmit timer fired")

    def tick():
        if state["timer"] is not None:
            state["timer"].cancel()
        fired_times.append(sim.now)
        state["remaining"] -= 1
        if state["remaining"] > 0:
            state["timer"] = sim.schedule(30.0, rto)
            sim.schedule(0.001, tick)
        else:
            state["timer"] = None

    state["timer"] = sim.schedule(30.0, rto)
    sim.schedule(0.001, tick)
    sim.run(until=25.0)  # all ticks fire by t=10; no timer survives to 30

    stats = sim.stats()
    assert fired_times == sorted(fired_times)
    assert sim.events_processed == n  # only the ticks; never a dead timer
    assert stats.events_fired == n
    assert stats.events_cancelled == n
    assert stats.compactions > 0
    assert stats.events_compacted > 0
    # Compaction keeps the heap near its live size: with every timer
    # dead, the dead backlog stays bounded rather than growing to n.
    assert stats.dead < n // 2
    assert sim.pending_count() == 0


def test_compaction_preserves_interleaved_ordering(sim):
    """Cancel-heavy churn with live events on both sides of the dead
    entries: everything still fires in (time, schedule-order)."""
    fired = []
    keep = []
    for i in range(2_000):
        keep.append(sim.schedule(float(i) + 0.5, fired.append, i))
        doomed = sim.schedule(float(i) + 0.25, fired.append, -1)
        doomed.cancel()
    sim.run()
    assert fired == list(range(2_000))
    assert sim.stats().events_fired == 2_000


def test_stats_counters_track_schedule_fire_cancel(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    sim.run()
    stats = sim.stats()
    assert stats.events_scheduled == 2
    assert stats.events_fired == 1
    assert stats.events_cancelled == 1
    assert stats.runs == 1
    assert stats.wall_time >= 0.0
    assert stats.pending == 0
    d = stats.as_dict()
    assert d["events_fired"] == 1
    assert "events_per_sec" in d


def test_pending_count_is_constant_time_bookkeeping(sim):
    """pending_count is maintained incrementally: it stays exact
    through schedule / cancel / fire without scanning the heap."""
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    assert sim.pending_count() == 100
    for e in events[:40]:
        e.cancel()
    assert sim.pending_count() == 60
    sim.run(max_events=10)
    assert sim.pending_count() == 50
    sim.run()
    assert sim.pending_count() == 0


# ----------------------------------------------------------------------
# PerfCounters snapshot edge cases
# ----------------------------------------------------------------------
def test_stats_accumulate_across_multiple_runs(sim):
    """runs / wall_time / events_fired keep accumulating over run() calls."""
    sim.schedule(1.0, lambda: None)
    sim.run()
    first = sim.stats()
    assert first.runs == 1
    sim.schedule(2.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    sim.run()
    second = sim.stats()
    assert second.runs == 2
    assert second.events_fired == first.events_fired + 2
    assert second.events_scheduled == first.events_scheduled + 2
    assert second.wall_time >= first.wall_time


def test_stats_snapshot_is_immutable_and_detached(sim):
    """A snapshot neither tracks later engine activity nor allows writes."""
    import dataclasses

    sim.schedule(1.0, lambda: None)
    sim.run()
    snap = sim.stats()
    fired_then = snap.events_fired
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert snap.events_fired == fired_then  # detached from the engine
    with pytest.raises(dataclasses.FrozenInstanceError):
        snap.events_fired = 999


def test_stats_as_dict_round_trips_into_perfcounters(sim):
    from repro.sim.perf import PerfCounters

    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.schedule(9.0, lambda: None).cancel()
    sim.run()
    snap = sim.stats()
    d = snap.as_dict()
    assert d["events_per_sec"] == snap.events_per_sec
    rebuilt = PerfCounters(**{k: v for k, v in d.items()
                              if k != "events_per_sec"})
    assert rebuilt == snap


def test_stats_events_per_sec_zero_without_wall_time():
    from repro.sim.perf import PerfCounters

    assert PerfCounters().events_per_sec == 0.0
    assert PerfCounters(events_fired=10, wall_time=2.0).events_per_sec == 5.0
