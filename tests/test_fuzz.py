"""The seeded scenario fuzzer: generator, shrinker, campaign, CLI.

Pins the properties CI leans on: the generator is a pure function of
``(seed, index, kinds)`` and only emits valid specs inside the
trial-feasibility envelopes; ``run_fuzz`` renders byte-identically
across reruns; a violating spec is shrunk and archived as a
reproducible TOML artifact (exercised by injecting a real kernel
mutation rather than hoping for a natural failure).
"""

import json

import pytest

from repro.check.fuzz import corpus_digest, run_fuzz, shrink_spec
from repro.check.runner import inject_tick_undershoot
from repro.cli import main
from repro.scenarios.generate import (
    GENERATOR_KINDS,
    generate_spec,
    generate_specs,
)
from repro.scenarios.spec import load_spec

pytestmark = pytest.mark.check


def _kind(spec) -> str:
    return spec.family.kind if spec.family is not None else "piecewise"


# ======================================================================
# The generator
# ======================================================================
class TestGenerateSpec:
    def test_same_seed_and_index_identical(self):
        assert generate_spec(0, 5) == generate_spec(0, 5)

    def test_different_index_or_seed_differs(self):
        base = generate_spec(0, 5)
        assert generate_spec(0, 6) != base
        assert generate_spec(1, 5).fields != base.fields

    def test_specs_valid_stamped_and_enveloped(self):
        for i, spec in enumerate(generate_specs(0, 30)):
            spec.validate()   # loud if the generator drifts
            assert spec.name == f"fuzz-s0-i{i:04d}"
            assert spec.generator == f"repro.fuzz/v1 seed=0 index={i}"
            assert 24.0 <= spec.duration <= 90.0

    def test_all_kinds_appear_in_a_mixed_stream(self):
        kinds = {_kind(spec) for spec in generate_specs(0, 60)}
        assert kinds == set(GENERATOR_KINDS)

    def test_kinds_filter_restricts_generation(self):
        for spec in generate_specs(0, 8, kinds=["leo"]):
            assert _kind(spec) == "leo"

    def test_unknown_kind_is_loud(self):
        with pytest.raises(ValueError, match="choose from"):
            generate_spec(0, 0, kinds=["wifi"])

    def test_piecewise_specs_stay_inside_feasibility_envelope(self):
        checked = 0
        for spec in generate_specs(0, 40):
            if spec.family is not None:
                continue
            checked += 1
            for piece in spec.fields["loss"]:
                assert piece.base <= 0.30
            for piece in spec.fields["bandwidth"]:
                assert piece.lo >= 0.15
        assert checked > 0

    def test_corpus_digest_stable_and_seed_sensitive(self):
        corpus = list(generate_specs(0, 5))
        assert corpus_digest(corpus) == corpus_digest(
            list(generate_specs(0, 5)))
        assert corpus_digest(corpus) != corpus_digest(
            list(generate_specs(1, 5)))


# ======================================================================
# The shrinker
# ======================================================================
class TestShrinkSpec:
    def _family_spec(self):
        for spec in generate_specs(0, 40):
            if spec.family is not None and spec.duration > 40.0:
                return spec
        raise AssertionError("stream 0 produced no family spec")

    def test_always_reproducing_spec_shrinks_within_budget(self):
        spec = self._family_spec()
        shrunk, steps, checks = shrink_spec(spec, lambda s: True,
                                            budget=10)
        assert steps > 0 and checks <= 10
        assert shrunk.family is None          # detached first
        assert shrunk.duration < spec.duration

    def test_never_reproducing_spec_returns_original(self):
        spec = self._family_spec()
        shrunk, steps, checks = shrink_spec(spec, lambda s: False,
                                            budget=10)
        assert shrunk == spec
        assert steps == 0 and 0 < checks <= 10

    def test_shrunk_specs_stay_valid(self):
        spec = self._family_spec()
        seen = []

        def reproduces(cand):
            cand.validate()   # every candidate handed over is valid
            seen.append(cand)
            return True

        shrink_spec(spec, reproduces, budget=6)
        assert seen


# ======================================================================
# The campaign
# ======================================================================
class TestRunFuzz:
    def test_clean_campaign_with_corpus_archive(self, tmp_path):
        corpus = tmp_path / "corpus"
        run = run_fuzz(2, seed=0, corpus_dir=str(corpus))
        assert run.checked == 2 and run.ok
        assert run.corpus_digest
        # every generated spec landed as a reloadable TOML twin
        for i in range(2):
            loaded = load_spec(corpus / f"fuzz-s0-i{i:04d}.toml")
            assert loaded == generate_spec(0, i)

    def test_render_is_byte_identical_across_reruns(self):
        first = run_fuzz(2, seed=0).render()
        second = run_fuzz(2, seed=0).render()
        assert first == second
        assert "2 spec(s) checked, 0 violating" in first

    def test_injected_mutation_is_caught_shrunk_and_archived(
            self, tmp_path):
        artifacts = tmp_path / "artifacts"
        with inject_tick_undershoot():
            run = run_fuzz(1, seed=0, ftp_bytes=8_000,
                           artifact_dir=str(artifacts), shrink_budget=3)
        assert not run.ok and len(run.findings) == 1
        finding = run.findings[0]
        assert any(v.monitor == "delay_bound"
                   for v in finding.violations)
        # the reproducer archive round-trips through load_spec
        reproducer = load_spec(finding.artifacts["reproducer"])
        reproducer.validate()
        report = json.loads(
            (artifacts / "fuzz-s0-i0000.report.json").read_text())
        assert report["violations"]
        assert report["generator"] == "repro.fuzz/v1 seed=0 index=0"
        assert "!! fuzz-s0-i0000" in run.render()


# ======================================================================
# The CLI tier
# ======================================================================
class TestFuzzCli:
    def test_stdout_byte_identical_across_runs(self, capsys):
        argv = ["fuzz", "--count", "1", "--seed", "0"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "1 spec(s) checked, 0 violating" in first

    def test_json_campaign_report(self, capsys):
        assert main(["fuzz", "--count", "1", "--seed", "0",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["checked"] == 1
        assert doc["corpus_digest"]
        assert doc["findings"] == []
