"""Tests for the packet-lifecycle tracer and the per-layer drop paths.

The satellite requirement: every previously orphaned drop counter
(queue overflow, device down, TCP no-conn, UDP no-port, the IP drops)
must be forced here and show up in the tracer's cause accounting, in
``Host.stats()``, and in the observability rollups.
"""

from types import SimpleNamespace

import pytest

from repro.hosts import Host
from repro.net.device import LoopbackDevice
from repro.net.packet import (
    IPHeader,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from repro.net.queue import DropTailQueue
from repro.obs import LifecycleTracer, ObsConfig, WorldObservability


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------
def test_event_records_span_with_sim_time(sim):
    tracer = LifecycleTracer(sim)
    pkt = Packet(payload_bytes=100)
    sim.schedule(2.0, lambda: tracer.event("laptop", "dev", "tx", pkt,
                                           device="lo0"))
    sim.run()
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span["t"] == pytest.approx(2.0)
    assert span["host"] == "laptop"
    assert span["layer"] == "dev"
    assert span["event"] == "tx"
    assert span["trace"] == 1
    assert span["pkt"] == pkt.packet_id
    assert span["device"] == "lo0"


def test_trace_id_shared_by_clones(sim):
    tracer = LifecycleTracer(sim)
    original = Packet(payload_bytes=10)
    tid = tracer.trace_id_for(original)
    clone = original.clone()
    assert clone.packet_id != original.packet_id
    assert tracer.trace_id_for(clone) == tid


def test_trace_id_inherited_by_fragments(sim):
    tracer = LifecycleTracer(sim)
    datagram = Packet(payload_bytes=4000)
    frag = Packet(payload_bytes=1480,
                  meta={"fragment": (1, 0, 3), "original": datagram})
    # The fragment is seen first: it must pull the id through the parent.
    tid = tracer.trace_id_for(frag)
    assert tracer.trace_id_for(datagram) == tid
    other = Packet(payload_bytes=10)
    assert tracer.trace_id_for(other) != tid


def test_span_limit_counts_overruns(sim):
    tracer = LifecycleTracer(sim, limit=2)
    pkt = Packet()
    for _ in range(5):
        tracer.event("h", "dev", "tx", pkt)
    assert len(tracer.spans) == 2
    assert tracer.dropped_spans == 3
    summary = tracer.summary()
    assert summary["spans_recorded"] == 2
    assert summary["spans_dropped"] == 3
    # Aggregated counts keep counting past the limit.
    assert summary["by_layer_event"]["dev.tx"] == 5


def test_drop_counts_causes_and_disabled_tracer_is_silent(sim):
    tracer = LifecycleTracer(sim)
    pkt = Packet()
    tracer.drop("h", "ip", pkt, "no_route", dst="10.9.9.9")
    tracer.drop("h", "ip", pkt, "no_route", dst="10.9.9.9")
    tracer.drop("h", "dev", pkt, "queue_full")
    assert tracer.drop_counts == {"no_route": 2, "queue_full": 1}
    assert tracer.spans[-1]["cause"] == "queue_full"
    tracer.enabled = False
    tracer.drop("h", "ip", pkt, "no_route")
    tracer.event("h", "ip", "send", pkt)
    assert tracer.drop_counts["no_route"] == 2
    assert len(tracer.spans) == 3


def test_spans_for_trace_filters_by_id(sim):
    tracer = LifecycleTracer(sim)
    a, b = Packet(), Packet()
    tracer.event("h", "ip", "send", a)
    tracer.event("h", "ip", "send", b)
    tracer.event("h", "dev", "tx", a)
    tid = a.meta["trace_id"]
    assert [s["layer"] for s in tracer.spans_for_trace(tid)] == ["ip", "dev"]


# ----------------------------------------------------------------------
# Forced drop paths, surfaced through Host.stats() and the rollups
# ----------------------------------------------------------------------
def _observed_host(sim, forwarding=False, default_route=True):
    """A single-host 'world' with full observability attached."""
    host = Host(sim, "laptop", "10.0.0.2", forwarding=forwarding)
    dev = LoopbackDevice(sim, "lo0")
    host.add_device(dev, default=default_route)
    world = SimpleNamespace(sim=sim, laptop=host, cross_hosts=())
    wobs = WorldObservability(world, ObsConfig(metrics=True, trace=True,
                                               spans=True))
    return host, dev, wobs


def test_queue_full_drop_path(sim):
    host, dev, wobs = _observed_host(sim)
    dev.queue = DropTailQueue(max_packets=0, name="lo0.txq")
    dev.send(Packet(payload_bytes=64))
    assert dev.tx_drops == 1
    assert dev.queue.dropped == 1
    assert wobs.tracer.drop_counts == {"queue_full": 1}
    stats = host.stats()
    assert stats["devices"][0]["tx_drops"] == 1
    assert stats["devices"][0]["queue"]["dropped"] == 1
    assert wobs.drop_rollup()["laptop.lo0.queue_full"] == 1


def test_device_down_drop_path(sim):
    host, dev, wobs = _observed_host(sim)
    dev.up = False
    dev.send(Packet(payload_bytes=64))
    dev.handle_receive(Packet(payload_bytes=64))
    assert dev.tx_drops == 1
    assert dev.rx_packets == 0
    assert wobs.tracer.drop_counts == {"device_down": 2}
    assert host.stats()["devices"][0]["tx_drops"] == 1


def test_tcp_no_conn_drop_path(sim):
    host, dev, wobs = _observed_host(sim)
    stray = Packet(ip=IPHeader(src="10.0.0.9", dst=host.address,
                               proto=PROTO_TCP),
                   tcp=TCPHeader(src_port=5555, dst_port=4444,
                                 flags=TCPHeader.ACK))
    host.tcp.input(stray)
    assert host.tcp.dropped_no_conn == 1
    assert wobs.tracer.drop_counts["no_conn"] == 1
    assert host.stats()["tcp"]["dropped_no_conn"] == 1
    assert wobs.drop_rollup()["laptop.tcp.no_conn"] == 1


def test_udp_no_port_drop_path(sim):
    host, dev, wobs = _observed_host(sim)
    stray = Packet(ip=IPHeader(src="10.0.0.9", dst=host.address,
                               proto=PROTO_UDP),
                   udp=UDPHeader(src_port=5555, dst_port=7))
    host.udp.input(stray)
    assert host.udp.dropped_no_port == 1
    assert wobs.tracer.drop_counts["no_port"] == 1
    assert host.stats()["udp"]["dropped_no_port"] == 1
    assert wobs.drop_rollup()["laptop.udp.no_port"] == 1


def test_ip_no_route_drop_path(sim):
    host, dev, wobs = _observed_host(sim, default_route=False)
    pkt = Packet(ip=IPHeader(src=host.address, dst="10.9.9.9",
                             proto=PROTO_UDP))
    host.ip.output(pkt)
    assert host.ip.dropped_no_route == 1
    assert wobs.tracer.drop_counts == {"no_route": 1}
    assert host.stats()["ip"]["dropped_no_route"] == 1
    assert wobs.drop_rollup()["laptop.ip.no_route"] == 1


def test_ip_not_mine_drop_path(sim):
    host, dev, wobs = _observed_host(sim)
    pkt = Packet(ip=IPHeader(src="10.0.0.9", dst="10.0.0.77",
                             proto=PROTO_UDP))
    host.ip.input(pkt)
    assert host.ip.dropped_not_mine == 1
    assert wobs.tracer.drop_counts == {"not_mine": 1}
    assert host.stats()["ip"]["dropped_not_mine"] == 1


def test_ip_ttl_drop_path_on_forwarder(sim):
    host, dev, wobs = _observed_host(sim, forwarding=True)
    pkt = Packet(ip=IPHeader(src="10.0.0.9", dst="10.0.0.77",
                             proto=PROTO_UDP, ttl=1))
    host.ip.input(pkt)
    assert host.ip.dropped_ttl == 1
    assert wobs.tracer.drop_counts == {"ttl": 1}
    assert host.stats()["ip"]["dropped_ttl"] == 1
    assert wobs.drop_rollup()["laptop.ip.ttl"] == 1


def test_reassembly_timeout_drop_path(sim):
    host, dev, wobs = _observed_host(sim)
    original = Packet(ip=IPHeader(src="10.0.0.9", dst=host.address,
                                  proto=PROTO_UDP),
                      payload_bytes=4000)
    frag = Packet(ip=IPHeader(src="10.0.0.9", dst=host.address,
                              proto=PROTO_UDP, ident=7),
                  payload_bytes=1480,
                  meta={"fragment": (7, 0, 3), "original": original})
    host.ip.input(frag)  # only 1 of 3 fragments ever arrives
    assert host.ip.reassembler.pending == 1
    sim.run(until=31.0)
    assert host.ip.reassembler.timed_out == 1
    assert host.ip.reassembler.pending == 0
    assert wobs.tracer.drop_counts == {"reassembly_timeout": 1}
    assert host.stats()["ip"]["reassembly_timeouts"] == 1
    assert wobs.drop_rollup()["laptop.ip.reassembly_timeout"] == 1


def test_registry_collectors_surface_host_counters(sim):
    host, dev, wobs = _observed_host(sim, default_route=False)
    host.ip.output(Packet(ip=IPHeader(src=host.address, dst="10.9.9.9",
                                      proto=PROTO_UDP)))
    collected = wobs.registry.snapshot()["collected"]
    assert collected["laptop.ip.dropped_no_route"] == 1
    assert "laptop.kernel.callouts_fired" in collected
    assert "engine.events_scheduled" in collected


def test_record_has_hosts_drops_trace_sections(sim):
    host, dev, wobs = _observed_host(sim)
    dev.send(Packet(payload_bytes=64))
    sim.run()
    record = wobs.record(kind="unit", trial=0)
    assert record["kind"] == "unit"
    assert record["hosts"]["laptop"]["devices"][0]["tx_packets"] == 1
    assert "laptop.lo0.queue_full" in record["drops"]
    assert record["trace"]["by_layer_event"]["dev.tx"] == 1
    assert record["spans"], "spans requested but missing"
    assert record["engine"]["events_fired"] >= 1
