"""Unit tests for trace distillation (§3.2).

The key tests build *synthetic* packet records from known model
parameters and check that the distiller recovers them exactly — the
algebra of Eqs. 5-10 — plus the correction and windowing behaviour.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distill import Distiller, ParameterEstimate
from repro.core.traceformat import DIR_IN, DIR_OUT, PacketRecord

S1 = 88    # small probe IP size
S2 = 1428  # large probe IP size


def _group_records(base_time, group, F, Vb, Vr, sizes=(S1, S2),
                   drop=()):
    """Synthesize one ping group's records under the model.

    RTTs follow Eqs. 5-8 exactly:
        t1 = 2 (F + s1 V);  t2 = 2 (F + s2 V);  t3 = t2 + s2 Vb
    """
    s1, s2 = sizes
    V = Vb + Vr
    t1 = 2 * (F + s1 * V)
    t2 = 2 * (F + s2 * V)
    t3 = t2 + s2 * Vb
    records = []
    seqs = (3 * group, 3 * group + 1, 3 * group + 2)
    rtts = (t1, t2, t3)
    probe_sizes = (s1, s2, s2)
    for seq, size in zip(seqs, probe_sizes):
        records.append(PacketRecord(
            timestamp=base_time, direction=DIR_OUT, proto=1, size=size,
            icmp_type=8, ident=1, seq=seq))
    for i, (seq, rtt, size) in enumerate(zip(seqs, rtts, probe_sizes)):
        if seq in drop:
            continue
        records.append(PacketRecord(
            timestamp=base_time + rtt, direction=DIR_IN, proto=1, size=size,
            icmp_type=0, ident=1, seq=seq, rtt=rtt))
    return records


def _trace(F=2e-3, Vb=5e-6, Vr=1e-6, groups=30, drop=()):
    records = []
    for g in range(groups):
        records.extend(_group_records(float(g), g, F, Vb, Vr, drop=drop))
    return records


# ----------------------------------------------------------------------
# Parameter recovery
# ----------------------------------------------------------------------
def test_exact_recovery_of_model_parameters():
    result = Distiller().distill(_trace(F=2e-3, Vb=5e-6, Vr=1e-6))
    tup = result.replay.tuples[10]
    assert tup.F == pytest.approx(2e-3, rel=1e-6)
    assert tup.Vb == pytest.approx(5e-6, rel=1e-6)
    assert tup.Vr == pytest.approx(1e-6, rel=1e-6)
    assert tup.L == 0.0


def test_all_groups_used_when_clean():
    result = Distiller().distill(_trace(groups=20))
    assert result.groups_used == 20
    assert result.groups_corrected == 0
    assert result.groups_skipped == 0


def test_zero_residual_cost_recovered():
    result = Distiller().distill(_trace(Vb=6e-6, Vr=0.0))
    assert result.replay.tuples[5].Vr == pytest.approx(0.0, abs=1e-12)


def test_replay_duration_covers_trace():
    result = Distiller().distill(_trace(groups=30))
    assert result.replay.duration >= 29.0


@settings(deadline=None, max_examples=30)
@given(st.floats(min_value=1e-4, max_value=0.2),
       st.floats(min_value=5e-7, max_value=5e-5),
       st.floats(min_value=0.0, max_value=2e-5))
def test_recovery_for_arbitrary_true_parameters(F, Vb, Vr):
    """Property: noiseless observations invert exactly (Eqs. 5-8)."""
    result = Distiller().distill(_trace(F=F, Vb=Vb, Vr=Vr, groups=12))
    tup = result.replay.tuples[6]
    assert tup.F == pytest.approx(F, rel=1e-5, abs=1e-9)
    assert tup.Vb == pytest.approx(Vb, rel=1e-5)
    assert tup.Vr == pytest.approx(Vr, rel=1e-5, abs=1e-10)


# ----------------------------------------------------------------------
# Negative-parameter correction
# ----------------------------------------------------------------------
def _inconsistent_group(base_time, group, F, Vb, Vr, t1_extra):
    """A group whose small probe saw extra delay (media access burst)."""
    records = _group_records(base_time, group, F, Vb, Vr)
    # Inflate t1 only: solving now yields V < 0 -> correction path.
    for rec in records:
        if rec.direction == DIR_IN and rec.seq == 3 * group:
            rec.rtt += t1_extra
            rec.timestamp += t1_extra
    return records


def test_inconsistent_group_triggers_correction():
    records = []
    for g in range(5):
        records.extend(_group_records(float(g), g, 2e-3, 5e-6, 1e-6))
    records.extend(_inconsistent_group(5.0, 5, 2e-3, 5e-6, 1e-6, t1_extra=0.05))
    result = Distiller().distill(records)
    assert result.groups_corrected == 1
    assert result.groups_used == 6


def test_correction_reuses_previous_per_byte_costs():
    records = []
    for g in range(5):
        records.extend(_group_records(float(g), g, 2e-3, 5e-6, 1e-6))
    records.extend(_inconsistent_group(5.0, 5, 2e-3, 5e-6, 1e-6, t1_extra=0.05))
    result = Distiller(window_width=0.5, step=1.0).distill(records)
    corrected = [e for e in result.estimates if e.corrected]
    assert len(corrected) == 1
    est = corrected[0]
    assert est.Vb == pytest.approx(5e-6, rel=1e-6)
    assert est.Vr == pytest.approx(1e-6, rel=1e-6)
    # The whole deviation lands in latency.
    assert est.F == pytest.approx(2e-3 + 0.025, rel=1e-3)


def test_correction_does_not_cascade():
    """A corrected estimate must not seed later corrections (§3.2.2)."""
    records = []
    records.extend(_group_records(0.0, 0, 2e-3, 5e-6, 1e-6))
    records.extend(_inconsistent_group(1.0, 1, 2e-3, 5e-6, 1e-6, 0.05))
    records.extend(_inconsistent_group(2.0, 2, 2e-3, 5e-6, 1e-6, 0.08))
    result = Distiller().distill(records)
    corrected = [e for e in result.estimates if e.corrected]
    # Both corrections reference group 0's genuine estimate, so both
    # report its Vb exactly.
    assert all(e.Vb == pytest.approx(5e-6, rel=1e-6) for e in corrected)
    # F corrections are anchored to group 0, not to each other.
    assert corrected[1].F == pytest.approx(2e-3 + 0.04, rel=1e-3)


def test_leading_bad_group_is_skipped():
    records = list(_inconsistent_group(0.0, 0, 2e-3, 5e-6, 1e-6, 0.05))
    records.extend(_group_records(1.0, 1, 2e-3, 5e-6, 1e-6))
    result = Distiller().distill(records)
    assert result.groups_skipped == 1
    assert result.groups_used == 1


# ----------------------------------------------------------------------
# Incomplete groups and loss
# ----------------------------------------------------------------------
def test_group_with_missing_reply_skipped_for_delay():
    records = _trace(groups=10, drop={7})  # drop one large reply
    result = Distiller().distill(records)
    assert result.groups_skipped == 1


def test_loss_estimate_zero_when_all_replies_arrive():
    result = Distiller().distill(_trace(groups=20))
    assert result.replay.mean_loss() == 0.0


def test_loss_estimate_follows_equation_10():
    # Drop every reply of groups 8..11 (12 echoes lost of those sent).
    drop = set()
    for g in range(8, 12):
        drop.update({3 * g, 3 * g + 1, 3 * g + 2})
    records = _trace(groups=30, drop=drop)
    result = Distiller().distill(records)
    peak = max(t.L for t in result.replay)
    # Inside the outage the loss estimate must rise sharply; the span
    # extension to adjacent replies mixes in a few answered echoes, so
    # the peak sits below 1 but far above background.
    assert peak > 0.35
    # Windows fully outside the outage see no loss at all.
    assert result.replay.tuples[2].L == 0.0


def test_overall_loss_estimate_property():
    drop = {3 * g for g in range(10)}  # lose 10 small replies of 90 echoes
    records = _trace(groups=30, drop=drop)
    result = Distiller().distill(records)
    expected = 1.0 - math.sqrt(1.0 - 10 / 90)
    assert result.overall_loss_estimate == pytest.approx(expected, rel=1e-6)


# ----------------------------------------------------------------------
# Windowing
# ----------------------------------------------------------------------
def test_window_averages_step_changes():
    records = []
    for g in range(10):
        records.extend(_group_records(float(g), g, 1e-3, 4e-6, 1e-6))
    for g in range(10, 20):
        records.extend(_group_records(float(g), g, 9e-3, 4e-6, 1e-6))
    result = Distiller(window_width=5.0, step=1.0).distill(records)
    early = result.replay.tuples[2].F
    late = result.replay.tuples[17].F
    middle = result.replay.tuple_at(10.0).F
    assert early == pytest.approx(1e-3, rel=1e-3)
    assert late == pytest.approx(9e-3, rel=1e-3)
    assert early < middle < late  # the window straddles the step


def test_gap_in_estimates_holds_previous_tuple():
    records = []
    for g in list(range(5)) + list(range(15, 20)):
        records.extend(_group_records(float(g), g, 2e-3, 5e-6, 1e-6))
    result = Distiller().distill(records)
    mid = result.replay.tuple_at(10.0)
    assert mid.F == pytest.approx(2e-3, rel=1e-3)


def test_tuple_step_matches_distiller_step():
    result = Distiller(step=2.0).distill(_trace(groups=10))
    assert all(t.d == 2.0 for t in result.replay)


def test_custom_ident_filter():
    records = _trace(groups=5)
    other = _trace(groups=5)
    for rec in other:
        rec.ident = 99
        rec.rtt = rec.rtt * 10 if rec.rtt > 0 else rec.rtt
    result = Distiller(ident=1).distill(records + other)
    assert result.groups_used == 5


# ----------------------------------------------------------------------
# Error handling
# ----------------------------------------------------------------------
def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        Distiller().distill([])


def test_single_probe_size_rejected():
    records = [r for r in _trace(groups=5) if r.size == S1]
    with pytest.raises(ValueError):
        Distiller().distill(records)


def test_invalid_window_parameters():
    with pytest.raises(ValueError):
        Distiller(window_width=0.0)
    with pytest.raises(ValueError):
        Distiller(step=-1.0)


def test_status_records_passed_through():
    from repro.core.traceformat import DeviceStatusRecord

    records = _trace(groups=5)
    records.append(DeviceStatusRecord(2.0, 15.0, 10.0, 3.0))
    result = Distiller().distill(records)
    assert len(result.status_records) == 1
