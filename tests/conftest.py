"""Shared test helpers: small worlds, profiles, trace builders."""

from __future__ import annotations

import pytest

from repro.hosts import LiveWorld, ModulationWorld, SERVER_ADDR
from repro.net.wavelan import ChannelConditions, ChannelProfile
from repro.sim import Simulator


class ConstantProfile(ChannelProfile):
    """A time-invariant channel for controlled experiments."""

    def __init__(self, signal=20.0, loss_up=0.0, loss_down=0.0,
                 bandwidth_factor=0.8, access_latency=0.0005):
        self._cond = ChannelConditions(
            signal_level=signal,
            loss_prob_up=loss_up,
            loss_prob_down=loss_down,
            bandwidth_factor=bandwidth_factor,
            access_latency_mean=access_latency,
        )

    def conditions(self, t):
        return self._cond


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def live_world():
    return LiveWorld(profile=ConstantProfile(), seed=7)


@pytest.fixture
def mod_world():
    return ModulationWorld(seed=7)


def run_to_completion(world, proc, cap=600.0, chunk=10.0):
    """Advance the world until the process finishes; raise its error."""
    t = world.sim.now
    while proc.alive and t < cap:
        t += chunk
        world.run(until=t)
    if proc.error is not None:
        raise proc.error
    assert not proc.alive, f"process still alive after {cap}s"
    return proc.value
