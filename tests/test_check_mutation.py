"""Mutation smoke test: the monitors must catch an injected bug.

A monitor suite that never fires is indistinguishable from one that
checks nothing.  This test injects the canonical §5.4 regression — the
kernel's nearest-tick rounding landing one full tick early — into a
modulated trial and requires at least one monitor to flag it, while the
identical un-mutated trial stays clean.  CI runs the same experiment
via ``repro check --smoke --mutate-tick``.
"""

from __future__ import annotations

import pytest

from repro.check import (CheckContext, inject_tick_undershoot,
                         run_monitors)
from repro.check.golden import DEFAULT_GOLDEN_DIR
from repro.core.replay import ReplayTrace
from repro.obs import ObsConfig
from repro.validation.harness import (FtpRunner, compensation_vb,
                                      run_modulated_trial)

pytestmark = pytest.mark.check


@pytest.fixture(scope="module")
def wean_replay():
    return ReplayTrace.load(str(DEFAULT_GOLDEN_DIR / "wean.replay.json"))


def _modulated_ctx(replay):
    out = {}
    runner = FtpRunner(nbytes=50_000, direction="send")
    run_modulated_trial(replay, runner, seed=0, trial=0,
                        compensation_vb=compensation_vb(),
                        obs=ObsConfig(metrics=True, trace=True, spans=True),
                        world_out=out)
    return CheckContext(kind="modulated", world=out["world"],
                        obs=out["obs"], layer=out["layer"], replay=replay)


def test_clean_trial_has_no_violations(wean_replay):
    assert run_monitors(_modulated_ctx(wean_replay)) == []


def test_tick_undershoot_is_caught(wean_replay):
    with inject_tick_undershoot():
        violations = run_monitors(_modulated_ctx(wean_replay))
    assert violations, "injected one-tick undershoot went undetected"
    flagged = {(v.monitor, v.invariant) for v in violations}
    # The quantitative §5.4 bound is the monitor that must catch it.
    assert ("delay_bound", "under_delay") in flagged
    # Releases still land on the grid: alignment itself must stay green.
    assert ("tick", "off_grid_release") not in flagged


def test_undershoot_violations_carry_trace_ids(wean_replay):
    with inject_tick_undershoot():
        violations = run_monitors(_modulated_ctx(wean_replay))
    under = [v for v in violations
             if v.invariant == "under_delay"]
    assert under and all(v.trace is not None for v in under)
    assert all(v.details["intended"] - v.details["applied"] ==
               pytest.approx(v.details["under"]) for v in under)


def test_two_tick_undershoot_also_caught(wean_replay):
    with inject_tick_undershoot(ticks=2):
        violations = run_monitors(_modulated_ctx(wean_replay))
    assert any(v.invariant == "under_delay" for v in violations)
