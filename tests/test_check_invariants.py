"""Unit tests for the repro.check invariant monitors.

Each monitor is exercised both ways: a freshly built (or cleanly run)
world must produce zero violations, and a deliberately corrupted ledger
must produce exactly the violation the corruption implies — a monitor
that cannot fail guards nothing.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.check import (
    CheckContext,
    ClockSanityMonitor,
    DelayBoundMonitor,
    FifoOrderMonitor,
    InvariantViolation,
    PacketConservationMonitor,
    TcpSanityMonitor,
    TickAlignmentMonitor,
    WellFormednessMonitor,
    run_monitors,
)
from repro.core.replay import QualityTuple, ReplayTrace
from repro.core.traceformat import (DeviceStatusRecord, LostRecordsRecord,
                                    PacketRecord)
from repro.obs import ObsConfig, attach_observability

pytestmark = pytest.mark.check


# ----------------------------------------------------------------------
# InvariantViolation structure
# ----------------------------------------------------------------------
def test_violation_is_structured():
    v = InvariantViolation("conservation", "queue_balance",
                           "numbers disagree", trace=17, got=3, want=4)
    assert isinstance(v, Exception)
    assert "conservation.queue_balance" in str(v)
    d = v.as_dict()
    assert d["monitor"] == "conservation"
    assert d["invariant"] == "queue_balance"
    assert d["trace"] == 17
    assert d["details"] == {"got": 3, "want": 4}


def test_violation_without_trace_id_omits_it():
    d = InvariantViolation("m", "i", "msg").as_dict()
    assert "trace" not in d and "details" not in d


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------
def _observed(world):
    return attach_observability(world, ObsConfig(metrics=False, trace=True))


def test_fresh_world_has_no_violations(mod_world):
    obs = _observed(mod_world)
    ctx = CheckContext(kind="test", world=mod_world, obs=obs)
    assert run_monitors(ctx) == []


def test_queue_imbalance_detected(mod_world):
    mod_world.laptop.devices[0].queue.enqueued += 1
    ctx = CheckContext(kind="test", world=mod_world)
    violations = PacketConservationMonitor().check(ctx)
    assert [v.invariant for v in violations] == ["queue_balance"]
    assert violations[0].details["host"] == mod_world.laptop.name


def test_tx_dequeue_mismatch_detected(mod_world):
    mod_world.server.devices[0].tx_packets += 2
    violations = PacketConservationMonitor().check(
        CheckContext(kind="test", world=mod_world))
    assert [v.invariant for v in violations] == ["tx_equals_dequeued"]


def test_unaccounted_traced_drop_detected(mod_world):
    obs = _observed(mod_world)
    # A tracer that counted a demux drop no protocol counter backs up.
    obs.tracer.drop_counts["no_conn"] = 1
    violations = PacketConservationMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs))
    assert [v.invariant for v in violations] == ["tcp_demux_drops"]


def test_device_span_imbalance_detected(mod_world):
    obs = _observed(mod_world)
    obs.tracer.span_counts[("dev", "enqueue")] = 5
    obs.tracer.span_counts[("dev", "tx")] = 4
    violations = PacketConservationMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs))
    assert [v.invariant for v in violations] == ["device_balance"]


def test_live_world_medium_accounting(live_world):
    obs = _observed(live_world)
    ctx = CheckContext(kind="test", world=live_world, obs=obs)
    assert PacketConservationMonitor().check(ctx) == []
    live_world.medium.frames_lost += 1  # lost frame the tracer never saw
    violations = PacketConservationMonitor().check(ctx)
    assert "channel_loss_drops" in [v.invariant for v in violations]


# ----------------------------------------------------------------------
# Clock sanity
# ----------------------------------------------------------------------
def test_engine_accounting_balances(mod_world):
    mod_world.run(until=1.0)
    ctx = CheckContext(kind="test", world=mod_world)
    assert ClockSanityMonitor().check(ctx) == []


def test_nonmonotone_spans_detected(mod_world):
    obs = _observed(mod_world)
    mod_world.run(until=3.0)  # keep the crafted spans in the past
    obs.tracer.spans.extend([
        {"t": 2.0, "host": "h", "layer": "dev", "event": "tx", "trace": 1,
         "pkt": 1, "size": 100},
        {"t": 1.0, "host": "h", "layer": "dev", "event": "rx", "trace": 2,
         "pkt": 2, "size": 100},
    ])
    violations = ClockSanityMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs))
    assert [v.invariant for v in violations] == ["span_monotonicity"]
    assert violations[0].trace == 2


def test_span_beyond_now_detected(mod_world):
    obs = _observed(mod_world)
    obs.tracer.spans.append(
        {"t": 99.0, "host": "h", "layer": "dev", "event": "tx", "trace": 1,
         "pkt": 1, "size": 100})
    violations = ClockSanityMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs))
    assert [v.invariant for v in violations] == ["span_in_past"]


# ----------------------------------------------------------------------
# Tick alignment and delay bound (crafted mod.delay spans)
# ----------------------------------------------------------------------
def _mod_span(t, intended, applied, trace=1):
    return {"t": t, "host": "laptop", "layer": "mod", "event": "delay",
            "trace": trace, "pkt": trace, "size": 100,
            "inbound": False, "intended": intended, "applied": applied}


def _fake_layer(host):
    return SimpleNamespace(host=host, audit=None,
                           feed=SimpleNamespace(tuples_written=0,
                                                tuples_consumed=0,
                                                capacity=64, free_slots=64),
                           out_packets=0, in_packets=0,
                           sent_immediately=0)


def test_on_grid_release_passes(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    # Release at t=0.013 + 0.017 = 0.030: on the 10 ms grid.
    obs.tracer.spans.append(_mod_span(0.013, 0.0172, 0.017))
    obs.tracer.span_counts[("mod", "delay")] = 1
    mod_world.laptop.kernel.rounded_callouts = 1
    ctx = CheckContext(kind="test", world=mod_world, obs=obs, layer=layer)
    assert TickAlignmentMonitor().check(ctx) == []
    assert DelayBoundMonitor().check(ctx) == []


def test_off_grid_release_detected(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    obs.tracer.spans.append(_mod_span(0.013, 0.021, 0.021))
    obs.tracer.span_counts[("mod", "delay")] = 1
    mod_world.laptop.kernel.rounded_callouts = 1
    violations = TickAlignmentMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs, layer=layer))
    assert [v.invariant for v in violations] == ["off_grid_release"]
    assert violations[0].trace == 1


def test_callout_count_mismatch_detected(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    obs.tracer.span_counts[("mod", "delay")] = 3
    violations = TickAlignmentMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs, layer=layer))
    assert [v.invariant for v in violations] == ["callout_accounting"]


def test_under_delay_beyond_one_tick_detected(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    # 25 ms intended, released after 10 ms: 15 ms under — over a tick.
    obs.tracer.spans.append(_mod_span(0.010, 0.025, 0.010))
    violations = DelayBoundMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs, layer=layer))
    assert [v.invariant for v in violations] == ["under_delay"]


def test_half_tick_under_delay_allowed(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    # The legitimate §5.4 artifact: just under half a tick unaccounted.
    obs.tracer.spans.append(_mod_span(0.010, 0.0049, 0.0))
    obs.tracer.spans.append(_mod_span(0.020, 0.0251, 0.020))
    assert DelayBoundMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs,
                     layer=layer)) == []


# ----------------------------------------------------------------------
# FIFO ordering
# ----------------------------------------------------------------------
def _dev_span(t, event, pkt):
    return {"t": t, "host": "laptop", "layer": "dev", "event": event,
            "trace": pkt, "pkt": pkt, "size": 100, "device": "eth0"}


def test_fifo_queue_order_passes(mod_world):
    obs = _observed(mod_world)
    obs.tracer.spans.extend([
        _dev_span(0.0, "enqueue", 1), _dev_span(0.1, "enqueue", 2),
        _dev_span(0.2, "tx", 1), _dev_span(0.3, "tx", 2),
    ])
    assert FifoOrderMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs)) == []


def test_fifo_queue_reorder_detected(mod_world):
    obs = _observed(mod_world)
    obs.tracer.spans.extend([
        _dev_span(0.0, "enqueue", 1), _dev_span(0.1, "enqueue", 2),
        _dev_span(0.2, "tx", 2), _dev_span(0.3, "tx", 1),
    ])
    violations = FifoOrderMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs))
    assert [v.invariant for v in violations] == ["queue_order"]


def test_feed_overconsumption_detected(mod_world):
    layer = _fake_layer(mod_world.laptop)
    layer.feed = SimpleNamespace(tuples_written=3, tuples_consumed=5,
                                 capacity=64, free_slots=64)
    violations = FifoOrderMonitor().check(
        CheckContext(kind="test", world=mod_world, layer=layer))
    assert "feed_balance" in [v.invariant for v in violations]


# ----------------------------------------------------------------------
# Tick alignment judges the *intended* delay (nearest-tick rounding may
# legally land the release up to half a tick before the intended one)
# ----------------------------------------------------------------------
def test_sub_half_tick_intended_but_rounded_detected(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    # 4 ms intended should have been sent immediately; scheduling it a
    # full (on-grid) tick out is the bug this invariant exists for.
    obs.tracer.spans.append(_mod_span(0.010, 0.004, 0.010))
    obs.tracer.span_counts[("mod", "delay")] = 1
    mod_world.laptop.kernel.rounded_callouts = 1
    violations = TickAlignmentMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs, layer=layer))
    assert [v.invariant for v in violations] == ["sub_half_tick_rounded"]
    assert violations[0].details["intended"] == 0.004


def test_applied_below_half_tick_alone_is_legal(mod_world):
    obs = _observed(mod_world)
    layer = _fake_layer(mod_world.laptop)
    # 5.2 ms intended from t=4.8 ms rounds to the 10 ms tick: the
    # applied delay (4.8 ms) dips under half a tick, which is fine —
    # the immediate-vs-rounded policy is judged on the intended delay.
    obs.tracer.spans.append(_mod_span(0.0052, 0.0052, 0.0048))
    obs.tracer.span_counts[("mod", "delay")] = 1
    mod_world.laptop.kernel.rounded_callouts = 1
    assert TickAlignmentMonitor().check(
        CheckContext(kind="test", world=mod_world, obs=obs,
                     layer=layer)) == []


# ----------------------------------------------------------------------
# Medium delivery counts the radios' own rx counters (the WavePoint
# bridge's radio has no tracer scope, so spans would miss its uplinks)
# ----------------------------------------------------------------------
def test_untraced_radio_delivery_balances(live_world):
    obs = _observed(live_world)
    medium = live_world.medium
    medium.frames_carried += 1
    medium.devices[0].rx_packets += 1   # delivered, but never traced
    assert PacketConservationMonitor().check(
        CheckContext(kind="test", world=live_world, obs=obs)) == []


def test_vanished_medium_frame_detected(live_world):
    obs = _observed(live_world)
    live_world.medium.frames_carried += 1   # carried, never delivered
    violations = PacketConservationMonitor().check(
        CheckContext(kind="test", world=live_world, obs=obs))
    assert "medium_delivery" in [v.invariant for v in violations]


# ----------------------------------------------------------------------
# Loop-aware replay-feed ordering
# ----------------------------------------------------------------------
def _tuple_key(tup):
    return (tup.d, tup.F, tup.Vb, tup.Vr, tup.L)


def _feed_ctx(host, replay, enforced, consumed):
    layer = _fake_layer(host)
    layer.feed = SimpleNamespace(tuples_written=consumed,
                                 tuples_consumed=consumed,
                                 capacity=64, free_slots=64)
    layer.audit = SimpleNamespace(enforced_order=lambda: list(enforced))
    return CheckContext(kind="test", layer=layer, replay=replay)


@pytest.fixture
def quality_trace():
    return ReplayTrace([
        QualityTuple(d=0.010, F=0.01, Vb=1e-5, Vr=1e-6, L=0.01),
        QualityTuple(d=0.020, F=0.02, Vb=2e-5, Vr=2e-6, L=0.02),
        QualityTuple(d=0.030, F=0.03, Vb=3e-5, Vr=3e-6, L=0.03),
    ], name="loop")


def test_feed_order_in_trace_order_passes(mod_world, quality_trace):
    keys = [_tuple_key(t) for t in quality_trace.tuples]
    ctx = _feed_ctx(mod_world.laptop, quality_trace, keys, consumed=3)
    assert FifoOrderMonitor().check(ctx) == []


def test_feed_order_wraps_with_each_replay_pass(mod_world, quality_trace):
    # 5 tuples consumed of a 3-tuple trace: two passes, one legal wrap.
    keys = [_tuple_key(t) for t in quality_trace.tuples]
    ctx = _feed_ctx(mod_world.laptop, quality_trace,
                    keys + keys[:2], consumed=5)
    assert FifoOrderMonitor().check(ctx) == []


def test_feed_order_wrap_beyond_passes_detected(mod_world, quality_trace):
    # Out-of-order enforcement within a single pass needs two greedy
    # passes to explain — but only one pass worth of tuples was read.
    k0, k1, k2 = (_tuple_key(t) for t in quality_trace.tuples)
    ctx = _feed_ctx(mod_world.laptop, quality_trace,
                    [k1, k0, k2], consumed=3)
    violations = FifoOrderMonitor().check(ctx)
    assert [v.invariant for v in violations] == ["feed_order"]
    assert violations[0].details["runs"] == 2
    assert violations[0].details["passes"] == 1


def test_feed_order_unknown_tuple_detected(mod_world, quality_trace):
    stranger = (0.9, 0.9, 9e-5, 9e-6, 0.09)   # a key the trace lacks
    ctx = _feed_ctx(mod_world.laptop, quality_trace, [stranger],
                    consumed=1)
    violations = FifoOrderMonitor().check(ctx)
    assert [v.invariant for v in violations] == ["feed_order"]
    assert "never appear" in violations[0].message


def test_feed_order_duplicate_keys_no_false_positive(mod_world):
    # Trace [a, b, a, c]: enforcing [b, a, c] is a single in-order walk
    # when the matcher is occurrence-aware (b@1, a@2, c@3) — naive
    # first-occurrence matching would misread a@0 as a wrap.
    a = QualityTuple(d=0.010, F=0.01, Vb=1e-5, Vr=1e-6, L=0.01)
    b = QualityTuple(d=0.020, F=0.02, Vb=2e-5, Vr=2e-6, L=0.02)
    c = QualityTuple(d=0.030, F=0.03, Vb=3e-5, Vr=3e-6, L=0.03)
    replay = ReplayTrace([a, b, a, c], name="dups")
    ctx = _feed_ctx(mod_world.laptop, replay,
                    [_tuple_key(b), _tuple_key(a), _tuple_key(c)],
                    consumed=3)
    assert FifoOrderMonitor().check(ctx) == []


# ----------------------------------------------------------------------
# TCP sanity
# ----------------------------------------------------------------------
def test_tcp_sequence_inversion_detected(mod_world):
    conn = SimpleNamespace(snd_una=100, snd_nxt=50, snd_max=100,
                           rcv_nxt=0)
    mod_world.laptop.tcp._conns[(1234, "10.1.0.1", 21)] = conn
    violations = TcpSanityMonitor().check(
        CheckContext(kind="test", world=mod_world))
    assert [v.invariant for v in violations] == ["send_sequence"]


def test_tcp_healthy_connection_passes(mod_world):
    conn = SimpleNamespace(snd_una=50, snd_nxt=75, snd_max=100,
                           rcv_nxt=10)
    mod_world.laptop.tcp._conns[(1234, "10.1.0.1", 21)] = conn
    assert TcpSanityMonitor().check(
        CheckContext(kind="test", world=mod_world)) == []


# ----------------------------------------------------------------------
# Well-formedness
# ----------------------------------------------------------------------
def test_valid_replay_passes():
    replay = ReplayTrace([QualityTuple(d=1.0, F=0.01, Vb=1e-5, Vr=1e-6,
                                       L=0.05)] * 3, name="ok")
    assert WellFormednessMonitor().check(
        CheckContext(kind="test", replay=replay)) == []


def test_nonfinite_tuple_detected():
    replay = ReplayTrace([QualityTuple(d=1.0, F=math.nan, Vb=1e-5,
                                       Vr=0.0, L=0.0)])
    violations = WellFormednessMonitor().check(
        CheckContext(kind="test", replay=replay))
    assert [v.invariant for v in violations] == ["tuple_finite"]


def test_negative_cost_tuple_detected():
    replay = ReplayTrace([QualityTuple(d=1.0, F=-0.01, Vb=1e-5, Vr=0.0,
                                       L=0.0)])
    violations = WellFormednessMonitor().check(
        CheckContext(kind="test", replay=replay))
    assert [v.invariant for v in violations] == ["tuple_negative_cost"]


def test_record_stream_well_formed():
    records = [
        PacketRecord(timestamp=0.0, direction=1, proto=1, size=120),
        DeviceStatusRecord(timestamp=0.5, signal_level=20.0,
                           signal_quality=10.0, silence_level=2.0),
        PacketRecord(timestamp=1.0, direction=0, proto=1, size=120,
                     rtt=0.04),
        LostRecordsRecord(timestamp=1.5, record_type="packet", count=3),
    ]
    assert WellFormednessMonitor().check(
        CheckContext(kind="test", records=records)) == []


def test_record_timestamp_regression_detected():
    records = [
        PacketRecord(timestamp=2.0, direction=1, proto=1, size=120),
        PacketRecord(timestamp=1.0, direction=1, proto=1, size=120),
    ]
    violations = WellFormednessMonitor().check(
        CheckContext(kind="test", records=records))
    assert [v.invariant for v in violations] == ["record_order"]


def test_bad_record_fields_detected():
    records = [
        PacketRecord(timestamp=0.0, direction=7, proto=1, size=0),
        object(),
    ]
    invariants = {v.invariant for v in WellFormednessMonitor().check(
        CheckContext(kind="test", records=records))}
    assert invariants == {"record_size", "record_direction", "record_type"}
