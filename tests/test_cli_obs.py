"""CLI observability tests: --json modes, `repro trace`, --metrics-out.

The expensive end-to-end cases (one traced trial, one instrumented
validation sweep) double as the acceptance checks: the Chrome trace
must validate against the schema, the metrics JSONL must carry one
record per trial, and the validation tables must be byte-identical to
an uninstrumented run.
"""

import json

import pytest

from repro.analysis import analyze_trace
from repro.cli import main
from repro.core import ReplayTrace, save_trace
from repro.core.replay import QualityTuple
from repro.core.traceformat import (
    DIR_IN,
    DIR_OUT,
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
)
from repro.net.packet import PROTO_ICMP, PROTO_TCP
from repro.obs import read_jsonl, validate_chrome_trace


# ----------------------------------------------------------------------
# repro info --json
# ----------------------------------------------------------------------
def test_info_json_round_trips(tmp_path, capsys):
    replay = ReplayTrace([
        QualityTuple(d=2.0, F=5e-3, Vb=5e-6, Vr=1e-6, L=0.0),
        QualityTuple(d=3.0, F=50e-3, Vb=40e-6, Vr=2e-6, L=0.1),
    ], name="two-phase")
    path = str(tmp_path / "replay.json")
    replay.save(path)
    assert main(["info", path, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["name"] == "two-phase"
    assert doc["duration"] == pytest.approx(5.0)
    assert doc["summary"]["count"] == 2
    assert doc["summary"]["mean_loss"] == pytest.approx(replay.mean_loss())
    # The document itself must parse back into an identical trace.
    rebuilt = ReplayTrace.from_json(json.dumps(doc))
    assert rebuilt.tuples == replay.tuples
    assert rebuilt.name == replay.name


def test_info_plain_output_unchanged_by_json_flag(tmp_path, capsys):
    replay = ReplayTrace([QualityTuple(d=1.0, F=0.01, Vb=1e-5,
                                       Vr=1e-6, L=0.0)], name="x")
    path = str(tmp_path / "replay.json")
    replay.save(path)
    assert main(["info", path]) == 0
    out = capsys.readouterr().out
    assert "replay trace 'x'" in out
    with pytest.raises(json.JSONDecodeError):
        json.loads(out)


# ----------------------------------------------------------------------
# repro analyze --json
# ----------------------------------------------------------------------
def _synthetic_records():
    return [
        PacketRecord(timestamp=0.0, direction=DIR_OUT, proto=PROTO_ICMP,
                     size=84, icmp_type=8, ident=1, seq=0),
        PacketRecord(timestamp=0.05, direction=DIR_IN, proto=PROTO_ICMP,
                     size=84, icmp_type=0, ident=1, seq=0, rtt=0.05),
        PacketRecord(timestamp=0.2, direction=DIR_OUT, proto=PROTO_TCP,
                     size=1500, src_port=1024, dst_port=21),
        DeviceStatusRecord(timestamp=0.5, signal_level=20.0,
                           signal_quality=10.0, silence_level=3.0),
        LostRecordsRecord(timestamp=0.9, record_type="packet", count=2),
    ]


def test_analyze_json_matches_as_dict(tmp_path, capsys):
    records = _synthetic_records()
    path = str(tmp_path / "run.trace")
    save_trace(path, records)
    assert main(["analyze", path, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == analyze_trace(records).as_dict()
    assert doc["total_packets"] == 3
    assert doc["by_protocol"]["icmp"]["packets_out"] == 1
    assert doc["rtt"]["mean"] == pytest.approx(0.05)
    assert doc["records_lost"] == 2


def test_analyze_json_with_filter(tmp_path, capsys):
    path = str(tmp_path / "run.trace")
    save_trace(path, _synthetic_records())
    assert main(["analyze", path, "--filter", "icmp", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["filter"] == "icmp"
    assert doc["matched"] == 2
    assert doc["statistics"]["total_packets"] == 2
    assert "tcp" not in doc["statistics"]["by_protocol"]


# ----------------------------------------------------------------------
# repro trace (one fully instrumented trial)
# ----------------------------------------------------------------------
def test_trace_subcommand_end_to_end(tmp_path, capsys):
    trace_out = str(tmp_path / "trace.json")
    metrics_out = str(tmp_path / "metrics.jsonl")
    assert main(["trace", "wean", "--benchmark", "ftp",
                 "--ftp-bytes", "60000",
                 "-o", trace_out, "--metrics-out", metrics_out]) == 0
    out = capsys.readouterr().out
    assert "Modulation fidelity (intended vs. applied)" in out
    assert "Packet-lifecycle span events" in out

    with open(trace_out) as f:
        doc = json.load(f)
    validate_chrome_trace(doc)
    assert any(e["ph"] == "X" for e in doc["traceEvents"])

    (record,) = read_jsonl(metrics_out)
    assert record["kind"] == "modulated"
    assert "spans" not in record  # raw spans only go to the Chrome trace
    assert record["trace"]["spans_recorded"] > 0
    assert record["modulation"]["totals"]["packets"] > 0
    assert record["engine"]["events_fired"] > 0
    assert any(name.endswith("tx_packets")
               for host in record["hosts"].values()
               for name in [f"{d['device']}.tx_packets"
                            for d in host["devices"]])


# ----------------------------------------------------------------------
# repro validate --metrics-out / --trace-out
# ----------------------------------------------------------------------
VALIDATE_ARGS = ["validate", "--scenario", "wean", "--benchmark", "ftp",
                 "--trials", "1", "--ftp-bytes", "120000", "--workers", "2",
                 "--seed", "0"]


@pytest.fixture(scope="module")
def validate_outputs(tmp_path_factory):
    """One instrumented + one plain sweep, run once for the module."""
    import contextlib
    import io

    tmp = tmp_path_factory.mktemp("validate")
    metrics_out = str(tmp / "metrics.jsonl")
    trace_out = str(tmp / "trace.json")

    def run(argv):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert main(argv) == 0
        return buf.getvalue()

    instrumented = run(VALIDATE_ARGS + ["--metrics-out", metrics_out,
                                        "--trace-out", trace_out])
    plain = run(list(VALIDATE_ARGS))
    return plain, instrumented, metrics_out, trace_out


def test_validate_tables_byte_identical_with_observability(validate_outputs):
    plain, instrumented, _, _ = validate_outputs
    stripped = "\n".join(line for line in instrumented.splitlines()
                         if not line.startswith("wrote "))
    assert stripped.rstrip("\n") == plain.rstrip("\n")


def test_validate_emits_one_metrics_record_per_trial(validate_outputs):
    _, _, metrics_out, _ = validate_outputs
    records = read_jsonl(metrics_out)
    # 1 trial, 2 ftp variants: 1 collection + 2 live + 2 modulated.
    assert len(records) == 5
    kinds = [r["kind"] for r in records]
    assert kinds.count("collect") == 1
    assert kinds.count("live") == 2
    assert kinds.count("modulated") == 2
    for record in records:
        assert record["engine"]["events_fired"] > 0
        assert record["hosts"]
        assert isinstance(record["drops"], dict)
        if record["kind"] == "modulated":
            assert record["modulation"]["totals"]["packets"] > 0


def test_validate_chrome_trace_output_validates(validate_outputs):
    _, _, _, trace_out = validate_outputs
    with open(trace_out) as f:
        doc = json.load(f)
    validate_chrome_trace(doc)
    # Per-trial group labels namespace the process names.
    labels = {e["args"]["name"] for e in doc["traceEvents"]
              if e.get("name") == "process_name"}
    assert any(name.startswith("live:wean") for name in labels)
    assert any(name.startswith("modulated:") for name in labels)
