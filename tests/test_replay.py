"""Unit tests for the network-quality model and replay traces."""

import pytest
from hypothesis import given, strategies as st

from repro.core.replay import QualityTuple, ReplayTrace


def _tuple(d=1.0, F=2e-3, Vb=5e-6, Vr=1e-6, L=0.0):
    return QualityTuple(d=d, F=F, Vb=Vb, Vr=Vr, L=L)


# ----------------------------------------------------------------------
# QualityTuple
# ----------------------------------------------------------------------
def test_total_per_byte_cost():
    assert _tuple(Vb=4e-6, Vr=1e-6).V == pytest.approx(5e-6)


def test_one_way_delay_equation_4():
    tup = _tuple(F=3e-3, Vb=5e-6, Vr=1e-6)
    assert tup.one_way_delay(1000) == pytest.approx(3e-3 + 1000 * 6e-6)


def test_bottleneck_bandwidth():
    assert _tuple(Vb=4e-6).bottleneck_bandwidth_bps() == pytest.approx(2e6)
    assert _tuple(Vb=0.0).bottleneck_bandwidth_bps() == float("inf")


def test_invalid_duration_rejected():
    with pytest.raises(ValueError):
        QualityTuple(d=0.0, F=0, Vb=0, Vr=0, L=0)


def test_invalid_loss_rejected():
    with pytest.raises(ValueError):
        QualityTuple(d=1.0, F=0, Vb=0, Vr=0, L=1.5)
    with pytest.raises(ValueError):
        QualityTuple(d=1.0, F=0, Vb=0, Vr=0, L=-0.1)


def test_scaled_tuple():
    tup = _tuple(F=2e-3, Vb=4e-6, Vr=2e-6)
    faster = tup.scaled(bandwidth_factor=2.0, latency_factor=0.5)
    assert faster.Vb == pytest.approx(2e-6)
    assert faster.Vr == pytest.approx(1e-6)
    assert faster.F == pytest.approx(1e-3)


# ----------------------------------------------------------------------
# ReplayTrace
# ----------------------------------------------------------------------
def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        ReplayTrace([])


def test_duration_is_sum_of_tuples():
    trace = ReplayTrace([_tuple(d=1.0), _tuple(d=2.5)])
    assert trace.duration == pytest.approx(3.5)


def test_tuple_at_selects_correct_interval():
    a, b, c = _tuple(F=1e-3), _tuple(F=2e-3), _tuple(F=3e-3)
    trace = ReplayTrace([a, b, c])
    assert trace.tuple_at(0.0) is a
    assert trace.tuple_at(0.999) is a
    assert trace.tuple_at(1.0) is b
    assert trace.tuple_at(2.5) is c


def test_tuple_at_past_end_holds_last():
    trace = ReplayTrace([_tuple(F=1e-3), _tuple(F=9e-3)])
    assert trace.tuple_at(100.0).F == pytest.approx(9e-3)


def test_tuple_at_loops_when_asked():
    trace = ReplayTrace([_tuple(F=1e-3), _tuple(F=9e-3)])
    assert trace.tuple_at(2.0, loop=True).F == pytest.approx(1e-3)
    assert trace.tuple_at(3.5, loop=True).F == pytest.approx(9e-3)


def test_tuple_at_negative_time_rejected():
    with pytest.raises(ValueError):
        ReplayTrace([_tuple()]).tuple_at(-1.0)


def test_means_are_duration_weighted():
    trace = ReplayTrace([
        QualityTuple(d=3.0, F=1e-3, Vb=4e-6, Vr=0, L=0.0),
        QualityTuple(d=1.0, F=5e-3, Vb=8e-6, Vr=0, L=0.4),
    ])
    assert trace.mean_latency() == pytest.approx(2e-3)
    assert trace.mean_bottleneck_cost() == pytest.approx(5e-6)
    assert trace.mean_loss() == pytest.approx(0.1)
    assert trace.mean_bandwidth_bps() == pytest.approx(8.0 / 5e-6)


def test_json_roundtrip():
    trace = ReplayTrace([_tuple(F=1e-3, L=0.25), _tuple(d=2.0)], name="t")
    back = ReplayTrace.from_json(trace.to_json())
    assert back.name == "t"
    assert back.tuples == trace.tuples


def test_save_and_load(tmp_path):
    path = str(tmp_path / "trace.json")
    trace = ReplayTrace([_tuple() for _ in range(5)], name="porter-0")
    trace.save(path)
    back = ReplayTrace.load(path)
    assert back.tuples == trace.tuples
    assert back.name == "porter-0"


def test_iteration_and_len():
    trace = ReplayTrace([_tuple(), _tuple(), _tuple()])
    assert len(trace) == 3
    assert len(list(trace)) == 3


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=30),
       st.floats(min_value=0.0, max_value=500.0))
def test_tuple_at_always_lands_in_covering_interval(durations, t):
    tuples = [QualityTuple(d=d, F=float(i) * 1e-3, Vb=1e-6, Vr=0, L=0)
              for i, d in enumerate(durations)]
    trace = ReplayTrace(tuples)
    chosen = trace.tuple_at(t)
    if t >= trace.duration:
        assert chosen is tuples[-1]
    else:
        start = 0.0
        for tup in tuples:
            if start <= t < start + tup.d:
                assert chosen is tup
                break
            start += tup.d


@given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1,
                max_size=20),
       st.floats(min_value=0.0, max_value=100.0))
def test_looped_lookup_equals_modulo_lookup(durations, t):
    tuples = [QualityTuple(d=d, F=float(i) * 1e-3, Vb=1e-6, Vr=0, L=0)
              for i, d in enumerate(durations)]
    trace = ReplayTrace(tuples)
    looped = trace.tuple_at(t, loop=True)
    direct = trace.tuple_at(t % trace.duration)
    assert looped is direct
