"""Unit and integration tests for the Reno TCP implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hosts import LAPTOP_ADDR, LiveWorld, ModulationWorld, SERVER_ADDR
from repro.net.wavelan import ChannelConditions, ChannelProfile
from repro.protocols.tcp import (
    CLOSED,
    ESTABLISHED,
    MSS,
    MessageChannel,
    MIN_RTO,
    TCPError,
)
from tests.conftest import ConstantProfile, run_to_completion


def _echo_server(world, port=2000, collector=None):
    """Server coroutine: counts received bytes until EOF, then closes."""

    def body():
        listener = world.server.tcp.listen(SERVER_ADDR, port)
        conn = yield from listener.accept()
        total = 0
        while True:
            got = yield from conn.recv_some()
            if got == 0:
                break
            total += got
        if collector is not None:
            collector["received"] = total
            collector["at"] = world.sim.now
        yield from conn.close_and_wait()

    return world.server.spawn(body())


def _send_bytes(world, nbytes, port=2000):
    def body():
        conn = yield from world.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR,
                                                   port)
        conn.send(nbytes)
        yield from conn.drain()
        yield from conn.close_and_wait()
        return conn

    return world.laptop.spawn(body())


# ----------------------------------------------------------------------
# Basics over a clean Ethernet
# ----------------------------------------------------------------------
def test_handshake_establishes_both_sides(mod_world):
    w = mod_world
    result = {}

    def server():
        listener = w.server.tcp.listen(SERVER_ADDR, 2000)
        conn = yield from listener.accept()
        result["server_state"] = conn.state

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        result["client_state"] = conn.state

    w.server.spawn(server())
    proc = w.laptop.spawn(client())
    run_to_completion(w, proc)
    assert result["client_state"] == ESTABLISHED
    assert result["server_state"] == ESTABLISHED


def test_connect_without_listener_fails(mod_world):
    w = mod_world

    def client():
        yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 4444)

    proc = w.laptop.spawn(client())
    with pytest.raises(TCPError):
        run_to_completion(w, proc, cap=300.0)


def test_bulk_transfer_delivers_exact_byte_count(mod_world):
    w = mod_world
    out = {}
    server = _echo_server(w, collector=out)
    _send_bytes(w, 1_000_000)
    run_to_completion(w, server, cap=120.0)
    assert out["received"] == 1_000_000


def test_zero_byte_connection_close(mod_world):
    w = mod_world
    out = {}
    server = _echo_server(w, collector=out)
    _send_bytes(w, 0)
    run_to_completion(w, server, cap=60.0)
    assert out["received"] == 0


def test_both_sides_reach_closed(mod_world):
    w = mod_world
    conns = {}

    def server():
        listener = w.server.tcp.listen(SERVER_ADDR, 2000)
        conn = yield from listener.accept()
        conns["server"] = conn
        while (yield from conn.recv_some()) != 0:
            pass
        yield from conn.close_and_wait()

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        conns["client"] = conn
        conn.send(5000)
        yield from conn.drain()
        yield from conn.close_and_wait()

    s = w.server.spawn(server())
    c = w.laptop.spawn(client())
    run_to_completion(w, s, cap=120.0)
    run_to_completion(w, c, cap=120.0)
    assert conns["client"].state == CLOSED
    assert conns["server"].state == CLOSED


def test_connection_table_cleaned_after_close(mod_world):
    w = mod_world
    server = _echo_server(w)
    _send_bytes(w, 1000)
    run_to_completion(w, server, cap=120.0)
    w.run(until=w.sim.now + 130.0)  # allow FIN_WAIT_2 reaper at worst
    assert len(w.laptop.tcp._conns) == 0
    assert len(w.server.tcp._conns) == 0


def test_ethernet_throughput_is_sane(mod_world):
    w = mod_world
    out = {}
    server = _echo_server(w, collector=out)
    _send_bytes(w, 2_000_000)
    run_to_completion(w, server, cap=120.0)
    throughput = out["received"] * 8 / out["at"]
    assert 2e6 < throughput < 10e6  # below wire speed, well above WaveLAN


def test_send_on_unopened_connection_raises(mod_world):
    w = mod_world
    conn_holder = {}

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        conn_holder["conn"] = conn
        yield from conn.close_and_wait()

    _echo_server(w)
    proc = w.laptop.spawn(client())
    run_to_completion(w, proc, cap=120.0)
    with pytest.raises(TCPError):
        conn_holder["conn"].send(10)


def test_negative_send_rejected(mod_world):
    w = mod_world
    _echo_server(w)

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        with pytest.raises(ValueError):
            conn.send(-1)
        yield from conn.close_and_wait()

    run_to_completion(w, w.laptop.spawn(client()), cap=60.0)


# ----------------------------------------------------------------------
# Message framing
# ----------------------------------------------------------------------
def test_message_channel_roundtrip(mod_world):
    w = mod_world
    got = []

    def server():
        listener = w.server.tcp.listen(SERVER_ADDR, 2000)
        conn = yield from listener.accept()
        channel = MessageChannel(conn)
        while True:
            msg = yield from channel.recv_message()
            if msg is None:
                break
            got.append(msg)
        yield from conn.close_and_wait()

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        channel = MessageChannel(conn)
        channel.send_message(100, "first")
        channel.send_message(2000, "second")
        yield from conn.drain()
        yield from conn.close_and_wait()

    s = w.server.spawn(server())
    w.laptop.spawn(client())
    run_to_completion(w, s, cap=60.0)
    assert got == [("first", 100), ("second", 2000)]


def test_message_larger_than_receive_buffer(mod_world):
    """A framed message bigger than rcv_buf must not deadlock."""
    w = mod_world
    got = []

    def server():
        listener = w.server.tcp.listen(SERVER_ADDR, 2000)
        conn = yield from listener.accept()
        channel = MessageChannel(conn)
        msg = yield from channel.recv_message()
        got.append(msg)
        yield from conn.close_and_wait()

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        MessageChannel(conn).send_message(100_000, "huge")
        yield from conn.drain()
        yield from conn.close_and_wait()

    s = w.server.spawn(server())
    w.laptop.spawn(client())
    run_to_completion(w, s, cap=120.0)
    assert got == [("huge", 100_000)]


def test_empty_message_rejected(mod_world):
    w = mod_world
    _echo_server(w)

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        channel = MessageChannel(conn)
        with pytest.raises(ValueError):
            channel.send_message(0, "empty")
        yield from conn.close_and_wait()

    run_to_completion(w, w.laptop.spawn(client()), cap=60.0)


def test_recv_message_returns_none_on_eof(mod_world):
    w = mod_world
    out = {}

    def server():
        listener = w.server.tcp.listen(SERVER_ADDR, 2000)
        conn = yield from listener.accept()
        out["msg"] = yield from MessageChannel(conn).recv_message()
        yield from conn.close_and_wait()

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        yield from conn.close_and_wait()

    s = w.server.spawn(server())
    w.laptop.spawn(client())
    run_to_completion(w, s, cap=120.0)
    assert out["msg"] is None


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_send_wait_applies_backpressure(mod_world):
    w = mod_world
    _echo_server(w)
    progress = []

    def client():
        conn = yield from w.laptop.tcp.connect(LAPTOP_ADDR, SERVER_ADDR, 2000)
        for _ in range(20):
            yield from conn.send_wait(8192, sndbuf=16384)
            progress.append(w.sim.now)
        yield from conn.drain()
        yield from conn.close_and_wait()

    proc = w.laptop.spawn(client())
    run_to_completion(w, proc, cap=120.0)
    # The later sends cannot all complete at t=0: the buffer bound
    # forces the app to wait for acknowledgements.
    assert progress[-1] > progress[0]


# ----------------------------------------------------------------------
# Loss recovery (lossy WaveLAN world)
# ----------------------------------------------------------------------
def _lossy_world(loss=0.03, seed=5):
    profile = ConstantProfile(loss_up=loss, loss_down=loss,
                              bandwidth_factor=0.9)
    world = LiveWorld(profile=profile, seed=seed)
    world.medium.bursty_loss = False
    return world


def test_transfer_completes_under_loss():
    w = _lossy_world()
    out = {}
    server = _echo_server(w, collector=out)
    _send_bytes(w, 500_000)
    run_to_completion(w, server, cap=600.0)
    assert out["received"] == 500_000


def test_loss_triggers_retransmissions():
    w = _lossy_world()
    out = {}
    server = _echo_server(w, collector=out)
    client = _send_bytes(w, 500_000)
    run_to_completion(w, server, cap=600.0)
    run_to_completion(w, client, cap=600.0)
    conn = client.value
    assert conn.retransmits > 0
    assert conn.fast_retransmits + conn.timeouts > 0


def test_loss_reduces_throughput():
    def elapsed(loss):
        w = _lossy_world(loss=loss)
        out = {}
        server = _echo_server(w, collector=out)
        _send_bytes(w, 500_000)
        run_to_completion(w, server, cap=900.0)
        return out["at"]

    assert elapsed(0.05) > elapsed(0.0) * 1.2


def test_min_rto_reflects_1997_stacks():
    assert MIN_RTO >= 1.0


@settings(deadline=None, max_examples=10)
@given(st.floats(min_value=0.0, max_value=0.08),
       st.integers(min_value=0, max_value=1000))
def test_exact_delivery_under_any_loss_rate(loss, seed):
    """Property: whatever the loss rate, TCP delivers every byte."""
    w = _lossy_world(loss=loss, seed=seed)
    out = {}
    server = _echo_server(w, collector=out)
    _send_bytes(w, 60_000)
    run_to_completion(w, server, cap=1200.0)
    assert out["received"] == 60_000
