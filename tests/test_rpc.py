"""Unit tests for RPC over UDP."""

import pytest

from repro.hosts import LAPTOP_ADDR, LiveWorld, SERVER_ADDR
from repro.protocols.rpc import RpcClient, RpcServer, RpcTimeout
from tests.conftest import ConstantProfile, run_to_completion


def _handler(proc, args):
    if proc == "double":
        return args * 2, 64
    if proc == "slow":
        return "ok", 64, 0.5
    return ("unknown",), 16


def _setup(world, service_time=0.0, **client_kw):
    server = RpcServer(world.sim, world.server.udp, SERVER_ADDR, 7000,
                       _handler, service_time=service_time)
    world.server.spawn(server.loop())
    client = RpcClient(world.sim, world.laptop.udp, LAPTOP_ADDR,
                       SERVER_ADDR, 7000, **client_kw)
    world.laptop.spawn(client.dispatcher())
    return server, client


def test_basic_call_returns_result(mod_world):
    server, client = _setup(mod_world)

    def body():
        result = yield from client.call("double", 21, arg_bytes=16)
        return result

    proc = mod_world.laptop.spawn(body())
    assert run_to_completion(mod_world, proc) == 42


def test_sequential_calls(mod_world):
    server, client = _setup(mod_world)

    def body():
        out = []
        for i in range(5):
            out.append((yield from client.call("double", i, 16)))
        return out

    proc = mod_world.laptop.spawn(body())
    assert run_to_completion(mod_world, proc) == [0, 2, 4, 6, 8]


def test_server_service_time_delays_reply(mod_world):
    server, client = _setup(mod_world, service_time=0.25)

    def body():
        start = mod_world.sim.now
        yield from client.call("double", 1, 16)
        return mod_world.sim.now - start

    proc = mod_world.laptop.spawn(body())
    assert run_to_completion(mod_world, proc) >= 0.25


def test_handler_extra_delay(mod_world):
    server, client = _setup(mod_world)

    def body():
        start = mod_world.sim.now
        yield from client.call("slow", None, 16)
        return mod_world.sim.now - start

    proc = mod_world.laptop.spawn(body())
    assert run_to_completion(mod_world, proc) >= 0.5


def test_retransmission_on_total_loss_then_timeout():
    world = LiveWorld(profile=ConstantProfile(loss_up=1.0, loss_down=1.0),
                      seed=1)
    server, client = _setup(world, initial_timeout=0.5, max_retries=2)

    def body():
        yield from client.call("double", 1, 16)

    proc = world.laptop.spawn(body())
    with pytest.raises(RpcTimeout):
        run_to_completion(world, proc, cap=60.0)
    assert client.retransmissions == 2
    assert client.timeouts_exhausted == 1


def test_call_survives_moderate_loss():
    world = LiveWorld(profile=ConstantProfile(loss_up=0.3, loss_down=0.3),
                      seed=3)
    world.medium.bursty_loss = False
    server, client = _setup(world, initial_timeout=0.4, max_retries=10)

    def body():
        out = []
        for i in range(10):
            out.append((yield from client.call("double", i, 16)))
        return out

    proc = world.laptop.spawn(body())
    assert run_to_completion(world, proc, cap=300.0) == [i * 2 for i in range(10)]
    assert client.retransmissions > 0


def test_duplicate_request_cache_suppresses_reexecution():
    # Drop only replies: the server executes once, later retransmissions
    # must be answered from the duplicate cache.
    class ReplyLossy(ConstantProfile):
        def __init__(self):
            super().__init__(loss_up=0.0, loss_down=0.6)

    world = LiveWorld(profile=ReplyLossy(), seed=11)
    world.medium.bursty_loss = False
    server, client = _setup(world, initial_timeout=0.4, max_retries=15)

    def body():
        yield from client.call("double", 7, 16)

    proc = world.laptop.spawn(body())
    run_to_completion(world, proc, cap=120.0)
    assert server.calls_handled == 1
    if client.retransmissions > 0:
        assert server.duplicates_seen > 0


def test_unknown_procedure_returns_error_result(mod_world):
    server, client = _setup(mod_world)

    def body():
        result = yield from client.call("nope", None, 16)
        return result

    proc = mod_world.laptop.spawn(body())
    assert run_to_completion(mod_world, proc) == ("unknown",)
