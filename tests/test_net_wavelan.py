"""Unit tests for the WaveLAN radio model."""

import pytest

from repro.net import (
    ChannelConditions,
    ChannelProfile,
    IPHeader,
    Packet,
    PiecewiseProfile,
    PROTO_ICMP,
    WaveLANDevice,
    WirelessMedium,
)
from repro.sim import RngStreams, Simulator


def _cond(signal=20.0, lu=0.0, ld=0.0, bw=1.0, access=0.0):
    return ChannelConditions(signal_level=signal, loss_prob_up=lu,
                             loss_prob_down=ld, bandwidth_factor=bw,
                             access_latency_mean=access)


class _Const(ChannelProfile):
    def __init__(self, cond):
        self._cond = cond

    def conditions(self, t):
        return self._cond


def _pair(sim, profile=None, bursty=False):
    medium = WirelessMedium(sim, RngStreams(1), bursty_loss=bursty)
    mobile = WaveLANDevice(sim, "wl0", "10.0.0.2", profile=profile)
    base = WaveLANDevice(sim, "ap0", "10.0.0.254", is_base=True)
    medium.attach(mobile)
    medium.attach(base)
    return medium, mobile, base


def _packet(src, dst, nbytes=1000):
    return Packet(ip=IPHeader(src, dst, PROTO_ICMP), payload_bytes=nbytes)


# ----------------------------------------------------------------------
# Conditions and profiles
# ----------------------------------------------------------------------
def test_conditions_clamped():
    c = ChannelConditions(signal_level=-3, loss_prob_up=1.7,
                          loss_prob_down=-0.2, bandwidth_factor=5.0,
                          access_latency_mean=-1.0).clamped()
    assert c.signal_level == 0.0
    assert c.loss_prob_up == 1.0
    assert c.loss_prob_down == 0.0
    assert c.bandwidth_factor == 1.0
    assert c.access_latency_mean == 0.0


def test_conditions_loss_by_direction():
    c = _cond(lu=0.3, ld=0.1)
    assert c.loss_prob("up") == 0.3
    assert c.loss_prob("down") == 0.1


def test_default_profile_is_perfect():
    c = ChannelProfile().conditions(123.0)
    assert c.loss_prob_up == 0.0
    assert c.bandwidth_factor == 1.0


def test_piecewise_interpolates_linearly():
    prof = PiecewiseProfile([
        (0.0, _cond(signal=10.0, bw=0.5)),
        (10.0, _cond(signal=20.0, bw=1.0)),
    ])
    mid = prof.conditions(5.0)
    assert mid.signal_level == pytest.approx(15.0)
    assert mid.bandwidth_factor == pytest.approx(0.75)


def test_piecewise_clamps_outside_range():
    prof = PiecewiseProfile([(0.0, _cond(signal=10)), (10.0, _cond(signal=20))])
    assert prof.conditions(-5.0).signal_level == 10
    assert prof.conditions(50.0).signal_level == 20


def test_piecewise_requires_points():
    with pytest.raises(ValueError):
        PiecewiseProfile([])


# ----------------------------------------------------------------------
# Medium behaviour
# ----------------------------------------------------------------------
def test_frame_delivered_to_addressee():
    sim = Simulator()
    medium, mobile, base = _pair(sim)
    got = []
    base.upstream = got.append
    mobile.send(_packet("10.0.0.2", "10.0.0.254"))
    sim.run()
    assert len(got) == 1


def test_unknown_destination_floods():
    sim = Simulator()
    medium, mobile, base = _pair(sim)
    got = []
    base.upstream = got.append
    mobile.send(_packet("10.0.0.2", "10.0.0.1"))  # server beyond the AP
    sim.run()
    assert len(got) == 1  # the base hears it (and would bridge it on)


def test_bandwidth_factor_stretches_transmission():
    times = {}
    for bw in (1.0, 0.5):
        sim = Simulator()
        medium, mobile, base = _pair(sim, profile=_Const(_cond(bw=bw)))
        mobile.driver_gap = 0.0
        base.upstream = lambda pkt: times.setdefault(bw, sim.now)
        mobile.send(_packet("10.0.0.2", "10.0.0.254"))
        sim.run()
    assert times[0.5] > times[1.0] * 1.5


def test_total_loss_drops_everything():
    sim = Simulator()
    medium, mobile, base = _pair(sim, profile=_Const(_cond(lu=1.0)))
    got = []
    base.upstream = got.append
    for _ in range(20):
        mobile.send(_packet("10.0.0.2", "10.0.0.254", nbytes=10))
    sim.run()
    assert got == []
    assert medium.frames_lost == 20


def test_loss_is_directional():
    sim = Simulator()
    medium, mobile, base = _pair(sim, profile=_Const(_cond(lu=1.0, ld=0.0)))
    up, down = [], []
    base.upstream = up.append
    mobile.upstream = down.append
    mobile.send(_packet("10.0.0.2", "10.0.0.254", nbytes=10))
    base.send(_packet("10.0.0.254", "10.0.0.2", nbytes=10))
    sim.run()
    assert up == []          # uplink lost
    assert len(down) == 1    # downlink survives


def test_base_transmission_uses_mobile_receiver_profile():
    sim = Simulator()
    medium, mobile, base = _pair(sim, profile=_Const(_cond(ld=1.0)))
    got = []
    mobile.upstream = got.append
    base.send(_packet("10.0.0.254", "10.0.0.2", nbytes=10))
    sim.run()
    assert got == []  # the mobile's downlink loss applied


def test_medium_is_half_duplex():
    sim = Simulator()
    medium, mobile, base = _pair(sim)
    mobile.driver_gap = 0.0
    base.driver_gap = 0.0
    arrivals = []
    base.upstream = lambda pkt: arrivals.append(sim.now)
    mobile.upstream = lambda pkt: arrivals.append(sim.now)
    mobile.send(_packet("10.0.0.2", "10.0.0.254", nbytes=1400))
    base.send(_packet("10.0.0.254", "10.0.0.2", nbytes=1400))
    sim.run()
    assert len(arrivals) == 2
    # ~5.9 ms serialization each at 2 Mb/s: no overlap allowed.
    assert abs(arrivals[1] - arrivals[0]) > 0.004


def test_driver_gap_separates_back_to_back_frames():
    sim = Simulator()
    medium, mobile, base = _pair(sim)
    arrivals = []
    base.upstream = lambda pkt: arrivals.append(sim.now)
    mobile.send(_packet("10.0.0.2", "10.0.0.254", nbytes=100))
    mobile.send(_packet("10.0.0.2", "10.0.0.254", nbytes=100))
    sim.run()
    gap = arrivals[1] - arrivals[0]
    assert gap >= mobile.driver_gap


def test_base_station_has_smaller_driver_gap():
    sim = Simulator()
    _, mobile, base = _pair(sim)
    assert base.driver_gap < mobile.driver_gap


def test_access_latency_delays_frames():
    slow_t, fast_t = {}, {}
    for label, access, store in (("fast", 0.0, fast_t), ("slow", 0.05, slow_t)):
        sim = Simulator()
        medium, mobile, base = _pair(sim, profile=_Const(_cond(access=access)))
        base.upstream = lambda pkt, s=store: s.setdefault("t", sim.now)
        mobile.send(_packet("10.0.0.2", "10.0.0.254"))
        sim.run()
    assert slow_t["t"] > fast_t["t"]


def test_gilbert_elliott_average_loss_tracks_nominal():
    sim = Simulator()
    medium, mobile, base = _pair(sim, profile=_Const(_cond(lu=0.05)),
                                 bursty=True)
    mobile.driver_gap = 0.0
    base.upstream = lambda pkt: None
    lost = 0
    sent = 4000
    for _ in range(sent):
        mobile.send(_packet("10.0.0.2", "10.0.0.254", nbytes=10))
    sim.run()
    rate = medium.frames_lost / sent
    assert 0.008 < rate < 0.15  # clustered, but averages near nominal


def test_deep_outage_bypasses_fading_model():
    sim = Simulator()
    medium, mobile, base = _pair(sim, profile=_Const(_cond(lu=0.5)),
                                 bursty=True)
    assert medium._effective_loss(0.5) == 0.5


def test_device_status_reports_signal_fields():
    sim = Simulator()
    medium, mobile, base = _pair(sim, profile=_Const(_cond(signal=17.0)))
    status = mobile.device_status()
    assert {"signal_level", "signal_quality", "silence_level"} <= set(status)
    assert 12.0 < status["signal_level"] < 22.0


def test_double_attach_rejected():
    sim = Simulator()
    medium, mobile, _ = _pair(sim)
    with pytest.raises(ValueError):
        medium.attach(mobile)
