"""Declarative scenario specs: parsing, round-trips, registry, e2e.

A scenario spec is pure data; these tests pin the three promises the
spec layer makes:

* lossless round-trips — ``spec_from_dict(spec_to_dict(s)) == s`` for
  *any* valid spec (Hypothesis), and TOML/JSON files load into specs
  that save and reload identically;
* loud validation — every malformed document raises :class:`SpecError`
  with a message naming the offending piece;
* a TOML file is a *runnable* scenario — it registers, resolves, and
  passes the invariant monitors through the full collect → distill →
  live → modulated pipeline.
"""

import json
import random
import tomllib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    register,
    register_spec_file,
    registered_scenarios,
    resolve_scenario,
    scenario_by_name,
    scenario_names,
    unregister,
)
from repro.scenarios.base import Checkpoint, Scenario
from repro.scenarios.leo import LeoFamily
from repro.scenarios.mobility import MOBILITY_MODELS, MobilityFamily
from repro.scenarios.ran import RAN_TECHNOLOGIES, FieldDist, RanFamily
from repro.scenarios.spec import (
    DEFAULT_DRAW_ORDER,
    FIELD_NAMES,
    PIECE_DISTS,
    SPEC_FORMAT_VERSION,
    SUPPORTED_SPEC_FORMATS,
    FieldPiece,
    LossModel,
    ScenarioSpec,
    SpecError,
    SpecScenario,
    evaluate_field,
    load_scenario,
    load_spec,
    save_spec,
    spec_from_dict,
    spec_to_dict,
    spec_to_toml,
)

MINI_TOML = """\
format = 1
name = "minispec"
duration = 60.0

[[checkpoints]]
label = "start"
fraction = 0.0

[[checkpoints]]
label = "end"
fraction = 1.0

[loss_model]
up_scale = 1.1

[[fields.signal]]
end = 0.5
base = 15.0
rel = 0.1

[[fields.signal]]
end = 1.0
base = 15.0
to = 8.0

[[fields.loss]]
end = 1.0
base = 0.005
hi = 0.02

[[fields.bandwidth]]
end = 1.0
base = 0.7
lo = 0.4
hi = 0.85

[[fields.access]]
end = 1.0
base = 0.0004
lo = 0.00005
"""


def mini_dict(**overrides):
    """A minimal valid spec document, as plain data."""
    doc = {
        "name": "minidict",
        "duration": 60.0,
        "fields": {name: [{"end": 1.0, "base": 0.5}]
                   for name in FIELD_NAMES},
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def mini_toml(tmp_path):
    path = tmp_path / "mini.toml"
    path.write_text(MINI_TOML, encoding="utf-8")
    return path


# ======================================================================
# Parsing and validation
# ======================================================================
class TestSpecFromDict:
    def test_minimal_document(self):
        spec = spec_from_dict(mini_dict())
        assert spec.name == "minidict"
        assert spec.draw_order == tuple(DEFAULT_DRAW_ORDER)
        assert spec.loss_model == LossModel()

    def test_to_sugar_sets_slope(self):
        doc = mini_dict()
        doc["fields"]["signal"] = [{"end": 1.0, "base": 15.0, "to": 8.0}]
        spec = spec_from_dict(doc)
        assert spec.fields["signal"][0].slope == 8.0 - 15.0

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.pop("name"), "needs a 'name'"),
        (lambda d: d.update(name="Wean"), "lowercase"),
        (lambda d: d.update(duration=-1.0), "positive"),
        (lambda d: d.update(cross_laptops=-1), "negative"),
        (lambda d: d.update(format=99), "unsupported spec format"),
        (lambda d: d.update(bogus=1), "unknown spec keys"),
        (lambda d: d.pop("fields"), "needs a 'fields'"),
        (lambda d: d["fields"].pop("loss"), "at least one piece"),
        (lambda d: d["fields"].update(humidity=[]), "unknown channel"),
        (lambda d: d.update(draw_order=["signal", "loss"]), "permutation"),
        (lambda d: d["fields"]["signal"][0].update(wat=1),
         "unknown piece keys"),
        (lambda d: d["fields"]["signal"][0].update(slope=1.0, to=2.0),
         "either 'slope' or 'to'"),
        (lambda d: d["fields"]["signal"][0].update(span=0.0),
         "span must be positive"),
        (lambda d: d["fields"]["signal"][0].update(spike_prob=1.5),
         r"probabilities\s+must lie"),
        (lambda d: d.update(checkpoints=[{"label": "x", "fraction": 1.5}]),
         r"outside \[0, 1\]"),
        (lambda d: d.update(checkpoints=[{"label": "x", "fraction": 0.5},
                                         {"label": "y", "fraction": 0.2}]),
         "nondecreasing"),
        (lambda d: d.update(checkpoints=[{"label": "x"}]), "missing"),
        (lambda d: d.update(checkpoints=[{"label": "x", "fraction": 0.1,
                                          "color": "red"}]),
         "unknown keys"),
        (lambda d: d.update(loss_model={"sideways_scale": 2.0}),
         "loss_model: unknown keys"),
    ])
    def test_malformed_documents_are_loud(self, mutate, match):
        doc = mini_dict()
        mutate(doc)
        with pytest.raises(SpecError, match=match):
            spec_from_dict(doc)

    def test_piece_ends_must_increase(self):
        doc = mini_dict()
        doc["fields"]["signal"] = [{"end": 0.5, "base": 1.0},
                                   {"end": 0.4, "base": 2.0},
                                   {"end": 1.0, "base": 3.0}]
        with pytest.raises(SpecError, match="must exceed"):
            spec_from_dict(doc)

    def test_spec_error_is_a_value_error(self):
        assert issubclass(SpecError, ValueError)


class TestFiles:
    def test_load_toml(self, mini_toml):
        spec = load_spec(mini_toml)
        assert spec.name == "minispec"
        assert len(spec.fields["signal"]) == 2
        assert spec.loss_model.up_scale == 1.1

    def test_save_load_round_trip(self, mini_toml, tmp_path):
        spec = load_spec(mini_toml)
        out = tmp_path / "copy.json"
        save_spec(spec, out)
        assert load_spec(out) == spec

    def test_invalid_toml_names_the_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed", encoding="utf-8")
        with pytest.raises(SpecError, match="invalid TOML"):
            load_spec(path)

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(SpecError, match="invalid JSON"):
            load_spec(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SpecError, match=r"\.toml or \.json"):
            load_spec(path)

    def test_spec_errors_carry_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}), encoding="utf-8")
        with pytest.raises(SpecError, match="bad.json"):
            load_spec(path)


# ======================================================================
# Evaluation semantics
# ======================================================================
def flat_piece(**kwargs):
    defaults = {"end": 1.0, "base": 10.0, "rel": 0.0}
    defaults.update(kwargs)
    return FieldPiece(**defaults)


class TestEvaluation:
    def test_piece_selection_boundaries(self):
        pieces = (flat_piece(end=0.5, base=1.0),
                  flat_piece(end=1.0, base=2.0))
        rng = random.Random(0)
        assert evaluate_field(pieces, 0.0, rng) == 1.0
        assert evaluate_field(pieces, 0.49, rng) == 1.0
        # end is exclusive by default: u == 0.5 falls in the next piece
        assert evaluate_field(pieces, 0.5, rng) == 2.0

    def test_inclusive_boundary(self):
        pieces = (flat_piece(end=0.5, base=1.0, inclusive=True),
                  flat_piece(end=1.0, base=2.0))
        assert evaluate_field(pieces, 0.5, random.Random(0)) == 1.0

    def test_past_last_end_extends_final_piece(self):
        pieces = (flat_piece(end=0.5, base=1.0),
                  flat_piece(end=1.0, base=2.0))
        assert evaluate_field(pieces, 1.25, random.Random(0)) == 2.0

    def test_ramp_uses_local_fraction(self):
        pieces = (flat_piece(end=0.5, base=0.0),
                  flat_piece(end=1.0, base=10.0, slope=4.0))
        rng = random.Random(0)
        # halfway through the second piece: frac = 0.5
        assert evaluate_field(pieces, 0.75, rng) == pytest.approx(12.0)

    def test_span_overrides_ramp_denominator(self):
        pieces = (flat_piece(end=1.0, base=0.0, slope=1.0, span=2.0),)
        assert evaluate_field(pieces, 0.5, random.Random(0)) \
            == pytest.approx(0.25)

    def test_clamps_apply(self):
        pieces = (flat_piece(base=10.0, rel=5.0, lo=9.0, hi=11.0),)
        rng = random.Random(3)
        values = [evaluate_field(pieces, 0.1, rng) for _ in range(50)]
        assert all(9.0 <= v <= 11.0 for v in values)

    def test_same_rng_stream_same_values(self):
        spec = spec_from_dict(mini_dict())
        scenario = SpecScenario(spec)
        a = scenario.base_conditions(0.3, random.Random(11))
        b = scenario.base_conditions(0.3, random.Random(11))
        assert a == b

    def test_loss_model_scales_and_caps(self):
        doc = mini_dict(loss_model={"up_scale": 2.0, "up_cap": 0.6,
                                    "down_scale": 0.5})
        scenario = SpecScenario(spec_from_dict(doc))
        cond = scenario.base_conditions(0.5, random.Random(1))
        # up = min(cap, loss * 2), down = loss * 0.5, so up = min(cap,
        # 4 * down).
        assert cond.loss_prob_up == pytest.approx(
            min(0.6, 4.0 * cond.loss_prob_down))

    def test_unbound_spec_scenario_is_loud(self):
        with pytest.raises(SpecError, match="no spec bound"):
            SpecScenario()


# ======================================================================
# Hypothesis: lossless dict round-trip
# ======================================================================
finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6)
positive = st.floats(allow_nan=False, min_value=1e-3, max_value=1e6)
prob = st.floats(allow_nan=False, min_value=0.0, max_value=1.0)


nonneg = st.floats(allow_nan=False, min_value=0.0, max_value=1e6)


@st.composite
def field_pieces(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    ends = sorted(draw(st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=count, max_size=count, unique=True)))
    pieces = []
    for end in ends:
        # lognormal pieces demand a non-negative base (validate() is
        # loud otherwise); the other dists take any finite base.
        dist = draw(st.sampled_from(PIECE_DISTS))
        base = draw(nonneg if dist == "lognormal" else finite)
        pieces.append(FieldPiece(
            end=end, base=base, slope=draw(finite),
            span=draw(st.none() | positive), rel=draw(prob),
            lo=draw(finite), hi=draw(st.none() | finite),
            inclusive=draw(st.booleans()), dist=dist,
            spike_prob=draw(prob), spike_magnitude=draw(finite),
            dip_prob=draw(prob), dip_lo=draw(finite),
            dip_hi=draw(finite)))
    return tuple(pieces)


@st.composite
def scenario_specs(draw):
    fractions = sorted(draw(st.lists(prob, max_size=3)))
    checkpoints = tuple(
        Checkpoint(label=draw(st.text(max_size=8)), fraction=fraction)
        for fraction in fractions)
    return ScenarioSpec(
        name=draw(st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=10)),
        duration=draw(positive),
        checkpoints=checkpoints,
        cross_laptops=draw(st.integers(min_value=0, max_value=4)),
        has_motion=draw(st.booleans()),
        draw_order=tuple(draw(st.permutations(FIELD_NAMES))),
        fields={name: draw(field_pieces()) for name in FIELD_NAMES},
        loss_model=LossModel(up_scale=draw(finite),
                             up_cap=draw(st.none() | finite),
                             down_scale=draw(finite)),
        description=draw(st.text(max_size=20)),
        generator=draw(st.sampled_from(
            ("", "repro.fuzz/v1 seed=0 index=3"))),
    ).validate()


# -- profile families: parameter tables that compile to fields ---------
@st.composite
def mobility_families(draw):
    count = draw(st.integers(min_value=2, max_value=5))
    inner = sorted(draw(st.lists(
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        min_size=count - 2, max_size=count - 2)))
    fracs = [0.0] + inner + [1.0]
    coord = st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1000.0, max_value=1000.0)
    waypoints = tuple((u, draw(coord), draw(coord)) for u in fracs)
    return MobilityFamily(
        waypoints=waypoints,
        model=draw(st.sampled_from(MOBILITY_MODELS)),
        tx_power_dbm=draw(st.floats(min_value=-10, max_value=30,
                                    allow_nan=False)),
        ref_loss_db=draw(st.floats(min_value=10, max_value=60,
                                   allow_nan=False)),
        ref_distance_m=draw(st.sampled_from((0.5, 1.0, 2.0))),
        path_loss_exponent=draw(st.floats(min_value=1.5, max_value=5.0,
                                          allow_nan=False)),
        base_antenna_m=draw(st.floats(min_value=0.5, max_value=20.0,
                                      allow_nan=False)),
        mobile_antenna_m=draw(st.floats(min_value=0.5, max_value=3.0,
                                        allow_nan=False)),
        sensitivity_dbm=draw(st.floats(min_value=-100, max_value=-70,
                                       allow_nan=False)),
        # Boundary values ride along: 0 and 12 are the legal extremes.
        shadowing_db=draw(st.sampled_from((0.0, 3.0, 12.0))),
        good_margin_db=draw(st.floats(min_value=5.0, max_value=40.0,
                                      allow_nan=False)),
        samples=draw(st.sampled_from((4, 7, 48, 512))),
    ).validate()


@st.composite
def field_dists(draw, lo=0.0, hi=1.0):
    dist = draw(st.sampled_from(PIECE_DISTS))
    return FieldDist(
        dist=dist,
        center=draw(st.floats(min_value=0.0 if dist == "lognormal"
                              else lo, max_value=hi, allow_nan=False)),
        spread=draw(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False)),
        lo=lo, hi=draw(st.none() | st.just(hi)),
    ).validate("strategy")


@st.composite
def ran_families(draw):
    return RanFamily(
        technology=draw(st.sampled_from(RAN_TECHNOLOGIES)),
        signal=draw(st.none() | field_dists(lo=1.0, hi=28.0)),
        loss=draw(st.none() | field_dists(lo=0.0, hi=0.3)),
        bandwidth=draw(st.none() | field_dists(lo=0.1, hi=0.95)),
        access=draw(st.none() | field_dists(lo=1e-4, hi=0.1)),
    ).validate()


@st.composite
def leo_families(draw):
    min_elev = draw(st.floats(min_value=0.0, max_value=60.0,
                              allow_nan=False))
    horizon_sig = draw(st.floats(min_value=1.0, max_value=15.0,
                                 allow_nan=False))
    loss_peak = draw(st.floats(min_value=0.0, max_value=0.1,
                               allow_nan=False))
    bw_horizon = draw(st.floats(min_value=0.05, max_value=0.9,
                                allow_nan=False))
    return LeoFamily(
        # 160 and 2000 are the legal LEO-altitude extremes.
        altitude_km=draw(st.sampled_from((160.0, 550.0, 2000.0))
                         | st.floats(min_value=160, max_value=2000,
                                     allow_nan=False)),
        min_elevation_deg=min_elev,
        peak_elevation_deg=min_elev + draw(st.floats(
            min_value=0.5, max_value=90.0 - min_elev, allow_nan=False)),
        processing_delay_s=draw(st.floats(min_value=0.0, max_value=0.05,
                                          allow_nan=False)),
        peak_signal_db=horizon_sig + draw(st.floats(
            min_value=0.5, max_value=20.0, allow_nan=False)),
        horizon_signal_db=horizon_sig,
        loss_peak=loss_peak,
        loss_horizon=loss_peak + draw(st.floats(min_value=0.0,
                                                max_value=0.5,
                                                allow_nan=False)),
        bandwidth_peak=draw(st.floats(min_value=bw_horizon,
                                      max_value=1.0, allow_nan=False)),
        bandwidth_horizon=bw_horizon,
        samples=draw(st.sampled_from((4, 24, 48, 512))),
    ).validate()


@st.composite
def family_specs(draw):
    family = draw(st.one_of(mobility_families(), ran_families(),
                            leo_families()))
    return ScenarioSpec(
        name=draw(st.sampled_from(("famspec", "famcase"))),
        duration=draw(positive),
        fields=family.compile_fields(),
        family=family,
        generator=draw(st.sampled_from(("", "repro.fuzz/v1 seed=1 "
                                        "index=7"))),
    ).validate()


class TestRoundTrip:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenario_specs())
    def test_dict_round_trip_is_lossless(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenario_specs())
    def test_json_file_round_trip_is_lossless(self, tmp_path_factory,
                                              spec):
        path = tmp_path_factory.mktemp("specs") / "spec.json"
        save_spec(spec, path)
        assert load_spec(path) == spec

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenario_specs())
    def test_toml_round_trip_is_lossless(self, spec):
        assert spec_from_dict(tomllib.loads(spec_to_toml(spec))) == spec

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(family_specs())
    def test_family_dict_round_trip_is_lossless(self, spec):
        loaded = spec_from_dict(spec_to_dict(spec))
        assert loaded == spec
        # The family table travels instead of the derived fields; the
        # loader recompiles the identical pieces.
        assert "fields" not in spec_to_dict(spec)
        assert loaded.fields == spec.family.compile_fields()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(family_specs())
    def test_family_toml_round_trip_is_lossless(self, spec):
        assert spec_from_dict(tomllib.loads(spec_to_toml(spec))) == spec

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(family_specs())
    def test_family_toml_file_round_trip(self, tmp_path_factory, spec):
        path = tmp_path_factory.mktemp("specs") / "family.toml"
        save_spec(spec, path)
        assert load_spec(path) == spec

    def test_to_dict_emits_the_format_version(self):
        doc = spec_to_dict(spec_from_dict(mini_dict()))
        assert doc["format"] == SPEC_FORMAT_VERSION

    def test_supported_formats_accepted(self):
        for fmt in SUPPORTED_SPEC_FORMATS:
            assert spec_from_dict(mini_dict(format=fmt)).name == "minidict"

    def test_builtin_scenarios_round_trip(self):
        for name in ("wean", "porter", "flagstaff", "chatterbox",
                     "shuttle", "ran3g", "ran4g", "leo"):
            spec = scenario_by_name(name).spec
            assert spec_from_dict(spec_to_dict(spec)) == spec
            assert spec_from_dict(tomllib.loads(spec_to_toml(spec))) \
                == spec

    def test_generator_stamp_survives_round_trips(self):
        doc = mini_dict(generator="repro.fuzz/v1 seed=9 index=12")
        spec = spec_from_dict(doc)
        assert spec.generator == "repro.fuzz/v1 seed=9 index=12"
        assert spec_from_dict(spec_to_dict(spec)).generator \
            == spec.generator
        assert spec_from_dict(
            tomllib.loads(spec_to_toml(spec))).generator == spec.generator


# ======================================================================
# Family documents: compile-on-load, loud rejections
# ======================================================================
class TestFamilyDocuments:
    def family_dict(self, family, **overrides):
        doc = {"name": "famdoc", "duration": 60.0, "family": family}
        doc.update(overrides)
        return doc

    def test_family_document_compiles_fields(self):
        spec = spec_from_dict(self.family_dict({"kind": "ran",
                                                "technology": "3g"}))
        assert spec.family == RanFamily(technology="3g")
        assert spec.fields == RanFamily(technology="3g").compile_fields()

    def test_family_and_fields_together_rejected(self):
        doc = mini_dict(family={"kind": "ran"})
        with pytest.raises(SpecError, match="not both"):
            spec_from_dict(doc)

    @pytest.mark.parametrize("family, match", [
        ({"kind": "blimp"}, "unknown family kind"),
        ({}, "unknown family kind"),
        ({"kind": "mobility"}, "needs 'waypoints'"),
        ({"kind": "mobility", "waypoints": [[0.0, 1.0, 1.0]]},
         "at least 2 waypoints"),
        ({"kind": "mobility",
          "waypoints": [[0.2, 0.0, 0.0], [1.0, 5.0, 5.0]]},
         "start at u=0"),
        ({"kind": "mobility",
          "waypoints": [[0.0, 0.0, 0.0], [1.0, 5.0]]}, "triple"),
        ({"kind": "mobility",
          "waypoints": [[0.0, 0.0, 0.0], [1.0, 5.0, 5.0]],
          "shadowing_db": 13.0}, r"shadowing_db must lie in \[0, 12\]"),
        ({"kind": "mobility",
          "waypoints": [[0.0, 0.0, 0.0], [1.0, 5.0, 5.0]],
          "samples": 3}, r"samples must lie in \[4, 512\]"),
        ({"kind": "mobility",
          "waypoints": [[0.0, 0.0, 0.0], [1.0, 5.0, 5.0]],
          "model": "ray_tracing"}, "mobility model"),
        ({"kind": "mobility",
          "waypoints": [[0.0, 0.0, 0.0], [1.0, 5.0, 5.0]],
          "rocket": 1}, "unknown mobility keys"),
        ({"kind": "ran", "technology": "6g"}, "choose from"),
        ({"kind": "ran", "humidity": {}}, "unknown RAN keys"),
        ({"kind": "ran",
          "loss": {"dist": "cauchy", "center": 0.01}}, "unknown dist"),
        ({"kind": "ran",
          "loss": {"dist": "lognormal", "center": -0.1}}, "non-negative"),
        ({"kind": "ran",
          "loss": {"center": 0.2, "lo": 0.3, "hi": 0.1}}, "below lo"),
        ({"kind": "leo", "altitude_km": 40_000.0},
         r"altitude_km must lie in \[160, 2000\]"),
        ({"kind": "leo", "min_elevation_deg": 80.0,
          "peak_elevation_deg": 30.0}, "min_elevation"),
        ({"kind": "leo", "peak_signal_db": 5.0,
          "horizon_signal_db": 9.0}, "peak_signal_db must exceed"),
        ({"kind": "leo", "loss_peak": 0.3, "loss_horizon": 0.1},
         "loss_peak"),
        ({"kind": "leo", "bandwidth_peak": 0.2,
          "bandwidth_horizon": 0.8}, "bandwidth_horizon"),
        ({"kind": "leo", "samples": 1000},
         r"samples must lie in \[4, 512\]"),
    ])
    def test_malformed_family_documents_are_loud(self, family, match):
        with pytest.raises(SpecError, match=match):
            spec_from_dict(self.family_dict(family))

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d["fields"]["signal"][0].update(dist="cauchy"),
         "unknown dist"),
        (lambda d: d["fields"]["loss"][0].update(dist="lognormal",
                                                 base=-0.5),
         "non-negative base"),
        (lambda d: d.update(generator=5), "generator must be a string"),
    ])
    def test_malformed_piece_dists_are_loud(self, mutate, match):
        doc = mini_dict()
        mutate(doc)
        with pytest.raises(SpecError, match=match):
            spec_from_dict(doc)


# ======================================================================
# Registry
# ======================================================================
class TestRegistry:
    def test_builtins_present(self):
        names = scenario_names()
        for name in ("wean", "porter", "flagstaff", "chatterbox",
                     "roaming"):
            assert name in names

    def test_entries_are_sorted_and_instantiable(self):
        entries = registered_scenarios()
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        for entry in entries:
            assert isinstance(entry.make(), Scenario)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="choose from"):
            scenario_by_name("nosuch")

    def test_reregistering_same_factory_is_idempotent(self):
        cls = type(scenario_by_name("wean"))
        register(cls)                      # no error, same factory

    def test_name_collision_is_loud(self):
        def impostor():
            return scenario_by_name("porter")

        impostor.name = "wean"
        with pytest.raises(ValueError, match="already registered"):
            register(impostor)

    def test_register_and_unregister(self):
        def factory():
            return scenario_by_name("wean")

        factory.name = "spectestonly"
        try:
            register(factory, source="test")
            entry = [e for e in registered_scenarios()
                     if e.name == "spectestonly"][0]
            assert entry.source == "test"
        finally:
            unregister("spectestonly")
        assert "spectestonly" not in scenario_names()
        unregister("spectestonly")          # unknown names are ignored

    def test_register_spec_file(self, mini_toml):
        try:
            entry = register_spec_file(mini_toml)
            assert entry.name == "minispec"
            assert entry.source == str(mini_toml)
            assert scenario_by_name("minispec").duration == 60.0
        finally:
            unregister("minispec")

    def test_resolve_scenario_forms(self, mini_toml):
        instance = scenario_by_name("wean")
        assert resolve_scenario(instance) is instance
        assert resolve_scenario("wean").name == "wean"
        assert resolve_scenario(str(mini_toml)).name == "minispec"
        with pytest.raises(FileNotFoundError, match="not found"):
            resolve_scenario("missing/file.toml")
        with pytest.raises(KeyError):
            resolve_scenario("nosuch")


# ======================================================================
# End to end: a TOML file through the whole checked pipeline
# ======================================================================
class TestSpecEndToEnd:
    def test_toml_scenario_passes_the_invariant_monitors(self, mini_toml):
        from repro.check import check_scenario

        report = check_scenario(str(mini_toml), ftp_bytes=60_000)
        assert report.scenario == "minispec"
        assert [s.stage for s in report.stages] == \
            ["collect", "distill", "live", "modulated"]
        assert report.ok, report.render()

    def test_spec_scenario_replays_deterministically(self, mini_toml):
        from repro.validation import collect_trace

        scenario = load_scenario(mini_toml)
        a = collect_trace(scenario, seed=3, trial=1)
        b = collect_trace(load_scenario(mini_toml), seed=3, trial=1)
        assert len(a) == len(b)
        assert all(type(x) is type(y) for x, y in zip(a, b))
