"""Determinism guarantees: identical seeds regenerate identical results.

EXPERIMENTS.md quotes exact numbers; these tests guard the property
that makes that possible.
"""

from repro.core import Distiller, dumps_trace
from repro.scenarios import PorterScenario, WeanScenario
from repro.validation import collect_trace, run_live_trial
from repro.validation.harness import FtpRunner


def test_collection_is_bit_identical_across_runs():
    a = collect_trace(PorterScenario(), seed=3, trial=1)
    b = collect_trace(PorterScenario(), seed=3, trial=1)
    assert dumps_trace(a) == dumps_trace(b)


def test_distillation_is_bit_identical_across_runs():
    records = collect_trace(WeanScenario(), seed=5, trial=0)
    a = Distiller().distill(records).replay.to_json()
    b = Distiller().distill(records).replay.to_json()
    assert a == b


def test_full_pipeline_json_identical():
    replay_a = Distiller().distill(
        collect_trace(PorterScenario(), seed=7, trial=2)).replay
    replay_b = Distiller().distill(
        collect_trace(PorterScenario(), seed=7, trial=2)).replay
    assert replay_a.to_json() == replay_b.to_json()


def test_different_seeds_differ():
    a = collect_trace(PorterScenario(), seed=1, trial=0)
    b = collect_trace(PorterScenario(), seed=2, trial=0)
    assert dumps_trace(a) != dumps_trace(b)


def test_different_trials_differ():
    a = collect_trace(PorterScenario(), seed=1, trial=0)
    b = collect_trace(PorterScenario(), seed=1, trial=1)
    assert dumps_trace(a) != dumps_trace(b)


def test_live_benchmark_trial_deterministic():
    runner = FtpRunner(nbytes=300_000, direction="send")
    a = run_live_trial(PorterScenario(), runner, seed=4, trial=0)
    b = run_live_trial(PorterScenario(), runner, seed=4, trial=0)
    assert a == b


def test_run_validation_parallel_bit_identical_to_serial():
    """The tentpole determinism contract: a 4-worker validation sweep
    renders byte-for-byte the same table as a serial one, because every
    trial depends only on (scenario, runner, seed, trial)."""
    from repro.validation.parallel import run_validation

    scenarios = [PorterScenario(), WeanScenario()]
    runner = FtpRunner(nbytes=300_000, direction="send")
    serial = run_validation(scenarios, runner, seed=0, trials=2,
                            baseline=True, workers=1)
    parallel = run_validation(scenarios, runner, seed=0, trials=2,
                              baseline=True, workers=4)
    assert serial.workers_used == 1
    assert parallel.workers_used > 1
    assert serial.render() == parallel.render()
