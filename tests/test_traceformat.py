"""Unit tests for the self-descriptive trace format."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.traceformat import (
    DIR_IN,
    DIR_OUT,
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
    TraceReader,
    TraceWriter,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
)


def _packet_record(**kw):
    defaults = dict(timestamp=1.5, direction=DIR_OUT, proto=1, size=92,
                    src="10.0.0.2", dst="10.0.0.1", icmp_type=8, ident=7,
                    seq=3, rtt=-1.0)
    defaults.update(kw)
    return PacketRecord(**defaults)


def test_packet_record_roundtrip():
    rec = _packet_record(rtt=0.0123)
    (back,) = loads_trace(dumps_trace([rec]))
    assert back == rec


def test_device_status_roundtrip():
    rec = DeviceStatusRecord(timestamp=2.0, signal_level=17.5,
                             signal_quality=12.0, silence_level=4.0)
    (back,) = loads_trace(dumps_trace([rec]))
    assert back == rec


def test_lost_records_roundtrip():
    rec = LostRecordsRecord(timestamp=3.0, record_type="packet", count=42)
    (back,) = loads_trace(dumps_trace([rec]))
    assert back == rec


def test_mixed_stream_preserves_order():
    records = [
        _packet_record(seq=0),
        DeviceStatusRecord(1.0, 10.0, 5.0, 2.0),
        _packet_record(seq=1, direction=DIR_IN),
        LostRecordsRecord(2.0, "device_status", 1),
    ]
    assert loads_trace(dumps_trace(records)) == records


def test_description_preserved():
    blob = dumps_trace([], description="porter trial 3")
    reader = TraceReader(io.BytesIO(blob))
    assert reader.description == "porter trial 3"


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        TraceReader(io.BytesIO(b"JUNKxxxxxxxx"))


def test_empty_trace_ok():
    assert loads_trace(dumps_trace([])) == []


def test_save_and_load_file(tmp_path):
    path = str(tmp_path / "trial.trace")
    records = [_packet_record(seq=i) for i in range(5)]
    assert save_trace(path, records, description="t") == 5
    assert load_trace(path) == records


def test_self_descriptive_unknown_record_type():
    """A reader can parse record types it has never seen."""
    buf = io.BytesIO()
    writer = TraceWriter(buf, extra_schemas={
        "gps_fix": [("timestamp", "d"), ("lat", "d"), ("lon", "d"),
                    ("label", "S")],
    })

    class GpsFix:
        RECORD_TYPE = "gps_fix"
        timestamp = 9.0
        lat = 40.44
        lon = -79.94
        label = "wean hall"

    writer.write(GpsFix())
    writer.write(_packet_record())
    records = loads_trace(buf.getvalue())
    assert records[0]["record_type"] == "gps_fix"
    assert records[0]["label"] == "wean hall"
    assert isinstance(records[1], PacketRecord)


def test_unicode_strings_survive():
    rec = _packet_record(src="höst-α", dst="β")
    (back,) = loads_trace(dumps_trace([rec]))
    assert back.src == "höst-α"


def test_writer_counts_records():
    buf = io.BytesIO()
    writer = TraceWriter(buf)
    writer.write_all([_packet_record() for _ in range(3)])
    assert writer.records_written == 3


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=-1, max_value=2**31),
    st.floats(min_value=-1.0, max_value=10.0, allow_nan=False),
    st.text(max_size=20),
), max_size=20))
def test_roundtrip_arbitrary_packet_records(rows):
    records = [
        PacketRecord(timestamp=ts, direction=d, proto=1, size=100,
                     src=name, dst="x", icmp_type=0, ident=1, seq=seq,
                     rtt=rtt)
        for ts, d, seq, rtt, name in rows
    ]
    assert loads_trace(dumps_trace(records)) == records
