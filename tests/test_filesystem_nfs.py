"""Unit tests for the in-memory filesystem, disk model, and NFS."""

import pytest

from repro.apps.disk import Disk
from repro.apps.filesystem import FileSystem, FsError
from repro.apps.nfs import NfsClient, NfsError, NfsServer, TRANSFER_SIZE
from repro.hosts import SERVER_ADDR
from repro.sim import Simulator, run_process
from tests.conftest import run_to_completion


# ----------------------------------------------------------------------
# Disk
# ----------------------------------------------------------------------
def test_disk_read_time_scales_with_bytes():
    sim = Simulator()
    disk = Disk(sim, read_rate=1e6, op_overhead=0.0)

    def body():
        yield from disk.read(500_000)
        return sim.now

    assert run_process(sim, body()) == pytest.approx(0.5)


def test_disk_overhead_applies_per_operation():
    sim = Simulator()
    disk = Disk(sim, read_rate=1e9, op_overhead=2e-3)

    def body():
        yield from disk.read(1)
        yield from disk.write(1)
        return sim.now

    assert run_process(sim, body()) == pytest.approx(4e-3, rel=0.01)


def test_disk_counters():
    sim = Simulator()
    disk = Disk(sim)

    def body():
        yield from disk.read(100)
        yield from disk.write(200)

    run_process(sim, body())
    assert disk.bytes_read == 100
    assert disk.bytes_written == 200
    assert disk.operations == 2


def test_disk_rejects_bad_rates():
    with pytest.raises(ValueError):
        Disk(Simulator(), read_rate=0.0)


# ----------------------------------------------------------------------
# FileSystem
# ----------------------------------------------------------------------
def test_fs_create_and_lookup():
    fs = FileSystem()
    fid = fs.create(fs.root.fileid, "hello.c")
    assert fs.lookup(fs.root.fileid, "hello.c") == fid
    assert fs.getattr(fid).kind == "file"


def test_fs_mkdir_and_nesting():
    fs = FileSystem()
    d = fs.mkdir(fs.root.fileid, "src")
    f = fs.create(d, "a.c")
    assert fs.resolve("src/a.c") == f


def test_fs_lookup_missing_raises():
    fs = FileSystem()
    with pytest.raises(FsError):
        fs.lookup(fs.root.fileid, "ghost")


def test_fs_duplicate_name_rejected():
    fs = FileSystem()
    fs.create(fs.root.fileid, "x")
    with pytest.raises(FsError):
        fs.create(fs.root.fileid, "x")


def test_fs_write_extends_size_and_mtime():
    fs = FileSystem()
    fid = fs.create(fs.root.fileid, "f")
    fs.write(fid, 0, 1000, now=5.0)
    fs.write(fid, 500, 1000, now=6.0)
    attrs = fs.getattr(fid)
    assert attrs.size == 1500
    assert attrs.mtime == 6.0


def test_fs_read_respects_eof():
    fs = FileSystem()
    fid = fs.create_file("f", 100)
    assert fs.read(fid, 0, 200) == 100
    assert fs.read(fid, 50, 200) == 50
    assert fs.read(fid, 100, 10) == 0


def test_fs_read_write_on_directory_rejected():
    fs = FileSystem()
    d = fs.mkdir(fs.root.fileid, "d")
    with pytest.raises(FsError):
        fs.read(d, 0, 1)
    with pytest.raises(FsError):
        fs.write(d, 0, 1)


def test_fs_readdir_sorted():
    fs = FileSystem()
    for name in ("b", "a", "c"):
        fs.create(fs.root.fileid, name)
    assert [n for n, _ in fs.readdir(fs.root.fileid)] == ["a", "b", "c"]


def test_fs_remove():
    fs = FileSystem()
    fid = fs.create(fs.root.fileid, "gone")
    fs.remove(fs.root.fileid, "gone")
    with pytest.raises(FsError):
        fs.getattr(fid)


def test_fs_remove_nonempty_dir_rejected():
    fs = FileSystem()
    d = fs.mkdir(fs.root.fileid, "d")
    fs.create(d, "child")
    with pytest.raises(FsError):
        fs.remove(fs.root.fileid, "d")


def test_fs_makedirs_idempotent():
    fs = FileSystem()
    a = fs.makedirs("x/y/z")
    b = fs.makedirs("x/y/z")
    assert a == b


def test_fs_truncate():
    fs = FileSystem()
    fid = fs.create_file("f", 1000)
    fs.truncate(fid, 10)
    assert fs.getattr(fid).size == 10


def test_fs_accounting():
    fs = FileSystem()
    fs.create_file("a", 100)
    fs.create_file("d/b", 200)
    assert fs.total_bytes() == 300
    assert fs.file_count() == 2


def test_fs_stale_handle():
    fs = FileSystem()
    with pytest.raises(FsError):
        fs.getattr(999)


# ----------------------------------------------------------------------
# NFS client/server
# ----------------------------------------------------------------------
def _nfs_world(mod_world):
    server = NfsServer(mod_world.server)
    server.fs.create_file("src/a.c", 20000)
    server.fs.create_file("src/b.c", 500)
    server.start()
    client = NfsClient(mod_world.laptop, SERVER_ADDR)
    return server, client


def test_nfs_walk_and_getattr(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        fid = yield from client.walk("src/a.c")
        attrs = yield from client.getattr(fid)
        return attrs

    attrs = run_to_completion(mod_world, mod_world.laptop.spawn(body()))
    assert attrs.size == 20000
    assert attrs.kind == "file"


def test_nfs_read_issues_8k_transfers(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        fid = yield from client.walk("src/a.c")
        size = yield from client.read_file(fid)
        return size

    assert run_to_completion(mod_world, mod_world.laptop.spawn(body())) == 20000
    assert client.stats.read == 3  # ceil(20000 / 8192)


def test_nfs_warm_read_is_status_check_only(mod_world):
    """§4.2: warm-cache re-reads send only small status messages."""
    server, client = _nfs_world(mod_world)

    def body():
        fid = yield from client.walk("src/a.c")
        yield from client.read_file(fid)
        reads_after_first = client.stats.read
        getattrs_before = client.stats.getattr
        client._attr_cache.clear()  # attr TTL expiry
        yield from client.read_file(fid)
        return (reads_after_first, client.stats.read,
                client.stats.getattr - getattrs_before)

    first, second, new_getattrs = run_to_completion(
        mod_world, mod_world.laptop.spawn(body()))
    assert first == second        # no new READs on the warm path
    assert new_getattrs == 1      # but a validation GETATTR went out


def test_nfs_modified_file_invalidates_data_cache(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        fid = yield from client.walk("src/b.c")
        yield from client.read_file(fid)
        # Another client (the server itself here) rewrites the file.
        server.fs.write(fid, 0, 600, now=mod_world.sim.now + 100.0)
        client._attr_cache.clear()
        yield from client.read_file(fid)
        return client.stats.read

    reads = run_to_completion(mod_world, mod_world.laptop.spawn(body()))
    assert reads == 2  # one per read_file: cache was invalidated


def test_nfs_write_is_synchronous_8k_chunks(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        root = client.root_fh
        fid = yield from client.create(root, "out.dat")
        yield from client.write_file(fid, 20000)
        return fid

    fid = run_to_completion(mod_world, mod_world.laptop.spawn(body()))
    assert client.stats.write == 3
    assert server.fs.getattr(fid).size == 20000


def test_nfs_mkdir_readdir_remove(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        d = yield from client.mkdir(client.root_fh, "newdir")
        yield from client.create(d, "f1")
        entries = yield from client.readdir(d)
        yield from client.remove(d, "f1")
        entries_after = yield from client.readdir(d)
        return entries, entries_after

    entries, after = run_to_completion(mod_world, mod_world.laptop.spawn(body()))
    assert [n for n, _ in entries] == ["f1"]
    assert after == []


def test_nfs_error_propagates(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        yield from client.walk("src/ghost.c")

    proc = mod_world.laptop.spawn(body())
    with pytest.raises(NfsError):
        run_to_completion(mod_world, proc)


def test_nfs_name_cache_hits(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        yield from client.walk("src/a.c")
        lookups_first = client.stats.lookup
        yield from client.walk("src/a.c")
        return lookups_first, client.stats.lookup

    first, second = run_to_completion(mod_world, mod_world.laptop.spawn(body()))
    assert second == first  # all lookups served from the name cache


def test_nfs_flush_caches_forces_refetch(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        fid = yield from client.walk("src/a.c")
        yield from client.read_file(fid)
        client.flush_caches()
        fid = yield from client.walk("src/a.c")
        yield from client.read_file(fid)
        return client.stats.read

    reads = run_to_completion(mod_world, mod_world.laptop.spawn(body()))
    assert reads == 6  # 3 cold reads, twice


def test_transfer_size_is_nfsv2():
    assert TRANSFER_SIZE == 8192


def test_fs_rename_moves_between_dirs():
    from repro.apps.filesystem import FileSystem

    fs = FileSystem()
    a = fs.mkdir(fs.root.fileid, "a")
    b = fs.mkdir(fs.root.fileid, "b")
    fid = fs.create(a, "f.c")
    fs.rename(a, "f.c", b, "g.c", now=3.0)
    assert fs.lookup(b, "g.c") == fid
    with pytest.raises(FsError):
        fs.lookup(a, "f.c")


def test_fs_rename_refuses_overwrite():
    from repro.apps.filesystem import FileSystem

    fs = FileSystem()
    fs.create(fs.root.fileid, "x")
    fs.create(fs.root.fileid, "y")
    with pytest.raises(FsError):
        fs.rename(fs.root.fileid, "x", fs.root.fileid, "y")


def test_nfs_setattr_truncates_and_invalidates_cache(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        fid = yield from client.walk("src/a.c")
        yield from client.read_file(fid)          # warm the data cache
        attrs = yield from client.setattr(fid, 100)
        reads_before = client.stats.read
        client._attr_cache.clear()
        yield from client.read_file(fid)          # must re-READ now
        return attrs.size, client.stats.read - reads_before

    size, new_reads = run_to_completion(mod_world,
                                        mod_world.laptop.spawn(body()))
    assert size == 100
    assert new_reads == 1
    assert server.fs.resolve("src/a.c") and \
        server.fs.getattr(server.fs.resolve("src/a.c")).size == 100


def test_nfs_rename_updates_name_cache(mod_world):
    server, client = _nfs_world(mod_world)

    def body():
        src_dir = yield from client.walk("src")
        fid = yield from client.lookup(src_dir, "b.c")
        yield from client.rename(src_dir, "b.c", client.root_fh, "moved.c")
        moved = yield from client.lookup(client.root_fh, "moved.c")
        return fid, moved, client.stats.rename

    fid, moved, renames = run_to_completion(mod_world,
                                            mod_world.laptop.spawn(body()))
    assert fid == moved
    assert renames == 1
