"""Tests for the one-way distillation extension (§6)."""

import pytest

from repro.apps.ping import ModifiedPing
from repro.core import (
    Distiller,
    OneWayDistiller,
    install_asymmetric_modulation,
    trace_collection_run,
)
from repro.core.oneway import AsymmetricModulationLayer
from repro.hosts import LAPTOP_ADDR, LiveWorld, ModulationWorld, SERVER_ADDR
from repro.sim import Timeout
from tests.conftest import ConstantProfile, run_to_completion


def _two_ended_records(profile, duration=60.0, seed=5, drift=0.0):
    world = LiveWorld(profile=profile, seed=seed, laptop_clock_drift=drift)
    world.medium.bursty_loss = False
    mobile = trace_collection_run(world.laptop, world.radio)
    remote = trace_collection_run(world.server, world.server.devices[0])
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    proc = world.laptop.spawn(ping.run(duration))
    run_to_completion(world, proc, cap=duration + 30.0)
    world.run(until=world.sim.now + 2.0)
    return mobile.records, remote.records


def test_oneway_distills_both_directions():
    mob, rem = _two_ended_records(ConstantProfile())
    result = OneWayDistiller().distill(mob, rem, name="t")
    assert result.groups_used > 40
    assert len(result.up) == len(result.down)
    assert result.up.mean_bandwidth_bps() > 0.8e6
    assert result.down.mean_bandwidth_bps() > 0.8e6


def test_oneway_separates_loss_by_direction():
    profile = ConstantProfile(loss_up=0.05, loss_down=0.0,
                              bandwidth_factor=0.8)
    mob, rem = _two_ended_records(profile, duration=120.0)
    result = OneWayDistiller().distill(mob, rem)
    assert result.up.mean_loss() > 0.02
    assert result.down.mean_loss() < 0.005
    assert result.asymmetry_ratio() > 4


def test_oneway_loss_is_direct_count_not_sqrt():
    """One-way loss needs no symmetry assumption (cf. Eq. 10)."""
    profile = ConstantProfile(loss_up=0.08, loss_down=0.08,
                              bandwidth_factor=0.8)
    mob, rem = _two_ended_records(profile, duration=120.0)
    oneway = OneWayDistiller().distill(mob, rem)
    # Each direction's estimate sits near its true 8%, not near the
    # round-trip-derived 1 - sqrt((1-l)^2) = l.
    assert oneway.up.mean_loss() == pytest.approx(0.08, abs=0.04)
    assert oneway.down.mean_loss() == pytest.approx(0.08, abs=0.05)


def test_oneway_uplink_latency_cleaner_than_roundtrip():
    """Round-trip V folds in reply contention; one-way V does not."""
    profile = ConstantProfile(bandwidth_factor=0.8)
    mob, rem = _two_ended_records(profile)
    oneway = OneWayDistiller().distill(mob, rem)
    symmetric = Distiller().distill(mob).replay
    # True one-way per-byte cost at 1.6 Mb/s is 5 us/B; the uplink
    # estimate must be closer to it than the symmetric estimate's V.
    true_v = 8.0 / 1.6e6

    def mean_v(trace):
        return sum((t.Vb + t.Vr) * t.d for t in trace) / \
            sum(t.d for t in trace)

    assert abs(mean_v(oneway.up) - true_v) < abs(mean_v(symmetric) - true_v)


def test_clock_drift_corrupts_oneway_estimates():
    """Why the paper could not do this in 1996: unsynchronized clocks."""
    profile = ConstantProfile(bandwidth_factor=0.8)
    clean = OneWayDistiller().distill(
        *_two_ended_records(profile, duration=80.0, drift=0.0))
    drifted = OneWayDistiller().distill(
        *_two_ended_records(profile, duration=80.0, drift=5e-4))
    # With 500 ppm drift the laptop's clock runs ahead ~5 ms within
    # ten seconds — more than the whole uplink delay — so measured
    # one-way delays go negative and nearly every group is rejected.
    # This is precisely why the paper was "forced to use a strategy
    # that depends only on timestamps taken on a single host" (§3.2.2).
    assert drifted.groups_skipped > 50
    assert drifted.groups_used < clean.groups_used / 4


def test_oneway_requires_two_sizes():
    mob, rem = _two_ended_records(ConstantProfile(), duration=20.0)
    small_only = [r for r in mob if getattr(r, "size", 0) < 1000]
    with pytest.raises(ValueError):
        OneWayDistiller().distill(small_only, rem)


def test_oneway_empty_rejected():
    with pytest.raises(ValueError):
        OneWayDistiller().distill([], [])


def test_asymmetric_modulation_applies_direction_parameters():
    from repro.core.replay import QualityTuple, ReplayTrace

    up = ReplayTrace([QualityTuple(d=1.0, F=40e-3, Vb=1e-6, Vr=0, L=0)
                      for _ in range(60)])
    down = ReplayTrace([QualityTuple(d=1.0, F=5e-3, Vb=1e-6, Vr=0, L=0)
                        for _ in range(60)])
    world = ModulationWorld(seed=3)
    layer = install_asymmetric_modulation(
        world.laptop, world.laptop_device, up, down,
        world.rngs.stream("m"), compensation_vb=0.8e-6, loop=True)
    assert isinstance(layer, AsymmetricModulationLayer)
    rtts = []
    world.laptop.icmp.on_echo_reply(
        9, lambda pkt, now: rtts.append(now - pkt.meta["echo_sent_at"]))

    def pinger():
        yield Timeout(0.5)
        for seq in range(6):
            world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq, 64)
            yield Timeout(1.0)

    world.laptop.spawn(pinger())
    world.run(until=10.0)
    # RTT ~= 40 ms out + 5 ms back (ticks round 5 -> 0 or 10).
    mean = sum(rtts) / len(rtts)
    assert mean == pytest.approx(0.045, abs=0.012)


def test_asymmetric_modulation_directional_loss():
    from repro.core.replay import QualityTuple, ReplayTrace

    up = ReplayTrace([QualityTuple(d=1.0, F=1e-3, Vb=1e-6, Vr=0, L=1.0)
                      for _ in range(30)])
    down = ReplayTrace([QualityTuple(d=1.0, F=1e-3, Vb=1e-6, Vr=0, L=0.0)
                        for _ in range(30)])
    world = ModulationWorld(seed=3)
    layer = install_asymmetric_modulation(
        world.laptop, world.laptop_device, up, down,
        world.rngs.stream("m"), loop=True)
    world.run(until=0.5)
    for seq in range(5):
        world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq, 64)
    world.run(until=5.0)
    assert layer.out_dropped == 5   # every uplink packet dies
    assert layer.in_dropped == 0


def test_oneway_restores_live_asymmetry_ordering():
    """The §6 claim, end to end: one-way traces let modulation
    reproduce the live send/recv ordering that symmetric traces
    cannot express."""
    profile = ConstantProfile(loss_up=0.035, loss_down=0.002,
                              bandwidth_factor=0.8, access_latency=0.0004)
    mob, rem = _two_ended_records(profile, duration=90.0)
    asym = OneWayDistiller().distill(mob, rem)

    from repro.apps.ftp import FtpClient, FtpServer
    from repro.sim.rng import derive_seed

    def mod_ftp(direction):
        world = ModulationWorld(seed=derive_seed(1, direction))
        install_asymmetric_modulation(
            world.laptop, world.laptop_device, asym.up, asym.down,
            world.rngs.stream("m"), compensation_vb=0.8e-6, loop=True)
        FtpServer(world.server).start()
        client = FtpClient(world.laptop, SERVER_ADDR)
        sink = {}

        def body():
            result = yield from client.transfer(direction, 3_000_000)
            sink["t"] = result.elapsed

        proc = world.laptop.spawn(body())
        run_to_completion(world, proc, cap=1200.0)
        return sink["t"]

    send = mod_ftp("send")
    recv = mod_ftp("recv")
    assert send > recv * 1.05  # lossy uplink direction is slower
