"""Unit tests for synthetic trace generators and compensation measurement."""

import pytest

from repro.core.compensation import measure_modulation_network
from repro.core.synthetic import (
    constant_trace,
    impulse_trace,
    piecewise_trace,
    slow_network_trace,
    step_trace,
    wavelan_like_trace,
)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def test_constant_trace_parameters():
    trace = constant_trace(duration=10.0, latency=5e-3, bandwidth_bps=2e6,
                           loss=0.1)
    assert len(trace) == 10
    for tup in trace:
        assert tup.F == 5e-3
        assert tup.L == 0.1
        assert tup.V == pytest.approx(8.0 / 2e6)


def test_constant_trace_residual_split():
    trace = constant_trace(10.0, 1e-3, 1e6, residual_fraction=0.25)
    tup = trace.tuples[0]
    assert tup.Vr == pytest.approx(tup.V * 0.25)
    assert tup.Vb == pytest.approx(tup.V * 0.75)


def test_constant_trace_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        constant_trace(10.0, 1e-3, 0.0)


def test_wavelan_like_trace_resembles_wavelan():
    trace = wavelan_like_trace()
    assert trace.mean_bandwidth_bps() < 2e6
    assert trace.mean_bandwidth_bps() > 1e6
    assert trace.mean_loss() == 0.0


def test_slow_network_trace_is_much_slower():
    assert slow_network_trace().mean_bandwidth_bps() < \
        wavelan_like_trace().mean_bandwidth_bps() / 3


def test_step_trace_alternates_bandwidth():
    trace = step_trace(duration=40.0, period=10.0, latency=1e-3,
                       low_bandwidth_bps=0.5e6, high_bandwidth_bps=2e6)
    low = trace.tuple_at(5.0)
    high = trace.tuple_at(15.0)
    assert high.bottleneck_bandwidth_bps() > low.bottleneck_bandwidth_bps() * 3
    low2 = trace.tuple_at(25.0)
    assert low2.Vb == pytest.approx(low.Vb)


def test_step_trace_rejects_bad_period():
    with pytest.raises(ValueError):
        step_trace(10.0, 0.0, 1e-3, 1e6, 2e6)


def test_impulse_trace_single_excursion():
    trace = impulse_trace(duration=30.0, impulse_at=10.0, impulse_width=5.0,
                          latency=1e-3, base_bandwidth_bps=2e6,
                          impulse_bandwidth_bps=0.2e6)
    assert trace.tuple_at(5.0).bottleneck_bandwidth_bps() > 1e6
    assert trace.tuple_at(12.0).bottleneck_bandwidth_bps() < 0.3e6
    assert trace.tuple_at(20.0).bottleneck_bandwidth_bps() > 1e6


def test_piecewise_trace_segments():
    trace = piecewise_trace([
        (5.0, 1e-3, 2e6, 0.0),
        (5.0, 50e-3, 0.1e6, 0.2),
    ])
    assert trace.duration == pytest.approx(10.0)
    assert trace.tuple_at(2.0).F == pytest.approx(1e-3)
    assert trace.tuple_at(7.0).F == pytest.approx(50e-3)
    assert trace.tuple_at(7.0).L == pytest.approx(0.2)


def test_piecewise_fractional_tail():
    trace = piecewise_trace([(2.5, 1e-3, 1e6, 0.0)], step=1.0)
    assert trace.duration == pytest.approx(2.5)
    assert trace.tuples[-1].d == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Compensation measurement (§3.3, Figure 1)
# ----------------------------------------------------------------------
def test_measured_vb_matches_ethernet_cost():
    measurement = measure_modulation_network(duration=15.0, seed=100)
    # 10 Mb/s Ethernet: 0.8 us/byte; host costs push it slightly above.
    assert measurement.vb == pytest.approx(0.8e-6, rel=0.25)
    assert 7e6 < measurement.bandwidth_bps < 11e6


def test_measurement_is_stable_across_seeds():
    a = measure_modulation_network(duration=15.0, seed=1)
    b = measure_modulation_network(duration=15.0, seed=2)
    assert a.vb == pytest.approx(b.vb, rel=0.15)


def test_measurement_latency_small():
    measurement = measure_modulation_network(duration=15.0, seed=100)
    assert measurement.latency < 2e-3
