"""Transport equivalence: envelope ≡ pickle ≡ serial, bit for bit.

The zero-copy envelope handoff moves results through a shared binary
store instead of the pool pipe; these tests pin the contract that the
data plane can never change a result — identical tables for any worker
count on either transport, and identical behaviour with a disk cache
underneath (where workers write artifacts straight into the pipeline's
own store).
"""

import pytest

from repro.pipeline import Pipeline
from repro.scenarios import PorterScenario, WeanScenario
from repro.validation.harness import FtpRunner
from repro.validation.parallel import run_validation


@pytest.fixture(scope="module")
def reference_sweep():
    runner = FtpRunner(nbytes=150_000, direction="send")
    scenarios = [PorterScenario(), WeanScenario()]
    sweep = run_validation(scenarios, runner, seed=0, trials=2,
                           baseline=True, workers=1)
    return runner, scenarios, sweep.render()


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("transport", ["envelope", "pickle"])
def test_transport_and_worker_count_change_nothing(reference_sweep,
                                                   workers, transport):
    runner, scenarios, reference = reference_sweep
    sweep = run_validation(scenarios, runner, seed=0, trials=2,
                           baseline=True, workers=workers,
                           transport=transport)
    assert sweep.render() == reference
    assert sweep.fallback_reason is None
    if workers > 1:
        assert sweep.workers_used > 1
        assert sweep.transport["transport"] == transport
        # results crossed the boundary: both transports account bytes
        assert sweep.transport["ipc_bytes_sent"] > 0


def test_envelope_moves_bulk_results_out_of_the_pipe(reference_sweep):
    """The envelope sweep's pipe traffic must be a small fraction of
    the pickle sweep's — bulk artifacts travel through the store."""
    runner, scenarios, reference = reference_sweep
    env = run_validation(scenarios, runner, seed=0, trials=2,
                         baseline=True, workers=2, transport="envelope")
    pick = run_validation(scenarios, runner, seed=0, trials=2,
                          baseline=True, workers=2, transport="pickle")
    assert env.render() == pick.render() == reference
    assert env.transport["envelope_count"] > 0
    assert pick.transport["envelope_count"] == 0
    env_pipe = (env.transport["ipc_bytes_sent"]
                + env.transport["ipc_bytes_recv"])
    pick_pipe = (pick.transport["ipc_bytes_sent"]
                 + pick.transport["ipc_bytes_recv"])
    assert env_pipe < pick_pipe / 4


def test_envelope_with_disk_cache_warm_rerun_zero_recompute(tmp_path):
    runner = FtpRunner(nbytes=120_000, direction="send")

    def sweep(pipeline):
        return run_validation([PorterScenario()], runner, seed=0,
                              trials=1, baseline=True, workers=2,
                              transport="envelope", cache=pipeline)

    cold = sweep(Pipeline(str(tmp_path)))
    assert cold.cache_misses > 0 and cold.cache_hits == 0
    # the envelope transport wrote binary-framed objects into the
    # pipeline's own store — no separate IPC staging copies
    assert list((tmp_path / "objects").glob("*/*.rba"))

    warm = sweep(Pipeline(str(tmp_path)))
    assert warm.cache_misses == 0 and warm.cache_hits > 0
    assert warm.render() == cold.render()
