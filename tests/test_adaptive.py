"""Tests for the adaptive application (§6 / the Odyssey use case)."""

import pytest

from repro.apps.adaptive import (
    AdaptiveFetcher,
    AdaptiveRun,
    BandwidthEstimator,
    FetchRecord,
    FIDELITY_BYTES,
    FidelityServer,
)
from repro.core import constant_trace, install_modulation, step_trace
from repro.hosts import ModulationWorld, SERVER_ADDR
from tests.conftest import run_to_completion


# ----------------------------------------------------------------------
# Estimator
# ----------------------------------------------------------------------
def test_estimator_first_sample_replaces_prior():
    est = BandwidthEstimator(initial_bps=1e6)
    est.observe(125_000, 1.0)  # 1 Mb/s measured
    assert est.estimate_bps == pytest.approx(1e6)
    est2 = BandwidthEstimator(initial_bps=1e6)
    est2.observe(250_000, 1.0)  # 2 Mb/s measured
    assert est2.estimate_bps == pytest.approx(2e6)


def test_estimator_ewma_converges():
    est = BandwidthEstimator(alpha=0.5)
    for _ in range(12):
        est.observe(125_000, 1.0)  # steady 1 Mb/s
    assert est.estimate_bps == pytest.approx(1e6, rel=0.01)


def test_estimator_tracks_downward_step():
    est = BandwidthEstimator(alpha=0.5)
    est.observe(250_000, 1.0)
    for _ in range(6):
        est.observe(25_000, 1.0)  # collapse to 0.2 Mb/s
    assert est.estimate_bps < 0.3e6


def test_estimator_validation():
    with pytest.raises(ValueError):
        BandwidthEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        BandwidthEstimator().observe(100, 0.0)


def test_predicted_fetch_time():
    est = BandwidthEstimator()
    est.observe(125_000, 1.0)  # 1 Mb/s
    assert est.predicted_fetch_time(125_000) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Fidelity choice
# ----------------------------------------------------------------------
def _fetcher_with_estimate(mod_world, bps):
    est = BandwidthEstimator()
    est.observe(int(bps / 8), 1.0)
    return AdaptiveFetcher(mod_world.laptop, SERVER_ADDR, budget=1.5,
                           headroom=0.8, estimator=est)


def test_high_bandwidth_selects_full(mod_world):
    fetcher = _fetcher_with_estimate(mod_world, 5e6)
    assert fetcher.choose_fidelity() == "full"


def test_medium_bandwidth_selects_medium(mod_world):
    fetcher = _fetcher_with_estimate(mod_world, 0.4e6)
    assert fetcher.choose_fidelity() == "medium"


def test_low_bandwidth_selects_low(mod_world):
    fetcher = _fetcher_with_estimate(mod_world, 0.08e6)
    assert fetcher.choose_fidelity() == "low"


def test_fidelity_sizes_are_ordered():
    assert FIDELITY_BYTES["full"] > FIDELITY_BYTES["medium"] \
        > FIDELITY_BYTES["low"]


# ----------------------------------------------------------------------
# Run log analysis
# ----------------------------------------------------------------------
def _rec(t, fidelity):
    return FetchRecord(started=t, fidelity=fidelity,
                       nbytes=FIDELITY_BYTES[fidelity], elapsed=0.5,
                       estimate_bps=1e6, missed_deadline=False)


def test_run_transitions_and_lag():
    run = AdaptiveRun(records=[_rec(0, "full"), _rec(2, "full"),
                               _rec(4, "low"), _rec(6, "low"),
                               _rec(8, "full")])
    assert run.transitions() == [(4, "full", "low"), (8, "low", "full")]
    assert run.adaptation_lag(3.0, "low") == pytest.approx(1.0)
    assert run.adaptation_lag(5.0, "full") == pytest.approx(3.0)
    assert run.adaptation_lag(9.0, "medium") is None
    assert run.fidelity_at(5.0) == "low"


# ----------------------------------------------------------------------
# End to end over a modulated network
# ----------------------------------------------------------------------
def test_adaptation_to_step_trace(mod_world):
    w = mod_world
    trace = step_trace(duration=60.0, period=15.0, latency=5e-3,
                       low_bandwidth_bps=0.12e6, high_bandwidth_bps=2e6)
    install_modulation(w.laptop, w.laptop_device, trace,
                       w.rngs.stream("mod"), compensation_vb=0.8e-6,
                       loop=True)
    FidelityServer(w.server).start()
    fetcher = AdaptiveFetcher(w.laptop, SERVER_ADDR, period=2.0)

    def body():
        result = yield from fetcher.run(58.0)
        return result

    run = run_to_completion(w, w.laptop.spawn(body()), cap=120.0)
    fidelities = {r.fidelity for r in run.records}
    # The square wave forces both extremes of the fidelity ladder.
    assert "full" in fidelities
    assert "low" in fidelities or "medium" in fidelities
    assert len(run.transitions()) >= 2  # adapted down and back up


def test_steady_fast_network_stays_full(mod_world):
    w = mod_world
    trace = constant_trace(duration=30.0, latency=2e-3, bandwidth_bps=3e6)
    install_modulation(w.laptop, w.laptop_device, trace,
                       w.rngs.stream("mod"), loop=True)
    FidelityServer(w.server).start()
    fetcher = AdaptiveFetcher(w.laptop, SERVER_ADDR, period=2.0)

    def body():
        result = yield from fetcher.run(20.0)
        return result

    run = run_to_completion(w, w.laptop.spawn(body()), cap=60.0)
    assert all(r.fidelity == "full" for r in run.records[1:])
    assert run.deadline_miss_ratio() < 0.2
