"""Unit tests for the drop-tail queue."""

import pytest
from hypothesis import given, strategies as st

from repro.net import DropTailQueue, Packet


def _pkt(n=100):
    return Packet(payload_bytes=n)


def test_offer_and_poll_fifo():
    q = DropTailQueue(max_packets=10)
    a, b = _pkt(), _pkt()
    q.offer(a)
    q.offer(b)
    assert q.poll() is a
    assert q.poll() is b
    assert q.poll() is None


def test_packet_limit_drops_tail():
    q = DropTailQueue(max_packets=2)
    assert q.offer(_pkt())
    assert q.offer(_pkt())
    assert not q.offer(_pkt())
    assert q.dropped == 1
    assert len(q) == 2


def test_byte_limit_drops_tail():
    q = DropTailQueue(max_packets=None, max_bytes=250)
    assert q.offer(_pkt(100))   # 114 bytes on the wire
    assert q.offer(_pkt(100))
    assert not q.offer(_pkt(100))
    assert q.dropped == 1


def test_needs_at_least_one_limit():
    with pytest.raises(ValueError):
        DropTailQueue(max_packets=None, max_bytes=None)


def test_byte_accounting_tracks_occupancy():
    q = DropTailQueue(max_packets=10)
    p = _pkt(100)
    q.offer(p)
    assert q.byte_length == p.size
    q.poll()
    assert q.byte_length == 0


def test_counters():
    q = DropTailQueue(max_packets=1)
    q.offer(_pkt())
    q.offer(_pkt())
    q.poll()
    assert (q.enqueued, q.dequeued, q.dropped) == (1, 1, 1)
    assert q.dropped_bytes > 0


def test_peek_does_not_remove():
    q = DropTailQueue(max_packets=5)
    p = _pkt()
    q.offer(p)
    assert q.peek() is p
    assert len(q) == 1


def test_empty_property():
    q = DropTailQueue(max_packets=5)
    assert q.empty
    q.offer(_pkt())
    assert not q.empty


@given(st.lists(st.integers(min_value=0, max_value=2000), max_size=60),
       st.integers(min_value=1, max_value=10))
def test_occupancy_never_exceeds_packet_limit(sizes, limit):
    q = DropTailQueue(max_packets=limit)
    for n in sizes:
        q.offer(_pkt(n))
        assert len(q) <= limit


@given(st.lists(st.integers(min_value=0, max_value=2000), max_size=60),
       st.integers(min_value=100, max_value=5000))
def test_occupancy_never_exceeds_byte_limit(sizes, limit):
    q = DropTailQueue(max_packets=None, max_bytes=limit)
    for n in sizes:
        q.offer(_pkt(n))
        assert q.byte_length <= limit


@given(st.lists(st.integers(min_value=0, max_value=2000), max_size=60))
def test_conservation_enqueued_equals_dequeued_plus_left(sizes):
    q = DropTailQueue(max_packets=7)
    for n in sizes:
        q.offer(_pkt(n))
    drained = 0
    while q.poll() is not None:
        drained += 1
    assert q.enqueued == drained
    assert q.enqueued + q.dropped == len(sizes)
