"""Unit tests for the modulation phase (§3.3)."""

import pytest

from repro.core.modulator import (
    ModulationDaemon,
    ModulationLayer,
    ReplayFeedDevice,
    install_modulation,
)
from repro.core.replay import QualityTuple, ReplayTrace
from repro.hosts import LAPTOP_ADDR, ModulationWorld, SERVER_ADDR
from repro.sim import Timeout


def _trace(F=10e-3, Vb=5e-6, Vr=1e-6, L=0.0, count=60, d=1.0, name="t"):
    return ReplayTrace(
        [QualityTuple(d=d, F=F, Vb=Vb, Vr=Vr, L=L) for _ in range(count)],
        name=name)


def _world_with_modulation(trace, compensation=0.0, loop=True, seed=3,
                           tick=0.010):
    world = ModulationWorld(seed=seed, tick_resolution=tick)
    layer = install_modulation(world.laptop, world.laptop_device, trace,
                               world.rngs.stream("mod"),
                               compensation_vb=compensation, loop=loop)
    return world, layer


def _measure_rtt(world, payload=1400, count=10, spacing=1.0):
    rtts = []

    def handler(pkt, now):
        rtts.append(now - pkt.meta["echo_sent_at"])

    world.laptop.icmp.on_echo_reply(9, handler)

    def pinger():
        for seq in range(count):
            world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq,
                                        payload)
            yield Timeout(spacing)

    world.laptop.spawn(pinger())
    world.run(until=count * spacing + 5.0)
    return rtts


# ----------------------------------------------------------------------
# Feed device + daemon
# ----------------------------------------------------------------------
def test_feed_device_capacity_enforced(mod_world):
    feed = ReplayFeedDevice(mod_world.laptop, capacity=4)
    feed.open()
    tuples = list(_trace(count=10))
    assert feed.write(tuples) == 4
    assert feed.free_slots == 0


def test_feed_write_requires_open(mod_world):
    feed = ReplayFeedDevice(mod_world.laptop, capacity=4)
    with pytest.raises(RuntimeError):
        feed.write(list(_trace(count=1)))


def test_feed_consumption_frees_space_and_signals(mod_world):
    feed = ReplayFeedDevice(mod_world.laptop, capacity=2)
    feed.open()
    feed.write(list(_trace(count=2)))
    fired = []
    feed.space_signal._add_waiter(type("W", (), {
        "_resume": lambda self, v: fired.append(True)})())
    assert feed.next_tuple() is not None
    mod_world.run(until=0.1)
    assert fired == [True]
    assert feed.free_slots == 1


def test_feed_underrun_counted(mod_world):
    feed = ReplayFeedDevice(mod_world.laptop, capacity=2)
    feed.open()
    assert feed.next_tuple() is None
    assert feed.underruns == 1


def test_daemon_blocks_until_space(mod_world):
    w = mod_world
    feed = ReplayFeedDevice(w.laptop, capacity=8)
    w.laptop.kernel.register_device(feed)
    feed.open()
    daemon = ModulationDaemon(w.laptop, _trace(count=100), device_name="mod0")
    proc = w.laptop.spawn(daemon.loop())
    w.run(until=1.0)
    assert proc.alive              # blocked: buffer full at 8
    assert feed.tuples_written == 8
    for _ in range(50):            # kernel consumes, daemon refills
        feed.next_tuple()
        w.run(until=w.sim.now + 0.01)
    assert feed.tuples_written >= 58


def test_daemon_single_pass_completes(mod_world):
    w = mod_world
    feed = ReplayFeedDevice(w.laptop, capacity=64)
    w.laptop.kernel.register_device(feed)
    feed.open()
    daemon = ModulationDaemon(w.laptop, _trace(count=10), device_name="mod0")
    proc = w.laptop.spawn(daemon.loop())
    w.run(until=1.0)
    assert not proc.alive
    assert daemon.passes_completed == 1


def test_daemon_loop_mode_keeps_feeding(mod_world):
    w = mod_world
    feed = ReplayFeedDevice(w.laptop, capacity=4)
    w.laptop.kernel.register_device(feed)
    feed.open()
    daemon = ModulationDaemon(w.laptop, _trace(count=4), device_name="mod0",
                              loop=True)
    proc = w.laptop.spawn(daemon.loop())
    for _ in range(20):
        feed.next_tuple()
        w.run(until=w.sim.now + 0.01)
    assert proc.alive
    assert daemon.passes_completed >= 2
    daemon.stop()


# ----------------------------------------------------------------------
# Delay model
# ----------------------------------------------------------------------
def test_rtt_matches_model_equation():
    trace = _trace(F=20e-3, Vb=5e-6, Vr=1e-6)
    world, layer = _world_with_modulation(trace)
    rtts = _measure_rtt(world, payload=1400, count=8)
    size = 1428
    expected = 2 * (20e-3 + size * 6e-6)
    assert rtts
    mean = sum(rtts) / len(rtts)
    # Tick rounding (±5 ms per direction) and the real Ethernet under
    # the emulation blur the exact value.
    assert mean == pytest.approx(expected, rel=0.2)


def test_latency_scales_with_packet_size():
    trace = _trace(F=5e-3, Vb=20e-6, Vr=0.0)
    world, layer = _world_with_modulation(trace)
    small = _measure_rtt(world, payload=64, count=5)
    world2, _ = _world_with_modulation(trace, seed=4)
    large = _measure_rtt(world2, payload=1400, count=5)
    assert sum(large) / len(large) > sum(small) / len(small) * 1.8


def test_total_loss_trace_drops_all_packets():
    trace = _trace(L=1.0)
    world, layer = _world_with_modulation(trace)
    rtts = _measure_rtt(world, count=5)
    assert rtts == []
    assert layer.out_dropped == 5


def test_dropped_packet_still_occupies_bottleneck():
    """Losses strike after the bottleneck queue (§3.3)."""
    trace = _trace(F=0.0, Vb=1e-3, Vr=0.0, L=1.0)  # huge per-byte cost
    world, layer = _world_with_modulation(trace)
    world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, 0, 1000)
    world.run(until=0.01)
    first_free = layer._bottleneck_free
    assert first_free > 0.0  # the doomed packet consumed bottleneck time


def test_unified_queue_inbound_outbound_interfere():
    trace = _trace(F=0.0, Vb=50e-6, Vr=0.0)
    world, layer = _world_with_modulation(trace)
    # Outbound packet occupies the bottleneck; an inbound packet
    # arriving meanwhile must wait behind it.
    world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, 0, 1400)
    world.run(until=2.0)
    # The echo reply came back inbound through the same queue: its
    # delay included bottleneck waiting, observable via sent counters.
    assert layer.out_packets == 1
    assert layer.in_packets == 1


def test_compensation_reduces_inbound_delay_only():
    trace = _trace(F=0.0, Vb=10e-6, Vr=0.0)
    world, layer = _world_with_modulation(trace, compensation=4e-6)
    world.run(until=0.1)  # let the feed daemon prime the kernel buffer
    world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, 0, 1400)
    world.run(until=2.0)
    # Outbound used full Vb (14.28 ms for 1428B), inbound 1428*6e-6.
    assert layer.delay_sum == pytest.approx(
        1428 * 10e-6 + 1428 * 6e-6, rel=0.35)


def test_small_delays_sent_immediately():
    trace = _trace(F=1e-3, Vb=0.0, Vr=0.0)  # 1 ms < half of 10 ms tick
    world, layer = _world_with_modulation(trace)
    _measure_rtt(world, payload=64, count=5)
    assert layer.sent_immediately == 10  # 5 out + 5 in


def test_delays_quantized_to_ticks():
    trace = _trace(F=23e-3, Vb=0.0, Vr=0.0)
    world, layer = _world_with_modulation(trace)
    rtts = _measure_rtt(world, payload=64, count=6)
    # Each direction rounds 23 ms to 20 ms -> RTT near 40 ms, plus the
    # real Ethernet's ~1 ms.
    assert rtts
    assert sum(rtts) / len(rtts) == pytest.approx(0.041, abs=0.004)


def test_finer_ticks_reduce_quantization_error():
    trace = _trace(F=23e-3, Vb=0.0, Vr=0.0)
    world, layer = _world_with_modulation(trace, tick=0.001)
    rtts = _measure_rtt(world, payload=64, count=6)
    assert sum(rtts) / len(rtts) == pytest.approx(0.047, abs=0.003)


def test_passthrough_before_any_tuples(mod_world):
    w = mod_world
    feed = ReplayFeedDevice(w.laptop, capacity=4)
    w.laptop.kernel.register_device(feed)
    feed.open()
    layer = ModulationLayer(w.laptop, w.laptop_device, feed,
                            w.rngs.stream("m"))
    layer.install()
    rtts = _measure_rtt(w, payload=64, count=3)
    assert rtts and max(rtts) < 0.005  # raw Ethernet speed


def test_tuple_advancement_follows_trace():
    # 1 s of 5 ms latency then 1 s of 50 ms latency, looping.
    tuples = [QualityTuple(d=2.0, F=5e-3, Vb=0, Vr=0, L=0),
              QualityTuple(d=2.0, F=50e-3, Vb=0, Vr=0, L=0)]
    trace = ReplayTrace(tuples)
    world, layer = _world_with_modulation(trace, loop=True)
    rtts = _measure_rtt(world, payload=64, count=8, spacing=0.5)
    assert min(rtts) < 0.02
    assert max(rtts) > 0.08


def test_install_twice_rejected():
    trace = _trace()
    world, layer = _world_with_modulation(trace)
    with pytest.raises(RuntimeError):
        layer.install()


def test_uninstall_restores_passthrough():
    trace = _trace(F=40e-3)
    world, layer = _world_with_modulation(trace)
    layer.uninstall()
    rtts = _measure_rtt(world, payload=64, count=3)
    assert max(rtts) < 0.005
