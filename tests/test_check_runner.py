"""End-to-end tests for the repro.check pipeline runner.

The smoke configuration (wean, 100 KB ftp-send, seed 0) is the exact
check CI runs on every push, so it must stay green here too — and the
mutation hook must both restore the kernel and actually be caught (see
test_check_mutation.py for the catch itself).
"""

from __future__ import annotations

import json

import pytest

from repro.check import (CheckReport, InvariantViolation, StageResult,
                         inject_tick_undershoot, smoke_check)
from repro.hosts.kernel import Kernel

pytestmark = pytest.mark.check


@pytest.fixture(scope="module")
def smoke_report():
    return smoke_check(seed=0)


def test_smoke_check_is_clean(smoke_report):
    assert smoke_report.ok, smoke_report.render()
    assert smoke_report.violations == []


def test_smoke_report_covers_all_stages(smoke_report):
    assert [s.stage for s in smoke_report.stages] == [
        "collect", "distill", "live", "modulated"]
    assert all(isinstance(s, StageResult) for s in smoke_report.stages)


def test_smoke_report_stage_info(smoke_report):
    by_stage = {s.stage: s.info for s in smoke_report.stages}
    assert by_stage["collect"]["records"] > 0
    assert by_stage["collect"]["spans"] > 0
    assert by_stage["distill"]["tuples"] > 0
    assert by_stage["modulated"]["modulated"] > 0


def test_report_serializes_to_json(smoke_report):
    blob = json.dumps(smoke_report.as_dict())
    data = json.loads(blob)
    assert data["scenario"] == "wean"
    assert data["ok"] is True
    assert len(data["stages"]) == 4
    assert all(s["violations"] == [] for s in data["stages"])


def test_report_renders_all_stages(smoke_report):
    text = smoke_report.render()
    for stage in ("collect", "distill", "live", "modulated"):
        assert stage in text
    assert "!!" not in text  # no violation lines on a clean run


def test_raise_if_violations():
    report = CheckReport(scenario="x", seed=0, trial=0)
    report.stages.append(StageResult("collect", []))
    report.raise_if_violations()  # clean: no raise
    boom = InvariantViolation("m", "i", "broken")
    report.stages.append(StageResult("live", [boom]))
    assert not report.ok
    with pytest.raises(InvariantViolation):
        report.raise_if_violations()


def test_inject_tick_undershoot_restores_kernel():
    original = Kernel.nearest_tick_at
    with inject_tick_undershoot():
        assert Kernel.nearest_tick_at is not original
    assert Kernel.nearest_tick_at is original


def test_inject_tick_undershoot_restores_on_error():
    original = Kernel.nearest_tick_at
    with pytest.raises(RuntimeError):
        with inject_tick_undershoot():
            raise RuntimeError("boom")
    assert Kernel.nearest_tick_at is original


def test_undershoot_shifts_rounding_one_tick_early(sim):
    from repro.hosts.kernel import Kernel as K
    kernel = K(sim)
    tick = kernel.tick_resolution
    clean = kernel.nearest_tick_at(3.7 * tick)
    with inject_tick_undershoot():
        assert kernel.nearest_tick_at(3.7 * tick) == \
            pytest.approx(clean - tick)
    assert kernel.nearest_tick_at(3.7 * tick) == pytest.approx(clean)
