"""Tests for the BPF-style trace filter language."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.filter import (
    FilterError,
    compile_filter,
    dump_records,
    filter_records,
)
from repro.core.traceformat import DIR_IN, DIR_OUT, DeviceStatusRecord, PacketRecord
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP


def _rec(ts=0.0, direction=DIR_OUT, proto=PROTO_ICMP, size=100,
         icmp_type=-1, seq=-1, ident=-1, rtt=-1.0, src="10.0.0.2",
         dst="10.0.0.1", src_port=-1, dst_port=-1):
    return PacketRecord(timestamp=ts, direction=direction, proto=proto,
                        size=size, src=src, dst=dst, icmp_type=icmp_type,
                        ident=ident, seq=seq, rtt=rtt, src_port=src_port,
                        dst_port=dst_port)


SAMPLE = [
    _rec(ts=0.0, proto=PROTO_ICMP, icmp_type=8, seq=0, size=88),
    _rec(ts=0.01, direction=DIR_IN, proto=PROTO_ICMP, icmp_type=0, seq=0,
         rtt=0.01, src="10.0.0.1", dst="10.0.0.2", size=88),
    _rec(ts=1.0, proto=PROTO_TCP, src_port=49152, dst_port=20, size=1500),
    _rec(ts=2.0, direction=DIR_IN, proto=PROTO_TCP, src_port=20,
         dst_port=49152, size=54, src="10.0.0.1", dst="10.0.0.2"),
    _rec(ts=3.0, proto=PROTO_UDP, src_port=1023, dst_port=2049, size=8400),
    DeviceStatusRecord(3.5, 18.0, 10.0, 3.0),
]


def _match(expr):
    return filter_records(SAMPLE, expr)


def test_protocol_primitives():
    assert len(_match("icmp")) == 2
    assert len(_match("tcp")) == 2
    assert len(_match("udp")) == 1


def test_direction_primitives():
    assert len(_match("out")) == 3
    assert len(_match("in")) == 2


def test_icmp_type_primitives():
    assert len(_match("echo")) == 1
    assert _match("echoreply")[0].rtt == pytest.approx(0.01)


def test_port_matches_either_side():
    assert len(_match("port 20")) == 2
    assert len(_match("port 2049")) == 1


def test_address_primitives():
    assert len(_match("src 10.0.0.1")) == 2
    assert len(_match("dst 10.0.0.1")) == 3


def test_numeric_comparisons():
    assert len(_match("size > 1000")) == 2
    assert len(_match("size <= 88")) == 3  # 2 icmp probes + tcp ack
    assert len(_match("seq == 0")) == 2
    assert len(_match("time >= 1 and time < 3")) == 2


def test_boolean_combinators():
    assert len(_match("icmp and out")) == 1
    assert len(_match("icmp or udp")) == 3
    assert len(_match("not icmp")) == 3
    assert len(_match("(icmp and in) or (tcp and out)")) == 2


def test_precedence_and_binds_tighter_than_or():
    # icmp or (tcp and in) -> 2 icmp + 1 tcp-in
    assert len(_match("icmp or tcp and in")) == 3


def test_non_packet_records_never_match():
    assert all(isinstance(r, PacketRecord) for r in _match("size >= 0"))


def test_relative_time_anchored_to_first_packet():
    shifted = [_rec(ts=100.0, icmp_type=8), _rec(ts=105.0, icmp_type=8)]
    assert len(filter_records(shifted, "time < 1")) == 1


def test_parse_errors():
    for bad in ("", "and", "icmp and", "size >", "port", "((icmp)",
                "icmp icmp", "bogus", "size ~ 3"):
        with pytest.raises(FilterError):
            compile_filter(bad)


def test_dump_format():
    text = dump_records(_match("icmp"))
    assert "echo seq=0" in text
    assert "echoreply seq=0 rtt=10.00ms" in text
    assert "->" in text and "<-" in text


def test_dump_limit():
    text = dump_records(_match("size >= 0"), limit=2)
    assert "3 more" in text


def test_filter_on_real_trace(live_world):
    from repro.apps.ping import ModifiedPing
    from repro.core import trace_collection_run
    from repro.hosts import SERVER_ADDR
    from tests.conftest import run_to_completion

    w = live_world
    daemon = trace_collection_run(w.laptop, w.radio)
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(5.0))
    run_to_completion(w, proc, cap=10.0)
    w.run(until=w.sim.now + 2.0)
    echoes = filter_records(daemon.records, "echo and out")
    replies = filter_records(daemon.records, "echoreply and in")
    assert len(echoes) == 15
    assert len(replies) == 15
    big = filter_records(daemon.records, "size > 1000")
    assert all(r.size > 1000 for r in big)


@given(st.lists(st.tuples(
    st.sampled_from([PROTO_ICMP, PROTO_TCP, PROTO_UDP]),
    st.sampled_from([DIR_IN, DIR_OUT]),
    st.integers(min_value=0, max_value=9000)), max_size=40))
def test_not_complements_any_expression(rows):
    records = [_rec(ts=float(i), proto=p, direction=d, size=s)
               for i, (p, d, s) in enumerate(rows)]
    for expr in ("icmp", "out", "size > 500", "tcp and in"):
        positive = filter_records(records, expr)
        negative = filter_records(records, f"not ({expr})")
        assert len(positive) + len(negative) == len(records)
        assert not (set(map(id, positive)) & set(map(id, negative)))
