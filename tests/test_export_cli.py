"""Tests for the netem/mahimahi exporters and the CLI."""

import os

import pytest

from repro.cli import main
from repro.core import ReplayTrace, constant_trace
from repro.core.export import (
    to_mahimahi_commands,
    to_mahimahi_trace,
    to_netem_script,
)
from repro.core.replay import QualityTuple


# ----------------------------------------------------------------------
# netem export
# ----------------------------------------------------------------------
def _two_phase_trace():
    return ReplayTrace([
        QualityTuple(d=2.0, F=5e-3, Vb=5e-6, Vr=1e-6, L=0.0),
        QualityTuple(d=3.0, F=50e-3, Vb=40e-6, Vr=2e-6, L=0.1),
    ], name="two-phase")


def test_netem_script_structure():
    script = to_netem_script(_two_phase_trace(), dev="eth1")
    assert script.startswith("#!/bin/sh")
    assert 'DEV="${1:-eth1}"' in script
    assert "tc qdisc add dev" in script
    assert "tc qdisc change dev" in script
    assert script.rstrip().endswith('tc qdisc del dev "$DEV" root')


def test_netem_script_encodes_tuples():
    script = to_netem_script(_two_phase_trace())
    # First tuple: 8/5e-6 = 1.6 Mb/s -> 1600 kbit; 5ms + 1500*1e-6.
    assert "rate 1600kbit" in script
    assert "delay 6.50ms" in script
    # Second tuple: 0.2 Mb/s, 53 ms, 10% loss.
    assert "rate 200kbit" in script
    assert "loss 10.000%" in script
    assert "sleep 2" in script and "sleep 3" in script


def test_netem_loop_mode():
    script = to_netem_script(_two_phase_trace(), loop=True)
    assert "while true; do" in script
    assert "tc qdisc del" in script  # only via the INT/TERM trap
    assert script.count("while true") == 1


def test_netem_zero_bottleneck_clamped():
    trace = ReplayTrace([QualityTuple(d=1.0, F=0, Vb=0, Vr=0, L=0)])
    script = to_netem_script(trace)
    assert "rate 10000000kbit" in script


# ----------------------------------------------------------------------
# Mahimahi export
# ----------------------------------------------------------------------
def test_mahimahi_trace_rate():
    # 1.2 Mb/s for 2 s: one 1500-byte opportunity per 10 ms -> 200 lines.
    trace = constant_trace(duration=2.0, latency=1e-3, bandwidth_bps=1.2e6,
                           residual_fraction=0.0)
    lines = to_mahimahi_trace(trace).strip().splitlines()
    assert len(lines) == pytest.approx(200, abs=3)
    values = [int(v) for v in lines]
    assert values == sorted(values)          # nondecreasing
    assert values[0] >= 1                    # mm-link forbids t=0


def test_mahimahi_trace_rate_change_visible():
    trace = ReplayTrace([
        QualityTuple(d=1.0, F=0, Vb=12e-6, Vr=0, L=0),   # ~0.67 Mb/s
        QualityTuple(d=1.0, F=0, Vb=3e-6, Vr=0, L=0),    # ~2.7 Mb/s
    ])
    values = [int(v) for v in to_mahimahi_trace(trace).split()]
    first_second = sum(1 for v in values if v < 1000)
    second_second = sum(1 for v in values if v >= 1000)
    assert second_second > first_second * 2.5


def test_mahimahi_commands():
    trace = constant_trace(duration=5.0, latency=30e-3, bandwidth_bps=1e6,
                           loss=0.02)
    cmd = to_mahimahi_commands(trace, "up.trace")
    assert cmd.startswith("mm-delay 30")
    assert "mm-loss uplink 0.0200" in cmd
    assert "mm-link up.trace up.trace" in cmd


def test_mahimahi_lossless_omits_mm_loss():
    trace = constant_trace(duration=5.0, latency=1e-3, bandwidth_bps=1e6)
    assert "mm-loss" not in to_mahimahi_commands(trace)


# ----------------------------------------------------------------------
# CLI (exercised through main(argv) — no subprocesses)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replay_file(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "replay.json")
    constant_trace(duration=30.0, latency=5e-3, bandwidth_bps=1.5e6,
                   loss=0.01).save(path)
    return path


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_info(replay_file, capsys):
    assert main(["info", replay_file]) == 0
    out = capsys.readouterr().out
    assert "30 tuples" in out
    assert "1.67 Mb/s" in out       # 8/Vb with Vb = 0.9 of total V
    assert "latency" in out


def test_cli_export_netem(replay_file, tmp_path, capsys):
    out_path = str(tmp_path / "trace.sh")
    assert main(["export", replay_file, "--format", "netem",
                 "--dev", "em0", "-o", out_path]) == 0
    with open(out_path) as f:
        content = f.read()
    assert "em0" in content and "netem" in content


def test_cli_export_mahimahi(replay_file, tmp_path, capsys):
    out_path = str(tmp_path / "trace.up")
    assert main(["export", replay_file, "--format", "mahimahi",
                 "-o", out_path]) == 0
    with open(out_path) as f:
        assert len(f.read().splitlines()) > 100
    assert "mm-link" in capsys.readouterr().out


def test_cli_collect_distill_roundtrip(tmp_path, capsys):
    trace_path = str(tmp_path / "mini.trace")
    replay_path = str(tmp_path / "mini.json")
    assert main(["collect", "--scenario", "porter", "--trial", "0",
                 "-o", trace_path]) == 0
    assert os.path.getsize(trace_path) > 1000
    assert main(["distill", trace_path, "-o", replay_path]) == 0
    out = capsys.readouterr().out
    assert "distilled" in out
    replay = ReplayTrace.load(replay_path)
    assert 0.8e6 < replay.mean_bandwidth_bps() < 1.8e6


def test_cli_characterize(capsys):
    assert main(["characterize", "--scenario", "wean", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "latency_ms" in out and "z4" in out


def test_cli_compensation(capsys):
    assert main(["compensation"]) == 0
    out = capsys.readouterr().out
    assert "us/byte" in out


def test_cli_validate_mini(capsys):
    rc = main(["validate", "--scenario", "flagstaff", "--benchmark", "web",
               "--trials", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Flagstaff" in out and "Real (s)" in out


def test_cli_analyze_with_filter(tmp_path, capsys):
    trace_path = str(tmp_path / "f.trace")
    assert main(["collect", "--scenario", "porter", "-o", trace_path]) == 0
    capsys.readouterr()
    assert main(["analyze", trace_path, "--filter", "echo and out"]) == 0
    out = capsys.readouterr().out
    assert "packets match" in out
    assert main(["analyze", trace_path, "--filter", "icmp",
                 "--dump", "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "more" in out and "icmp" in out
