"""Direct unit tests for the two-port learning bridge (WavePoint, §3.1.1).

The existing link tests only exercise the bridge against mocked ports;
these drive it through the real device pipeline — two Ethernet
segments, real transmit queues, frames serialized onto the wire — so
learning, flooding, same-side suppression and device-down drops are
all observed end to end.
"""

from __future__ import annotations

import pytest

from repro.net import (Bridge, EthernetDevice, EthernetSegment, IPHeader,
                       Packet, PROTO_ICMP)
from repro.sim import Simulator

A1, A2, B1 = "10.0.0.1", "10.0.0.3", "10.0.0.2"


def _ip_packet(src, dst, nbytes=1000):
    return Packet(ip=IPHeader(src, dst, PROTO_ICMP), payload_bytes=nbytes)


@pytest.fixture
def net():
    """Two segments joined by a bridge, one endpoint NIC per side."""
    sim = Simulator()
    seg_a = EthernetSegment(sim, name="seg-a")
    seg_b = EthernetSegment(sim, name="seg-b")
    port_a = EthernetDevice(sim, "wp-a", "wavepoint")
    port_b = EthernetDevice(sim, "wp-b", "wavepoint")
    seg_a.attach(port_a)
    seg_b.attach(port_b)
    bridge = Bridge(port_a, port_b, name="wp1")
    a1 = EthernetDevice(sim, "a1", A1)
    b1 = EthernetDevice(sim, "b1", B1)
    seg_a.attach(a1)
    seg_b.attach(b1)
    return sim, bridge, seg_a, seg_b, a1, b1


def test_unknown_destination_is_flooded_across(net):
    sim, bridge, seg_a, seg_b, a1, b1 = net
    a1.send(_ip_packet(A1, B1))
    sim.run()
    assert b1.rx_packets == 1
    assert bridge.forwarded == 1
    assert bridge.flooded == 1  # destination not in the table yet


def test_bridge_learns_source_port(net):
    sim, bridge, _, _, a1, b1 = net
    a1.send(_ip_packet(A1, B1))
    sim.run()
    assert bridge.learned_addresses() == {A1: "wp-a"}
    b1.send(_ip_packet(B1, A1))
    sim.run()
    assert bridge.learned_addresses() == {A1: "wp-a", B1: "wp-b"}


def test_known_destination_forwards_without_flooding(net):
    sim, bridge, _, _, a1, b1 = net
    a1.send(_ip_packet(A1, B1))
    b1.send(_ip_packet(B1, A1))
    sim.run()
    flooded_before = bridge.flooded
    a1.send(_ip_packet(A1, B1))
    sim.run()
    assert b1.rx_packets == 2
    assert bridge.flooded == flooded_before  # B1 now known on wp-b
    assert bridge.forwarded == 3


def test_same_side_traffic_is_suppressed(net):
    sim, bridge, seg_a, _, a1, b1 = net
    a2 = EthernetDevice(sim, "a2", A2)
    seg_a.attach(a2)
    a2.send(_ip_packet(A2, B1))  # teach the bridge A2 lives on wp-a
    sim.run()
    forwarded_before = bridge.forwarded
    a1.send(_ip_packet(A1, A2))  # same-side: must not cross the bridge
    sim.run()
    assert a2.rx_packets >= 1            # delivered on its own segment
    assert bridge.forwarded == forwarded_before
    assert b1.rx_packets == 1            # only A2's earlier flood


def test_non_ip_frames_forward_without_learning(net):
    sim, bridge, _, _, a1, b1 = net
    a1.send(Packet(payload_bytes=200))
    sim.run()
    assert bridge.forwarded == 1
    assert bridge.flooded == 0
    assert bridge.learned_addresses() == {}
    assert b1.rx_packets == 1  # segment floods the addressless frame


def test_downed_egress_port_drops_frames(net):
    sim, bridge, _, _, a1, b1 = net
    bridge.port_b.up = False
    a1.send(_ip_packet(A1, B1))
    sim.run()
    assert bridge.forwarded == 1          # the bridge did forward it
    assert bridge.port_b.tx_drops == 1    # the dead NIC swallowed it
    assert b1.rx_packets == 0


def test_downed_ingress_port_never_sees_frames(net):
    sim, bridge, _, _, a1, b1 = net
    bridge.port_a.up = False
    a1.send(_ip_packet(A1, B1))
    sim.run()
    assert bridge.forwarded == 0
    assert b1.rx_packets == 0
    assert bridge.learned_addresses() == {}
