"""Meta tests on the public API surface.

Documentation and structural invariants, enforced mechanically:

* every public module, class and function carries a docstring;
* ``repro.__all__`` names resolve;
* the model module stays independent of distiller and modulator
  (the paper's separability claim, §3.2).
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro.sim", "repro.net", "repro.protocols", "repro.hosts",
    "repro.core", "repro.apps", "repro.workloads", "repro.scenarios",
    "repro.validation", "repro.analysis",
]


def _public_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__):
            if not info.name.startswith("_"):
                yield importlib.import_module(f"{pkg_name}.{info.name}")


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_every_module_has_docstring():
    for module in _public_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_public_methods_documented_in_core():
    """Every public method of the paper's core classes is documented."""
    from repro.core import (
        Distiller,
        ModulationLayer,
        PacketTracer,
        ReplayTrace,
    )

    missing = []
    for cls in (Distiller, ModulationLayer, PacketTracer, ReplayTrace):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            if not (getattr(member, "__doc__", None) or "").strip():
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, missing


def test_model_is_separable_from_methodology():
    """§3.2: the network model must not *import* distill/modulate."""
    import ast

    import repro.core.replay as replay_module

    tree = ast.parse(inspect.getsource(replay_module))
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imported.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            imported.add(node.module or "")
    forbidden = {"distill", "modulator", "collection", "compensation"}
    for name in imported:
        assert not (set(name.split(".")) & forbidden), name


def test_version_consistency():
    import importlib.metadata

    assert repro.__version__ == "1.0.0"
    try:
        installed = importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        installed = None
    if installed is not None:
        assert installed == repro.__version__
