"""Unit tests for the trace collection machinery (§3.1)."""

import pytest

from repro.apps.ping import ModifiedPing
from repro.core.collection import (
    CircularTraceBuffer,
    CollectionDaemon,
    PacketTracer,
    trace_collection_run,
)
from repro.core.traceformat import (
    DIR_IN,
    DIR_OUT,
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
)
from repro.hosts import LAPTOP_ADDR, SERVER_ADDR


def _rec(i=0):
    return PacketRecord(timestamp=float(i), direction=DIR_OUT, proto=1,
                        size=64, seq=i)


# ----------------------------------------------------------------------
# Circular buffer
# ----------------------------------------------------------------------
def test_buffer_appends_and_drains_in_order():
    buf = CircularTraceBuffer(capacity=10)
    for i in range(3):
        buf.append(_rec(i))
    assert [r.seq for r in buf.drain()] == [0, 1, 2]
    assert len(buf) == 0


def test_buffer_overrun_evicts_oldest():
    buf = CircularTraceBuffer(capacity=2)
    for i in range(5):
        buf.append(_rec(i))
    drained = buf.drain()
    # Leading lost_records entry, then the surviving two records.
    assert isinstance(drained[0], LostRecordsRecord)
    assert drained[0].count == 3
    assert [r.seq for r in drained[1:]] == [3, 4]


def test_buffer_tracks_losses_by_type():
    buf = CircularTraceBuffer(capacity=1)
    buf.append(_rec())
    buf.append(DeviceStatusRecord(0.0, 1.0, 1.0, 1.0))  # evicts the packet
    buf.append(_rec())  # evicts the status
    lost = {r.record_type: r.count for r in buf.drain()
            if isinstance(r, LostRecordsRecord)}
    assert lost == {"packet": 1, "device_status": 1}


def test_buffer_drain_with_limit():
    buf = CircularTraceBuffer(capacity=10)
    for i in range(5):
        buf.append(_rec(i))
    first = buf.drain(max_records=2)
    assert [r.seq for r in first] == [0, 1]
    assert len(buf) == 3


def test_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        CircularTraceBuffer(capacity=0)


def test_buffer_counters():
    buf = CircularTraceBuffer(capacity=2)
    for i in range(4):
        buf.append(_rec(i))
    assert buf.total_appended == 4
    assert buf.total_lost == 2


# ----------------------------------------------------------------------
# Tracer + pseudo-device
# ----------------------------------------------------------------------
def test_tracing_disabled_until_device_opened(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio)
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    assert tracer.packets_traced == 0


def test_open_enables_close_disables(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio)
    dev = tracer.pseudo_device
    dev.open()
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    traced_while_open = tracer.packets_traced
    dev.close()
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 1, 64)
    w.run(until=2.0)
    assert traced_while_open == 2  # echo out + reply in
    assert tracer.packets_traced == traced_while_open


def test_read_requires_open(live_world):
    tracer = PacketTracer(live_world.laptop, live_world.radio)
    with pytest.raises(RuntimeError):
        tracer.pseudo_device.read()


def test_packet_records_capture_both_directions(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio)
    tracer.pseudo_device.open()
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 4, 64)
    w.run(until=1.0)
    records = tracer.pseudo_device.read()
    directions = [r.direction for r in records]
    assert directions == [DIR_OUT, DIR_IN]
    assert all(r.seq == 4 for r in records)


def test_echoreply_record_has_single_clock_rtt(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio)
    tracer.pseudo_device.open()
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    w.laptop.spawn(ping.run(2.0))
    w.run(until=4.0)
    replies = [r for r in tracer.pseudo_device.read()
               if isinstance(r, PacketRecord) and r.icmp_type == 0]
    assert replies
    assert all(0.0 < r.rtt < 1.0 for r in replies)


def test_status_sampling_produces_periodic_records(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio, status_period=1.0)
    tracer.pseudo_device.open()
    tracer.start_status_sampling()
    w.run(until=5.5)
    statuses = [r for r in tracer.pseudo_device.read()
                if isinstance(r, DeviceStatusRecord)]
    assert 4 <= len(statuses) <= 7
    assert all(s.signal_level > 0 for s in statuses)


def test_timestamps_use_host_clock_not_sim_clock(live_world):
    w = live_world  # laptop clock drifts by default
    tracer = PacketTracer(w.laptop, w.radio)
    tracer.pseudo_device.open()

    def late_ping():
        from repro.sim import Timeout
        yield Timeout(50.0)
        w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)

    w.laptop.spawn(late_ping())
    w.run(until=52.0)
    (record, *_) = tracer.pseudo_device.read()
    assert record.timestamp != pytest.approx(50.0, abs=1e-9)
    assert record.timestamp == pytest.approx(50.0, abs=0.1)


def test_non_ip_packets_ignored(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio)
    tracer.pseudo_device.open()
    from repro.net import Packet
    w.radio.send(Packet(payload_bytes=10))  # no IP header
    w.run(until=1.0)
    assert tracer.packets_ignored >= 1
    assert tracer.packets_traced == 0


# ----------------------------------------------------------------------
# Daemon
# ----------------------------------------------------------------------
def test_daemon_accumulates_records(live_world):
    w = live_world
    daemon = trace_collection_run(w.laptop, w.radio)
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    w.laptop.spawn(ping.run(5.0))
    w.run(until=8.0)
    packets = [r for r in daemon.records if isinstance(r, PacketRecord)]
    statuses = [r for r in daemon.records if isinstance(r, DeviceStatusRecord)]
    assert len(packets) >= 20
    assert len(statuses) >= 4


def test_daemon_stop_drains_remaining(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio)
    daemon = CollectionDaemon(w.laptop, tracer.pseudo_device.name,
                              drain_period=10.0)  # slow drain on purpose
    proc = w.laptop.spawn(daemon.loop())
    w.run(until=0.5)
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    daemon.stop()
    w.run(until=12.0)
    assert not proc.alive
    assert any(isinstance(r, PacketRecord) for r in daemon.records)


def test_small_buffer_overrun_is_reported(live_world):
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio, buffer_capacity=4)
    tracer.pseudo_device.open()
    for i in range(20):
        w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, i, 32)
    w.run(until=2.0)
    records = tracer.pseudo_device.read()
    lost = [r for r in records if isinstance(r, LostRecordsRecord)]
    assert lost and lost[0].count > 0
