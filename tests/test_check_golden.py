"""Golden-master regression tests and differ unit tests.

The per-scenario comparison regenerates each artifact in memory at the
pinned seed and demands a byte-identical match against the checked-in
corpus — the determinism contract made enforceable.  When a behaviour
change is intentional, regenerate with ``repro check --regen-golden``
and review the diff like any other code change (docs/TESTING.md).
"""

from __future__ import annotations

import pytest

from repro.check import (DEFAULT_GOLDEN_DIR, compare, diff_replay,
                         diff_text, golden_replay)
from repro.check.golden import scenario_names
from repro.core.replay import QualityTuple, ReplayTrace

pytestmark = pytest.mark.check


# ----------------------------------------------------------------------
# Corpus regression (one scenario per test so failures localize)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", scenario_names())
def test_golden_corpus_matches(name):
    diffs = compare(scenarios=[name])
    assert diffs == {}, "\n".join(
        f"{artifact}: {d}" for artifact, ds in diffs.items() for d in ds)


def test_corpus_is_checked_in():
    for name in scenario_names():
        assert (DEFAULT_GOLDEN_DIR / f"{name}.replay.json").exists()
        assert (DEFAULT_GOLDEN_DIR / f"{name}.table.txt").exists()


def test_missing_golden_reported(tmp_path):
    diffs = compare(directory=tmp_path, scenarios=["wean"])
    assert diffs == {
        "wean.replay.json": ["golden file missing"],
        "wean.table.txt": ["golden file missing"],
    }


def test_golden_replay_is_deterministic():
    a = golden_replay("wean")
    b = golden_replay("wean")
    assert a.to_json() == b.to_json()


# ----------------------------------------------------------------------
# diff_text
# ----------------------------------------------------------------------
def test_diff_text_identical():
    assert diff_text("a 1.5 b\n", "a 1.5 b\n") == []


def test_diff_text_exact_mode_reports_lines():
    diffs = diff_text("one\ntwo\nthree", "one\nTWO\nthree", rtol=0.0)
    assert len(diffs) == 1 and "line 2" in diffs[0]


def test_diff_text_exact_mode_missing_line():
    diffs = diff_text("one\ntwo", "one")
    assert diffs == ["line 2: expected 'two', got '<missing>'"]


def test_diff_text_rtol_accepts_close_numbers():
    assert diff_text("rtt 10.00 ms", "rtt 10.05 ms", rtol=0.01) == []


def test_diff_text_rtol_rejects_far_numbers():
    diffs = diff_text("rtt 10.00 ms", "rtt 12.00 ms", rtol=0.01)
    assert len(diffs) == 1 and "rtol" in diffs[0]


def test_diff_text_rtol_rejects_structure_change():
    diffs = diff_text("rtt 10.00 ms", "delay 10.00 ms", rtol=0.5)
    assert len(diffs) == 1 and "structure" in diffs[0]


def test_diff_text_label_prefixes():
    diffs = diff_text("a", "b", label="wean")
    assert all(d.startswith("wean: ") for d in diffs)


# ----------------------------------------------------------------------
# diff_replay
# ----------------------------------------------------------------------
def _trace(*tuples):
    return ReplayTrace(list(tuples))


def test_diff_replay_identical():
    t = QualityTuple(d=2.0, F=0.02, Vb=1e-5, Vr=1e-6, L=0.1)
    assert diff_replay(_trace(t, t), _trace(t, t)) == []


def test_diff_replay_length_mismatch():
    t = QualityTuple(d=2.0, F=0.02, Vb=1e-5, Vr=1e-6, L=0.1)
    diffs = diff_replay(_trace(t, t), _trace(t))
    assert diffs == ["1 tuples != expected 2"]


def test_diff_replay_field_mismatch():
    a = QualityTuple(d=2.0, F=0.02, Vb=1e-5, Vr=1e-6, L=0.1)
    b = QualityTuple(d=2.0, F=0.03, Vb=1e-5, Vr=1e-6, L=0.1)
    diffs = diff_replay(_trace(a), _trace(b))
    assert len(diffs) == 1 and "tuple 0.F" in diffs[0]


def test_diff_replay_rtol_tolerates_drift():
    a = QualityTuple(d=2.0, F=0.0200, Vb=1e-5, Vr=1e-6, L=0.1)
    b = QualityTuple(d=2.0, F=0.0201, Vb=1e-5, Vr=1e-6, L=0.1)
    assert diff_replay(_trace(a), _trace(b), rtol=0.01) == []
    assert diff_replay(_trace(a), _trace(b), rtol=1e-5) != []
