"""Sweep-scope telemetry tests (repro.obs.telemetry).

The expensive case — one real 2-worker sweep with a SweepTelemetry
attached — is run once per module and doubles as the acceptance check:
the merged Chrome trace must validate with one track per worker pid,
the tables must be byte-identical to an un-instrumented run, and the
transport stats must surface fallback/pool state.  Everything else
(ledger, Prometheus grammar, progress, profiling, span codec) is unit
tested against synthetic data.
"""

import io
import json
import re

import pytest

from repro.cli import main
from repro.obs import (
    LEDGER_SCHEMA,
    MetricsRegistry,
    ObsConfig,
    RunLedger,
    SweepProgress,
    SweepTelemetry,
    aggregate_profiles,
    fold_records,
    merged_chrome_trace,
    read_jsonl,
    render_profile_table,
    sweep_ledger_record,
    sweep_registry,
    validate_chrome_trace,
)
from repro.obs import telemetry as tmod
from repro.scenarios import WeanScenario
from repro.validation.harness import FtpRunner, run_live_trial
from repro.validation.parallel import TrialExecutor, run_validation

RUNNER = FtpRunner(nbytes=120_000, direction="send")


# ----------------------------------------------------------------------
# One real instrumented 2-worker sweep, shared by the e2e tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def instrumented_sweep():
    telemetry = SweepTelemetry()
    progress = SweepProgress(stream=io.StringIO(), label="test")
    sweep = run_validation(WeanScenario(), RUNNER, seed=0, trials=1,
                           workers=2, obs=ObsConfig(),
                           telemetry=telemetry, progress=progress)
    plain = run_validation(WeanScenario(), RUNNER, seed=0, trials=1,
                           workers=2)
    return sweep, plain, telemetry, progress


def test_sweep_timeline_has_one_track_per_worker_pid(instrumented_sweep):
    sweep, _, telemetry, _ = instrumented_sweep
    if sweep.workers_used < 2:
        pytest.skip("pool fell back to serial on this machine")
    doc = telemetry.to_chrome_trace()
    validate_chrome_trace(doc)
    worker_tracks = [e for e in doc["traceEvents"]
                     if e.get("name") == "process_name"
                     and e["args"]["name"].startswith("worker pid ")]
    assert len(worker_tracks) >= 2
    assert len(telemetry.worker_pids()) >= 2
    # Worker stages made it across the pipe as codec frames.
    stages = telemetry.stage_totals()
    for stage in ("chunk", "queue", "live", "modulated"):
        assert stages[stage]["count"] > 0, stage
    assert 0.0 < telemetry.utilization()["utilization"] <= 1.0


def test_merged_timeline_validates(instrumented_sweep):
    _, _, telemetry, _ = instrumented_sweep
    groups = [("live:demo", [
        {"host": "mobile", "layer": "tcp", "event": "send", "t": 0.001}])]
    doc = merged_chrome_trace(telemetry, groups)
    validate_chrome_trace(doc)
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "process_name"}
    assert any(n.startswith("worker pid ") or n.startswith("parent pid ")
               for n in names)
    assert "live:demo:mobile" in names


def test_telemetry_off_tables_byte_identical(instrumented_sweep):
    sweep, plain, _, _ = instrumented_sweep
    assert sweep.render() == plain.render()
    assert sweep.telemetry is not None
    assert plain.telemetry is None


def test_transport_stats_surface_fallback_state(instrumented_sweep):
    sweep, _, _, _ = instrumented_sweep
    transport = sweep.transport
    assert "fallback_reasons" in transport
    assert "pool_broken" in transport
    assert isinstance(transport["fallback_reasons"], list)
    assert transport["pool_broken"] in (False, True)
    assert sweep.as_dict()["telemetry"]["spans"] > 0


def test_progress_counts_every_trial(instrumented_sweep):
    sweep, _, _, progress = instrumented_sweep
    assert progress.total == progress.done
    # 1 trial x (collection + live + modulated) for the send-only runner.
    assert progress.done >= 3
    out = progress.stream.getvalue()
    assert "test" in out and f"{progress.done}/{progress.total}" in out


def test_sweep_registry_renders_prometheus(instrumented_sweep):
    sweep, _, telemetry, _ = instrumented_sweep
    text = sweep_registry(sweep, telemetry=telemetry).render_prometheus()
    assert "repro_sweep_workers_used" in text
    assert "repro_sweep_stage_chunk_wall_ms_total" in text
    _assert_prometheus_grammar(text)


# ----------------------------------------------------------------------
# Span capture + wire codec (unit)
# ----------------------------------------------------------------------
def test_disabled_capture_records_nothing():
    assert not tmod.capture_active()
    assert tmod.span_begin() is None
    tmod.span_end(None, "stage")          # no-op, must not raise
    tmod.record_point("stage", "label")   # no-op, must not raise
    assert tmod.capture_end() == []


def test_capture_and_span_wire_round_trip():
    tmod.capture_begin("sweep-1")
    try:
        token = tmod.span_begin()
        assert token is not None
        tmod.span_end(token, "live", "wean:0", trial=0)
        tmod.record_point("fallback", "broken", reason="test")
    finally:
        spans = tmod.capture_end()
    assert not tmod.capture_active()
    assert [s["stage"] for s in spans] == ["live", "fallback"]
    assert spans[0]["trial"] == 0 and spans[0]["dur"] >= 0
    packed = tmod.pack_spans(spans)
    assert packed["v"] == tmod.SPAN_SCHEMA
    assert tmod.unpack_spans(packed) == spans


# ----------------------------------------------------------------------
# Run ledger
# ----------------------------------------------------------------------
def test_ledger_append_round_trip_and_schema(tmp_path):
    ledger = RunLedger(str(tmp_path / "run"))
    stamped = ledger.append({"kind": "validate", "workers": 2})
    assert stamped["schema"] == LEDGER_SCHEMA == 1
    ledger.append({"kind": "bench"})
    records = ledger.read()
    assert [r["kind"] for r in records] == ["validate", "bench"]
    for record in records:
        assert record["schema"] == LEDGER_SCHEMA
        assert record["ts"] > 0


def test_ledger_read_missing_file_is_empty(tmp_path):
    assert RunLedger(str(tmp_path / "empty")).read() == []


def test_sweep_ledger_record_schema(instrumented_sweep):
    sweep, _, telemetry, _ = instrumented_sweep
    table = sweep.render()
    record = sweep_ledger_record(sweep, command="validate",
                                 scenario="wean", seed=0, trials=1,
                                 wall_s=1.25, cpu_s=2.5, table=table,
                                 telemetry=telemetry)
    # Schema stability: these keys are the contract CI artifacts rely on.
    assert set(record) >= {"kind", "benchmark", "scenario", "scenarios",
                           "seed", "trials", "workers", "transport",
                           "cache", "wall_s", "cpu_s", "table_sha256",
                           "engine", "telemetry"}
    assert record["table_sha256"] == tmod.table_digest(table)
    assert record["engine"]["events_fired"] > 0
    assert record["engine"]["events_per_sec"] > 0
    assert record["telemetry"]["spans"] == len(telemetry.spans)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE.+-]+(\s[0-9]+)?)$")


def _assert_prometheus_grammar(text):
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line:
            continue
        assert PROM_LINE.match(line), f"bad exposition line: {line!r}"


def test_render_prometheus_grammar_and_types():
    registry = MetricsRegistry()
    registry.counter("engine.events_fired", help="Fired\nevents").inc(7)
    registry.gauge("pool.utilization").set(0.5)
    registry.histogram("rtt.ms", edges=[1.0, 10.0]).observe(3.0)
    registry.add_collector(lambda: {"wean.ftp-recv.drops": 2.0})
    text = registry.render_prometheus(prefix="repro")
    _assert_prometheus_grammar(text)
    assert "# TYPE repro_engine_events_fired_total counter" in text
    assert "repro_engine_events_fired_total 7" in text
    assert "repro_pool_utilization 0.5" in text
    assert 'repro_rtt_ms_bucket{le="+Inf"} 1' in text
    assert "repro_rtt_ms_count 1" in text
    # Dashes sanitize to underscores; newline in help is escaped.
    assert "repro_wean_ftp_recv_drops 2" in text
    assert "Fired\\nevents" in text


def test_add_collector_key_is_idempotent():
    registry = MetricsRegistry()
    registry.add_collector(lambda: {"x": 1.0}, key="pipeline")
    registry.add_collector(lambda: {"x": 2.0}, key="pipeline")
    registry.add_collector(lambda: {"y": 3.0})
    snap = registry.snapshot()["collected"]
    assert snap["x"] == 2.0 and snap["y"] == 3.0


def test_fold_records_sums_engine_counters():
    records = [
        {"kind": "live", "engine": {"events_fired": 10,
                                    "events_scheduled": 12,
                                    "wall_time": 0.5},
         "drops": {"weak": 1}},
        {"kind": "live", "engine": {"events_fired": 30,
                                    "events_scheduled": 31,
                                    "wall_time": 0.5},
         "drops": {"weak": 2}},
    ]
    snap = fold_records(MetricsRegistry(), records).snapshot()
    counters = snap["counters"]
    assert counters["trials.live"] == 2
    assert counters["engine.events_fired"] == 40
    assert counters["drops.weak"] == 3
    assert snap["gauges"]["engine.events_per_sec"] == 40.0


# ----------------------------------------------------------------------
# Fallback bookkeeping (unit)
# ----------------------------------------------------------------------
def test_note_fallback_dedupes_and_marks_pool():
    exe = TrialExecutor(workers=1)
    try:
        exe._note_fallback("codec error")
        exe._note_fallback("codec error")
        exe._mark_broken()
        stats = exe.transport_stats()
        assert stats["fallback_reasons"] == ["codec error",
                                             "process pool broke"]
        assert stats["pool_broken"] is True
        # Every fallback counts (2 codec + the pool break), but the
        # reason list stays deduped.
        assert stats["serial_fallbacks"] == 3
    finally:
        exe.shutdown()


# ----------------------------------------------------------------------
# Per-trial profiling
# ----------------------------------------------------------------------
def test_profile_record_and_aggregation():
    sink = run_live_trial(WeanScenario(), RUNNER, seed=0, trial=0,
                          obs=ObsConfig(profile=True, profile_top=5))
    record = sink["__obs__"]
    rows = record["profile"]
    assert 0 < len(rows) <= 5
    assert all({"func", "ncalls", "tottime", "cumtime"} <= set(r)
               for r in rows)
    merged = aggregate_profiles([record, record], top=3)
    assert len(merged) <= 3
    assert merged[0]["trials"] == 2
    assert merged[0]["tottime"] == pytest.approx(2 * rows[0]["tottime"])
    table = render_profile_table(merged)
    assert "Aggregated trial profile" in table


def test_profile_token_keeps_unprofiled_fingerprints_stable():
    default = ObsConfig()
    base = default.cache_token()
    # The unprofiled token must stay exactly the pre-telemetry dataclass
    # shape, or every cached artifact fingerprint changes.
    assert base == {"__dataclass__": "ObsConfig",
                    "metrics": default.metrics, "trace": default.trace,
                    "spans": default.spans,
                    "span_limit": default.span_limit}
    profiled = ObsConfig(profile=True).cache_token()
    assert profiled != base
    assert {k: v for k, v in profiled.items()
            if k not in ("profile", "profile_top")} == base


# ----------------------------------------------------------------------
# Progress rendering (unit)
# ----------------------------------------------------------------------
def test_progress_plain_stream_lines():
    stream = io.StringIO()
    progress = SweepProgress(stream=stream, label="ftp",
                             plain_interval=0.0)
    progress.add_total(4)
    progress.set_workers(2)
    progress.cache_hit()
    progress.completed(3)
    progress.finish()
    out = stream.getvalue()
    assert "\r" not in out                    # non-TTY: plain lines only
    assert "[ftp] 4/4 trials (1 cached) workers=2" in out.splitlines()[-1]


# ----------------------------------------------------------------------
# repro metrics (CLI)
# ----------------------------------------------------------------------
def test_metrics_subcommand_emits_prometheus(tmp_path, capsys):
    path = str(tmp_path / "metrics.jsonl")
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps({"kind": "live",
                            "engine": {"events_fired": 5,
                                       "wall_time": 0.1}}) + "\n")
    assert main(["metrics", path]) == 0
    out = capsys.readouterr().out
    _assert_prometheus_grammar(out)
    assert "repro_trials_live_total 1" in out
    assert "repro_engine_events_fired_total 5" in out
    assert read_jsonl(path)  # input untouched
