"""Unit tests for the figure helpers in repro.validation.figures.

``fetch_store_gap`` and ``checkpoint_ranges`` are pure functions over
hand-built inputs here, so their math is pinned independently of any
simulation; the slow-network check at the end pins the one Figure-1
property the paper leans on — compensation closes the fetch/store gap
— on the real pipeline at a fixed seed.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.validation.figures import (MB, CompensationPoint, Figure1Result,
                                      ScenarioCharacterization,
                                      figure1_slow_network_check)
from repro.scenarios.base import Checkpoint, Scenario


# ----------------------------------------------------------------------
# Figure1Result.fetch_store_gap
# ----------------------------------------------------------------------
def _point(size, direction, compensated, throughput_bps):
    return CompensationPoint(size_bytes=size, direction=direction,
                             compensated=compensated,
                             elapsed=size * 8.0 / throughput_bps)


def test_throughput_from_elapsed():
    p = _point(MB, "store", True, 2e6)
    assert p.throughput_bps == pytest.approx(2e6)


def test_fetch_store_gap_mean_of_relative_gaps():
    fig = Figure1Result(points=[
        _point(MB, "store", False, 100.0),
        _point(MB, "fetch", False, 80.0),       # gap 0.20
        _point(2 * MB, "store", False, 200.0),
        _point(2 * MB, "fetch", False, 150.0),  # gap 0.25
    ])
    assert fig.fetch_store_gap(compensated=False) == pytest.approx(0.225)


def test_fetch_store_gap_ignores_unmatched_sizes():
    fig = Figure1Result(points=[
        _point(MB, "store", True, 100.0),
        _point(MB, "fetch", True, 90.0),        # gap 0.10
        _point(4 * MB, "store", True, 100.0),   # no fetch at 4 MB
    ])
    assert fig.fetch_store_gap(compensated=True) == pytest.approx(0.10)


def test_fetch_store_gap_empty_is_zero():
    assert Figure1Result().fetch_store_gap(compensated=True) == 0.0


def test_curve_filters_and_sorts():
    fig = Figure1Result(points=[
        _point(2 * MB, "store", True, 200.0),
        _point(MB, "store", True, 100.0),
        _point(MB, "fetch", True, 80.0),
        _point(MB, "store", False, 90.0),
    ])
    curve = fig.curve("store", compensated=True)
    assert [s for s, _ in curve] == [MB, 2 * MB]
    assert curve[0][1] == pytest.approx(100.0)


# ----------------------------------------------------------------------
# ScenarioCharacterization.checkpoint_ranges
# ----------------------------------------------------------------------
class _PathScenario(Scenario):
    name = "path"
    duration = 100.0
    checkpoints = (Checkpoint("start", 0.0), Checkpoint("mid", 0.5))


def _dist(estimates):
    return SimpleNamespace(estimates=estimates, status_records=[],
                           replay=[])


def _est(time, F, Vb=1e-5):
    return SimpleNamespace(time=time, F=F, Vb=Vb)


def test_checkpoint_ranges_bucket_by_fraction():
    char = ScenarioCharacterization(
        scenario=_PathScenario(),
        distillations=[
            _dist([_est(10.0, 0.010), _est(60.0, 0.030)]),
            _dist([_est(20.0, 0.015), _est(80.0, 0.020)]),
        ])
    labels, lows, highs = char.checkpoint_ranges("latency_ms")
    assert labels == ["start", "mid"]
    assert lows == pytest.approx([10.0, 20.0])   # min F per label, in ms
    assert highs == pytest.approx([15.0, 30.0])


def test_checkpoint_ranges_empty_bucket_defaults_to_zero():
    char = ScenarioCharacterization(
        scenario=_PathScenario(),
        distillations=[_dist([_est(10.0, 0.010)])])  # nothing past u=0.5
    labels, lows, highs = char.checkpoint_ranges("latency_ms")
    assert labels == ["start", "mid"]
    assert (lows[1], highs[1]) == (0.0, 0.0)


def test_checkpoint_ranges_bandwidth_skips_zero_cost():
    char = ScenarioCharacterization(
        scenario=_PathScenario(),
        distillations=[_dist([_est(10.0, 0.010, Vb=1e-5),
                              _est(20.0, 0.010, Vb=0.0)])])
    _, lows, highs = char.checkpoint_ranges("bandwidth_kbps")
    assert lows[0] == highs[0] == pytest.approx(8.0 / 1e-5 / 1e3)


def test_unknown_quantity_raises():
    char = ScenarioCharacterization(
        scenario=_PathScenario(),
        distillations=[_dist([_est(10.0, 0.010)])])
    with pytest.raises(ValueError, match="unknown quantity"):
        char.checkpoint_ranges("jitter")


# ----------------------------------------------------------------------
# Figure 1 on the real pipeline (slow-network independence check)
# ----------------------------------------------------------------------
@pytest.mark.check
def test_slow_network_independence_check():
    fig = figure1_slow_network_check(seed=0, sizes=(MB // 2,))
    gap_raw = fig.fetch_store_gap(compensated=False)
    gap_comp = fig.fetch_store_gap(compensated=True)
    # At 256 kb/s the modulating Ethernet's per-byte cost is a rounding
    # error next to the modeled cost, so the fetch/store gap must stay
    # near zero with or without compensation — the paper's evidence
    # that the compensation constant depends only on the testbed, not
    # on the network being modeled.
    assert abs(gap_raw) < 0.06
    assert abs(gap_comp) < 0.06
    # Compensation still shifts fetch faster by the (small) subtracted
    # Ethernet cost; the shift stays bounded by that cost's share.
    assert gap_comp < gap_raw
    assert gap_raw - gap_comp < 0.06
