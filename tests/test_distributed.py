"""The distributed-sweep acceptance gate.

Four claims, tested end to end:

1. **Fleet equivalence** — `validate`, `check` and `fuzz` produce
   byte-identical stdout (and table SHA-256s) on a 2-pseudo-host
   remote fleet at 2 and 4 workers per host, exactly as on the serial
   path.  ``--hosts`` is a pure performance knob.
2. **Chaos recovery** — SIGKILLing a busy fleet worker mid-sweep
   loses nothing: its chunk is re-dispatched onto survivors, the
   table stays byte-identical, and the recovery is visible in the
   backend's transport stats (never on stdout).
3. **Sync plane** — FETCH/HAVE frames round-trip any payload, reject
   truncation at every byte, and an artifact present on two nodes
   crosses the wire exactly once.
4. **Worker shutdown** — EOF is a clean exit (0); SIGTERM exits 143
   so a torn-down node is distinguishable from a crashed job.
"""

import hashlib
import json
import os
import signal
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.runtime import (
    HostsError,
    RemoteBackend,
    Scheduler,
    load_hosts_file,
    parse_hosts,
    resolve_hosts,
)
from repro.runtime.backends import recv_frame
from repro.runtime.hosts import LocalLauncher
from repro.runtime.sync import (
    SYNC_MAGIC,
    SyncError,
    decode_sync,
    encode_sync,
    fetch_frame,
    have_frame,
    put_frame,
)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ======================================================================
# 1. Fleet equivalence: serial == remote(2 pseudo-hosts)
# ======================================================================
# Two pseudo-hosts each owning a private store root and a sync channel,
# at 2 and 4 workers per host — the full multi-node path (launch,
# artifact sync, work stealing, merge) on one box.
HOSTS_MATRIX = ["local:2,local:2", "local:4,local:4"]

VALIDATE_ARGV = ["validate", "--scenario", "wean", "--benchmark", "ftp",
                 "--ftp-bytes", "50000", "--trials", "2"]
CHECK_ARGV = ["check", "--smoke"]
FUZZ_ARGV = ["fuzz", "--count", "2", "--seed", "0"]

_REFERENCE = {}


def _run(capsys, argv, expect_rc=0):
    rc = main(argv)
    out = capsys.readouterr().out
    assert rc == expect_rc, f"{argv} exited {rc}"
    return out


def _reference(capsys, key, argv):
    if key not in _REFERENCE:
        _REFERENCE[key] = _run(capsys, argv + ["--workers", "1"])
    return _REFERENCE[key]


class TestFleetEquivalence:
    @pytest.mark.parametrize("hosts", HOSTS_MATRIX)
    def test_validate_fleet(self, capsys, hosts):
        serial = _reference(capsys, "validate", VALIDATE_ARGV)
        out = _run(capsys, VALIDATE_ARGV + ["--hosts", hosts])
        assert out == serial
        assert _sha(out) == _sha(serial)

    @pytest.mark.parametrize("hosts", HOSTS_MATRIX)
    def test_check_fleet(self, capsys, hosts):
        serial = _reference(capsys, "check", CHECK_ARGV)
        out = _run(capsys, CHECK_ARGV + ["--hosts", hosts])
        assert out == serial
        assert _sha(out) == _sha(serial)

    @pytest.mark.parametrize("hosts", HOSTS_MATRIX)
    def test_fuzz_fleet(self, capsys, hosts):
        serial = _reference(capsys, "fuzz", FUZZ_ARGV)
        out = _run(capsys, FUZZ_ARGV + ["--hosts", hosts])
        assert out == serial
        assert _sha(out) == _sha(serial)

    def test_validate_seeds_fleet(self, capsys):
        # The Monte Carlo workload: --seeds widens the sweep, and the
        # widened sweep is still byte-identical serial vs fleet.
        argv = VALIDATE_ARGV + ["--seeds", "2"]
        serial = _run(capsys, argv + ["--workers", "1"])
        assert "2 trials x 2 seeds" in serial
        out = _run(capsys, argv + ["--hosts", "local:2,local:2"])
        assert out == serial

    def test_fleet_ledger_has_per_node_contribution(self, tmp_path,
                                                    capsys):
        _run(capsys, VALIDATE_ARGV
             + ["--hosts", "local:2,local:2",
                "--run-dir", str(tmp_path)])
        record = json.loads(
            (tmp_path / "ledger.jsonl").read_text().splitlines()[-1])
        transport = record["transport"]
        assert transport["transport"] == "remote"
        backend = transport["backend"]
        nodes = {n["host"]: n for n in backend["nodes"]}
        assert set(nodes) == {"local#0", "local#1"}
        for node in nodes.values():
            assert node["workers"] == 2
            assert node["jobs"] >= 0 and node["chunks"] >= 0
            assert node["wall_s"] >= 0.0
        # Both nodes pulled work (work stealing, not static halves).
        assert sum(n["chunks"] for n in nodes.values()) > 0
        assert backend["sync"]["fetch_requests"] >= 0

    def test_metrics_rolls_up_fleet_utilization(self, tmp_path, capsys):
        _run(capsys, VALIDATE_ARGV
             + ["--hosts", "local:2,local:2",
                "--run-dir", str(tmp_path)])
        out = _run(capsys, ["metrics",
                            str(tmp_path / "ledger.jsonl")])
        assert "repro_fleet_nodes 2" in out
        assert "repro_fleet_node_local_0_chunks_total" in out
        assert "repro_fleet_node_local_1_chunks_total" in out
        assert "repro_fleet_utilization" in out


# ======================================================================
# 2. Chaos recovery: SIGKILL a busy worker mid-sweep
# ======================================================================
class TestChaosRecovery:
    def test_killed_worker_chunk_redispatches(self):
        from repro.scenarios import resolve_scenario
        from repro.validation import FtpRunner, run_validation
        from repro.validation.parallel import TrialExecutor

        scenario = resolve_scenario("wean")
        runner = FtpRunner(nbytes=50000)
        reference = run_validation(scenario, runner, seed=0,
                                   trials=2).render()

        exe = TrialExecutor(workers=None, transport="remote",
                            hosts="local:2,local:2")
        killed = []

        def killer():
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                backend = exe._backend
                if backend is not None:
                    busy = backend.active_workers()
                    if busy:
                        node, pid = busy[0]
                        os.kill(pid, signal.SIGKILL)
                        killed.append((node, pid))
                        return
                time.sleep(0.005)

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        try:
            table = run_validation(scenario, runner, seed=0, trials=2,
                                   executor=exe).render()
            thread.join(timeout=60.0)
            assert killed, "no busy worker appeared to kill"
            stats = exe.transport_stats()
        finally:
            exe.shutdown()
        # Byte-identical despite the loss, and the recovery is visible
        # in transport stats — never in stdout or fallback_reasons.
        assert table == reference
        backend_stats = stats["backend"]
        assert backend_stats["workers_lost"] >= 1
        assert backend_stats["redispatches"] >= 1
        assert stats["serial_fallbacks"] == 0


# ======================================================================
# 3. The sync plane: frames and cross-node dedup
# ======================================================================
_KEYS = st.lists(st.text(min_size=1, max_size=40), max_size=8)
_BLOBS = st.dictionaries(st.text(min_size=1, max_size=40),
                         st.binary(max_size=64), max_size=6)


class TestSyncFrames:
    @settings(max_examples=50, deadline=None)
    @given(keys=_KEYS)
    def test_key_frames_roundtrip(self, keys):
        for frame, want_op in ((have_frame(keys), "HAVE"),
                               (fetch_frame(keys), "FETCH")):
            op, payload = decode_sync(frame)
            assert op == want_op
            assert payload == list(keys)

    @settings(max_examples=50, deadline=None)
    @given(blobs=_BLOBS)
    def test_blob_frames_roundtrip(self, blobs):
        for op in ("PUT", "ARTIFACTS"):
            got_op, payload = decode_sync(encode_sync(op, blobs))
            assert got_op == op
            assert payload == blobs

    def test_truncation_rejected_at_every_byte(self):
        frame = put_frame({"replay:abc": b"\x01\x02\x03", "k": b""})
        for cut in range(len(frame)):
            with pytest.raises(SyncError):
                decode_sync(frame[:cut])

    def test_trailing_garbage_rejected(self):
        frame = have_frame(["a", "b"])
        with pytest.raises(SyncError):
            decode_sync(frame + b"\x00")

    def test_bad_magic_and_version_rejected(self):
        frame = bytearray(have_frame(["a"]))
        bad_magic = b"XXXX" + bytes(frame[len(SYNC_MAGIC):])
        with pytest.raises(SyncError):
            decode_sync(bad_magic)
        frame[4] = 0xFF  # version word
        with pytest.raises(SyncError):
            decode_sync(bytes(frame))

    def test_unknown_op_rejected(self):
        with pytest.raises(SyncError):
            encode_sync("STEAL", ["a"])
        with pytest.raises(SyncError):
            encode_sync("HAVE", [""])  # empty key

    def test_wrong_payload_shape_rejected(self):
        with pytest.raises(SyncError):
            encode_sync("PUT", {"k": "not-bytes"})


class TestArtifactDedup:
    def test_artifact_on_two_nodes_fetched_once(self, tmp_path):
        backend = RemoteBackend(parse_hosts("local:1,local:1"))
        backend.start(str(tmp_path / "parent-store"))
        try:
            blob = b"\x1f\x8b-encoded-artifact-bytes"
            key = "replay:deadbeef"
            # The same artifact lands on BOTH nodes (as when two nodes
            # each compute the same fingerprinted stage).
            for node in backend._nodes:
                node.sync.put({key: blob})
            first = backend.fetch_artifact(key)
            assert first == blob
            wire_fetches = backend.stats()["sync"]["fetch_requests"]
            assert wire_fetches == 1
            # Second read: served from the parent store merge point,
            # no wire traffic.
            second = backend.fetch_artifact(key)
            assert second == blob
            assert backend.stats()["sync"]["fetch_requests"] == 1
            assert backend.stats()["sync"]["unique_keys_fetched"] == 1
        finally:
            backend.shutdown()

    def test_envelopes_rehydrate_through_fetch_plane(self, tmp_path):
        # Private node stores: big results come back as envelopes and
        # the parent pulls each sealed artifact exactly once.
        from repro.runtime import Job, runner_ref
        from repro.runtime.job import echo

        exe = Scheduler(workers=None, transport="remote",
                        hosts="local:1,local:1")
        try:
            payloads = [os.urandom(8192) for _ in range(4)]
            jobs = [Job(kind="echo", runner=runner_ref(echo), payload=p,
                        label=f"big:{i}", cost_hint=1.0)
                    for i, p in enumerate(payloads)]
            assert exe.map_jobs(jobs) == payloads
            assert exe.transport_used == "remote"
            sync = exe._backend.stats()["sync"]
            assert sync["unique_keys_fetched"] == len(payloads)
            assert sync["fetch_requests"] == sync["unique_keys_fetched"]
            assert sync["bytes_fetched"] > 4 * 8192
        finally:
            exe.shutdown()


# ======================================================================
# 4. Worker shutdown semantics
# ======================================================================
def _spawn_worker(role="worker", store_root=None):
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    argv = ["--host", "127.0.0.1", "--port", str(port), "--node", "t",
            "--role", role]
    if store_root:
        argv += ["--store-root", store_root]
    proc = LocalLauncher().launch(argv)
    listener.settimeout(60.0)
    sock, _ = listener.accept()
    hello = recv_frame(sock)
    listener.close()
    return proc, sock, hello


class TestWorkerShutdown:
    @pytest.mark.parametrize("role", ["worker", "sync"])
    def test_sigterm_exits_143(self, role, tmp_path):
        proc, sock, hello = _spawn_worker(
            role, store_root=str(tmp_path / "store"))
        try:
            assert hello["proto"] == 2
            assert hello["role"] == role
            assert hello["node"] == "t"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 143
        finally:
            sock.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_connection_eof_exits_zero(self, tmp_path):
        proc, sock, hello = _spawn_worker(
            store_root=str(tmp_path / "store"))
        try:
            assert hello["pid"] == proc.pid
            sock.close()
            assert proc.wait(timeout=30.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# ======================================================================
# Host inventory parsing
# ======================================================================
class TestHosts:
    def test_parse_hosts_pseudo_and_remote(self):
        specs = parse_hosts("local:2, local:4, rack7:8")
        assert [(s.name, s.workers) for s in specs] == [
            ("local#0", 2), ("local#1", 4), ("rack7", 8)]
        assert specs[0].is_local and specs[1].is_local
        assert not specs[2].is_local

    def test_parse_hosts_rejects_malformed(self):
        for bad in ("", "a", "a:b", "a:0", "a:4,a:2"):
            with pytest.raises(HostsError):
                parse_hosts(bad)

    def test_hosts_file_roundtrip(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            '[[hosts]]\nname = "local"\nworkers = 2\n'
            '[[hosts]]\nname = "rack7"\nworkers = 8\n'
            'ssh_user = "repro"\nremote_python = "python3.12"\n')
        specs = load_hosts_file(path)
        assert [(s.name, s.workers) for s in specs] == [
            ("local#0", 2), ("rack7", 8)]
        assert specs[1].ssh_user == "repro"
        assert specs[1].remote_python == "python3.12"
        # resolve_hosts accepts the path spelling too.
        assert resolve_hosts(str(path)) == specs

    def test_hosts_file_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text('[[hosts]]\nname = "a"\nworkers = 2\nfoo = 1\n')
        with pytest.raises(HostsError):
            load_hosts_file(path)
