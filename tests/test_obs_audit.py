"""Tests for the modulation-fidelity audit and the observability sinks."""

import json
import math

import pytest

from repro.core.replay import QualityTuple, ReplayTrace
from repro.obs import (
    Histogram,
    ModulationFidelityAudit,
    ObsConfig,
    chrome_trace,
    read_jsonl,
    render_obs_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.validation import FtpRunner, run_modulated_trial

TICK = 0.01


def _tuple(d=5.0, F=0.02, Vb=1e-5, Vr=1e-6, L=0.0):
    return QualityTuple(d=d, F=F, Vb=Vb, Vr=Vr, L=L)


# ----------------------------------------------------------------------
# ModulationFidelityAudit
# ----------------------------------------------------------------------
def test_audit_accumulates_per_tuple():
    audit = ModulationFidelityAudit(TICK)
    tup = _tuple()
    audit.observe(tup, 1000, intended=0.023, applied=0.02, dropped=False)
    audit.observe(tup, 500, intended=0.021, applied=0.03, dropped=False)
    audit.observe(tup, 200, intended=0.02, applied=0.0, dropped=True)
    assert audit.tuples_seen == 1
    (rec,) = audit.as_records()
    assert rec["packets"] == 3
    assert rec["bytes"] == 1700
    assert rec["dropped"] == 1
    assert rec["observed_loss"] == pytest.approx(1 / 3)
    # Dropped packets contribute no delay samples.
    assert rec["mean_intended_delay"] == pytest.approx((0.023 + 0.021) / 2)
    assert rec["mean_applied_delay"] == pytest.approx((0.02 + 0.03) / 2)
    assert rec["mean_rounding_error"] == pytest.approx(
        ((0.02 - 0.023) + (0.03 - 0.021)) / 2)
    assert rec["under_delayed"] == 1
    assert rec["over_delayed"] == 1
    assert rec["sent_immediately"] == 0
    assert rec["intended_bandwidth_bps"] == pytest.approx(8.0 / 1e-5)


def test_audit_sent_immediately_is_under_delay():
    audit = ModulationFidelityAudit(TICK)
    tup = _tuple(F=0.003)
    audit.observe(tup, 100, intended=0.004, applied=0.0, dropped=False)
    (rec,) = audit.as_records()
    assert rec["sent_immediately"] == 1
    assert rec["under_delayed"] == 1


def test_audit_zero_vb_reports_infinite_bandwidth():
    audit = ModulationFidelityAudit(TICK)
    audit.observe(_tuple(Vb=0.0), 100, 0.01, 0.01, False)
    (rec,) = audit.as_records()
    assert math.isinf(rec["intended_bandwidth_bps"])


def test_audit_records_keep_first_enforced_order():
    audit = ModulationFidelityAudit(TICK)
    slow, fast = _tuple(F=0.5), _tuple(F=0.001)
    audit.observe(slow, 10, 0.5, 0.5, False)
    audit.observe(fast, 10, 0.001, 0.0, False)
    audit.observe(slow, 10, 0.5, 0.5, False)
    assert [r["F"] for r in audit.as_records()] == [0.5, 0.001]


def test_audit_totals_and_passthrough():
    audit = ModulationFidelityAudit(TICK)
    audit.observe(_tuple(), 100, 0.02, 0.02, False)
    audit.observe(_tuple(F=0.1), 100, 0.1, 0.0, True)
    audit.observe_passthrough()
    totals = audit.totals()
    assert totals["tuples_enforced"] == 2
    assert totals["packets"] == 2
    assert totals["dropped"] == 1
    assert totals["passthrough"] == 1
    assert totals["observed_loss"] == pytest.approx(0.5)
    assert totals["mean_applied_delay"] == pytest.approx(0.02)


def test_audit_feeds_delay_histogram():
    hist = Histogram("modulation.applied_delay", edges=(0.005, 0.05))
    audit = ModulationFidelityAudit(TICK, delay_histogram=hist)
    audit.observe(_tuple(), 100, 0.02, 0.02, False)
    audit.observe(_tuple(), 100, 0.001, 0.0, False)
    audit.observe(_tuple(L=1.0), 100, 0.02, 0.0, True)  # dropped: no sample
    assert hist.total == 2
    assert hist.counts == [1, 1, 0]


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "m.jsonl")
    records = [{"trial": 0, "x": 1.5}, {"trial": 1, "nested": {"a": [1, 2]}}]
    assert write_jsonl(path, records) == 2
    assert read_jsonl(path) == records


def test_jsonl_replaces_non_finite_floats(tmp_path):
    path = str(tmp_path / "m.jsonl")
    write_jsonl(path, [{"bw": float("inf"), "nan": float("nan")}])
    (rec,) = read_jsonl(path)  # must parse as strict JSON
    assert rec["bw"] == "inf"
    assert rec["nan"] == "nan"


def _spans():
    return [
        {"t": 0.1, "host": "laptop", "layer": "ip", "event": "send",
         "trace": 1, "pkt": 10, "size": 1500, "dst": "10.0.0.1"},
        {"t": 0.2, "host": "laptop", "layer": "mod", "event": "delay",
         "trace": 1, "pkt": 10, "size": 1500,
         "intended": 0.023, "applied": 0.02},
        {"t": 0.3, "host": "server", "layer": "dev", "event": "rx",
         "trace": 1, "pkt": 10, "size": 1500},
    ]


def test_chrome_trace_structure():
    doc = chrome_trace([("t0", _spans())])
    validate_chrome_trace(doc)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert {"t0:laptop", "t0:server", "ip", "mod", "dev"} <= names
    # Hosts map to distinct pids; the group label namespaces them.
    pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert len(pids) == 2
    # The modulation delay span becomes a complete event with duration.
    (complete,) = [e for e in events if e["ph"] == "X"]
    assert complete["name"] == "mod.delay"
    assert complete["dur"] == pytest.approx(0.02 * 1e6)
    assert complete["ts"] == pytest.approx(0.2 * 1e6)
    # Instant events carry the sample type chrome requires.
    instants = [e for e in events if e["ph"] == "i"]
    assert instants and all(e["s"] == "t" for e in instants)


def test_write_chrome_trace_and_validate(tmp_path):
    path = str(tmp_path / "trace.json")
    count = write_chrome_trace(path, [("t0", _spans())])
    with open(path) as f:
        doc = json.load(f)
    validate_chrome_trace(doc)
    assert len(doc["traceEvents"]) == count


def test_validate_chrome_trace_rejects_bad_documents():
    with pytest.raises(ValueError):
        validate_chrome_trace({})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "i"}]})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]})


# ----------------------------------------------------------------------
# End-to-end: an audited modulated trial
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def modulated_record():
    replay = ReplayTrace([
        QualityTuple(d=10.0, F=0.02, Vb=2e-5, Vr=1e-6, L=0.0),
        QualityTuple(d=10.0, F=0.002, Vb=5e-6, Vr=1e-6, L=0.05),
    ], name="synthetic")
    runner = FtpRunner(nbytes=64 * 1024, direction="send")
    sink = run_modulated_trial(replay, runner, seed=3, trial=0,
                               compensation_vb=0.0,
                               obs=ObsConfig(metrics=True, trace=True,
                                             spans=True))
    return sink.pop("__obs__")


def test_modulated_record_audits_intended_vs_applied(modulated_record):
    modulation = modulated_record["modulation"]
    totals = modulation["totals"]
    assert totals["packets"] > 0
    assert totals["tuples_enforced"] >= 1
    tick = 0.01
    for rec in modulation["audit"]:
        assert rec["dropped"] + rec["sent_immediately"] <= rec["packets"]
        # Applied delays live on the kernel's tick grid, so the mean of
        # per-packet tick multiples can't exceed intended by a full tick.
        assert rec["mean_applied_delay"] < rec["mean_intended_delay"] + tick
    assert "feed" in modulation
    assert modulation["feed"]["tuples_consumed"] > 0


def test_modulated_record_histogram_matches_deliveries(modulated_record):
    hist = modulated_record["metrics"]["histograms"][
        "modulation.applied_delay"]
    totals = modulated_record["modulation"]["totals"]
    delivered = totals["packets"] - totals["dropped"]
    assert hist["total"] == delivered
    assert sum(hist["counts"]) == delivered


def test_modulated_record_chrome_trace_validates(modulated_record):
    spans = modulated_record["spans"]
    assert spans
    doc = chrome_trace([("mod:t0", spans)])
    validate_chrome_trace(doc)
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
    json.dumps(doc)  # strictly serializable


def test_modulated_record_summary_renders(modulated_record):
    text = render_obs_summary(modulated_record)
    assert "Per-layer drop counters" in text
    assert "Packet-lifecycle span events" in text
    assert "Modulation fidelity (intended vs. applied)" in text
    assert "Replay feed device" in text
    assert "Simulation engine" in text


def test_observability_does_not_change_benchmark_results():
    replay = ReplayTrace([QualityTuple(d=10.0, F=0.01, Vb=1e-5,
                                       Vr=1e-6, L=0.02)], name="det")
    runner = FtpRunner(nbytes=48 * 1024, direction="send")
    plain = run_modulated_trial(replay, runner, seed=11, trial=2,
                                compensation_vb=0.0)
    traced = run_modulated_trial(replay, runner, seed=11, trial=2,
                                 compensation_vb=0.0,
                                 obs=ObsConfig(metrics=True, trace=True,
                                               spans=True))
    traced.pop("__obs__")
    assert traced == plain
