"""Tests for the WavePoint roaming/handoff extension."""

import pytest

from repro.apps.ping import ModifiedPing
from repro.core import Distiller, trace_collection_run
from repro.hosts import SERVER_ADDR
from repro.scenarios.roaming import (
    DEFAULT_HANDOFF_OUTAGE,
    RoamingProfile,
    RoamingScenario,
    WavePointSite,
    evenly_spaced_sites,
)
from tests.conftest import run_to_completion


def test_site_signal_peaks_at_position():
    site = WavePointSite(position=0.5, peak_signal=26.0, falloff=40.0)
    assert site.signal_at(0.5) == 26.0
    assert site.signal_at(0.4) == pytest.approx(22.0)
    assert site.signal_at(0.0) == pytest.approx(6.0)
    far = WavePointSite(position=0.0, peak_signal=10.0, falloff=100.0)
    assert far.signal_at(1.0) == 0.0  # clamped


def test_evenly_spaced_sites_cover_path():
    sites = evenly_spaced_sites(4)
    assert [s.position for s in sites] == [0.125, 0.375, 0.625, 0.875]
    with pytest.raises(ValueError):
        evenly_spaced_sites(0)


def test_profile_associates_with_strongest():
    profile = RoamingProfile(evenly_spaced_sites(2), duration=100.0, seed=1)
    profile.conditions(1.0)            # near the first WavePoint
    assert profile.current_ap == 0
    for t in range(2, 100, 2):         # walk the path
        profile.conditions(float(t))
    assert profile.current_ap == 1


def test_walk_triggers_expected_handoffs():
    scenario = RoamingScenario(wavepoints=4)
    profile = scenario.profile(seed=0, trial=0)
    for t in range(0, 241):
        profile.conditions(float(t))
    assert len(profile.handoff_times) == scenario.expected_handoffs()


def test_handoff_opens_total_outage_window():
    profile = RoamingProfile(evenly_spaced_sites(2), duration=100.0, seed=1)
    last_loss = []
    for t in [x / 4 for x in range(0, 400)]:
        cond = profile.conditions(t)
        last_loss.append((t, cond.loss_prob_up))
    outage = [t for t, loss in last_loss if loss >= 0.99]
    assert outage, "no outage observed at the handoff"
    span = max(outage) - min(outage)
    assert span <= DEFAULT_HANDOFF_OUTAGE + 0.3


def test_hysteresis_prevents_ping_pong():
    # With a huge hysteresis the mobile never switches.
    profile = RoamingProfile(evenly_spaced_sites(2), duration=100.0,
                             seed=1, hysteresis=100.0)
    for t in range(0, 101):
        profile.conditions(float(t))
    assert profile.current_ap == 0
    assert profile.handoff_times == []


def test_signal_sawtooth_shape():
    """Signal rises toward each WavePoint and dips between them."""
    profile = RoamingProfile(evenly_spaced_sites(3), duration=90.0, seed=2)
    series = [profile.conditions(float(t)).signal_level
              for t in range(0, 91)]
    mid_ap = series[15]        # under the first WavePoint (u=1/6)
    boundary = series[30]      # between the first and second (u=1/3)
    assert mid_ap > boundary + 5.0


def test_roaming_scenario_distills_handoff_signature():
    """Collected traces show the handoff outages as loss spikes."""
    scenario = RoamingScenario(wavepoints=4, handoff_outage=1.2)
    world = scenario.make_live_world(seed=0, trial=0)
    daemon = trace_collection_run(world.laptop, world.radio)
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    proc = world.laptop.spawn(ping.run(scenario.duration))
    run_to_completion(world, proc, cap=scenario.duration + 30.0)
    world.run(until=world.sim.now + 2.0)
    result = Distiller().distill(daemon.records)
    profile = world.radio.profile
    assert len(profile.handoff_times) == 3
    # Every handoff leaves an elevated-loss window in the replay trace.
    for when in profile.handoff_times:
        nearby = [result.replay.tuple_at(max(0.0, when + dt)).L
                  for dt in (-1.0, 0.0, 1.0, 2.0)]
        assert max(nearby) > 0.05, f"no loss spike near handoff at {when:.0f}s"
    # Loss away from any handoff stays low.
    quiet = [t for t in (20.0, 50.0, 110.0, 170.0, 230.0)
             if all(abs(t - h) > 8.0 for h in profile.handoff_times)]
    assert quiet
    for t in quiet:
        assert result.replay.tuple_at(t).L < 0.05


def test_roaming_scenario_checkpoints_and_registry_independence():
    scenario = RoamingScenario()
    assert scenario.checkpoint_for_fraction(0.5) == "r2"
    # The extension does not perturb the paper's four scenarios.
    from repro.scenarios import ALL_SCENARIOS

    assert all(cls.name != "roaming" for cls in ALL_SCENARIOS)
