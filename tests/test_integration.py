"""Integration tests: the full collect → distill → modulate pipeline."""

import pytest

from repro.apps.ping import ModifiedPing
from repro.core import (
    Distiller,
    dumps_trace,
    install_modulation,
    loads_trace,
    trace_collection_run,
)
from repro.hosts import LAPTOP_ADDR, LiveWorld, ModulationWorld, SERVER_ADDR
from repro.sim import Timeout
from tests.conftest import ConstantProfile, run_to_completion


def _collect(profile, seed=11, duration=40.0):
    world = LiveWorld(profile=profile, seed=seed)
    daemon = trace_collection_run(world.laptop, world.radio)
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    proc = world.laptop.spawn(ping.run(duration))
    run_to_completion(world, proc, cap=duration + 20.0)
    world.run(until=world.sim.now + 2.0)
    return daemon.records


def _modulated_rtts(replay, payload=1400, count=12, seed=12,
                    compensation=0.8e-6):
    world = ModulationWorld(seed=seed)
    install_modulation(world.laptop, world.laptop_device, replay,
                       world.rngs.stream("mod"),
                       compensation_vb=compensation, loop=True)
    rtts = []
    world.laptop.icmp.on_echo_reply(
        9, lambda pkt, now: rtts.append(now - pkt.meta["echo_sent_at"]))

    def pinger():
        yield Timeout(0.5)
        for seq in range(count):
            world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq,
                                        payload)
            yield Timeout(1.0)

    world.laptop.spawn(pinger())
    world.run(until=count + 5.0)
    return rtts


def _live_rtts(profile, payload=1400, count=12, seed=21):
    world = LiveWorld(profile=profile, seed=seed)
    rtts = []
    world.laptop.icmp.on_echo_reply(
        9, lambda pkt, now: rtts.append(now - pkt.meta["echo_sent_at"]))

    def pinger():
        for seq in range(count):
            world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq,
                                        payload)
            yield Timeout(1.0)

    world.laptop.spawn(pinger())
    world.run(until=count + 5.0)
    return rtts


def test_pipeline_reproduces_single_packet_rtt():
    """Modulated RTTs track live RTTs for isolated large packets."""
    profile = ConstantProfile(bandwidth_factor=0.8, access_latency=0.0005)
    records = _collect(profile)
    replay = Distiller().distill(records).replay
    live = _live_rtts(profile)
    modulated = _modulated_rtts(replay)
    live_mean = sum(live) / len(live)
    mod_mean = sum(modulated) / len(modulated)
    # The model folds half-duplex contention into Vr, so a modest
    # systematic error is expected; it must stay bounded.
    assert mod_mean == pytest.approx(live_mean, rel=0.45)
    assert mod_mean > 0.005  # and is far from raw-Ethernet speed


def test_pipeline_reproduces_loss():
    profile = ConstantProfile(loss_up=0.05, loss_down=0.05,
                              bandwidth_factor=0.8)
    records = _collect(profile, duration=80.0)
    result = Distiller().distill(records)
    # Distilled loss should sit near the symmetric per-direction rate.
    assert 0.02 < result.replay.mean_loss() < 0.12
    modulated = _modulated_rtts(result.replay, count=40)
    assert len(modulated) < 40  # some probes died in modulation


def test_pipeline_tracks_bandwidth_ordering():
    """A slower live network must distill to a slower replay trace."""
    fast = Distiller().distill(
        _collect(ConstantProfile(bandwidth_factor=0.9))).replay
    slow = Distiller().distill(
        _collect(ConstantProfile(bandwidth_factor=0.45))).replay
    assert slow.mean_bandwidth_bps() < fast.mean_bandwidth_bps() * 0.7


def test_trace_records_serialize_through_file_format():
    records = _collect(ConstantProfile(), duration=15.0)
    back = loads_trace(dumps_trace(records, description="roundtrip"))
    replay_a = Distiller().distill(records).replay
    replay_b = Distiller().distill(back).replay
    assert replay_a.tuples == replay_b.tuples


def test_modulated_small_messages_underdelayed():
    """§5.4: sub-half-tick delays are sent immediately in modulation."""
    profile = ConstantProfile(bandwidth_factor=0.8, access_latency=0.0003)
    replay = Distiller().distill(_collect(profile)).replay
    live = _live_rtts(profile, payload=16)
    modulated = _modulated_rtts(replay, payload=16)
    live_mean = sum(live) / len(live)
    mod_mean = sum(modulated) / len(modulated)
    assert mod_mean < live_mean * 0.7  # visibly under-delayed
    assert mod_mean < 0.004            # essentially raw Ethernet


def test_clock_drift_does_not_break_distillation():
    profile = ConstantProfile(bandwidth_factor=0.8)
    world = LiveWorld(profile=profile, seed=11, laptop_clock_drift=5e-4)
    daemon = trace_collection_run(world.laptop, world.radio)
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    proc = world.laptop.spawn(ping.run(30.0))
    run_to_completion(world, proc, cap=60.0)
    world.run(until=world.sim.now + 2.0)
    result = Distiller().distill(daemon.records)
    # Single-host round trips are immune to drift (§3.2.2).
    assert result.groups_used > 20
    assert result.replay.mean_bandwidth_bps() == pytest.approx(
        Distiller().distill(_collect(profile)).replay.mean_bandwidth_bps(),
        rel=0.15)
