"""Property tests for the scenario-family math layers.

The mobility, RAN and LEO families compile movement/geometry into the
emulator's channel fields.  This suite pins the physics-shaped
properties the compilers rely on — path loss monotone in distance,
link quality bounded and monotone in margin, slant range decreasing in
elevation — plus the contract that compilation is a *pure* function:
recompiling a builtin family reproduces the builtin spec's fields
exactly, and a family-backed sweep renders byte-identically for any
worker count.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios.leo import (
    LEO_FAMILY,
    LEO_SPEC,
    LeoFamily,
    bent_pipe_delay_s,
    elevation_at,
    slant_range_km,
)
from repro.scenarios.mobility import (
    SHUTTLE_FAMILY,
    SHUTTLE_SPEC,
    MobilityFamily,
    link_quality,
    path_loss_log_distance,
    path_loss_two_ray,
    position_at,
)
from repro.scenarios.ran import RAN_PRESETS, RAN_TECHNOLOGIES, RanFamily
from repro.scenarios.ran import RAN3G_SPEC, RAN4G_SPEC
from repro.scenarios.spec import FIELD_NAMES, ScenarioSpec, SpecScenario
from repro.validation.harness import FtpRunner
from repro.validation.parallel import run_validation

distances = st.floats(min_value=0.0, max_value=1e7,
                      allow_nan=False, allow_infinity=False)
margins = st.floats(min_value=-200.0, max_value=200.0, allow_nan=False)
elevations = st.floats(min_value=0.0, max_value=90.0, allow_nan=False)
altitudes = st.floats(min_value=160.0, max_value=2000.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# ======================================================================
# Path loss
# ======================================================================
class TestPathLoss:
    @given(d1=distances, d2=distances,
           ref_loss=st.floats(min_value=10.0, max_value=60.0),
           exponent=st.floats(min_value=1.5, max_value=5.0))
    @settings(max_examples=80, deadline=None)
    def test_log_distance_monotone_in_distance(self, d1, d2, ref_loss,
                                               exponent):
        lo, hi = sorted((d1, d2))
        pl_lo = path_loss_log_distance(lo, ref_loss, 1.0, exponent)
        pl_hi = path_loss_log_distance(hi, ref_loss, 1.0, exponent)
        assert pl_lo <= pl_hi + 1e-9

    @given(d1=distances, d2=distances,
           ref_loss=st.floats(min_value=10.0, max_value=60.0),
           base_h=st.floats(min_value=2.0, max_value=50.0),
           mobile_h=st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=80, deadline=None)
    def test_two_ray_monotone_in_distance(self, d1, d2, ref_loss,
                                          base_h, mobile_h):
        lo, hi = sorted((d1, d2))
        pl_lo = path_loss_two_ray(lo, ref_loss, 1.0, base_h, mobile_h)
        pl_hi = path_loss_two_ray(hi, ref_loss, 1.0, base_h, mobile_h)
        assert pl_lo <= pl_hi + 1e-9

    def test_two_ray_far_field_decays_at_fourth_power(self):
        # Far beyond the crossover the ground-bounce term dominates:
        # +40 dB per decade of distance.
        far = path_loss_two_ray(100_000.0, 40.0, 1.0, 10.0, 1.5)
        farther = path_loss_two_ray(1_000_000.0, 40.0, 1.0, 10.0, 1.5)
        assert farther - far == pytest.approx(40.0, abs=1e-6)

    def test_path_loss_clamps_below_reference_distance(self):
        at_ref = path_loss_log_distance(1.0, 40.0, 1.0, 3.0)
        inside = path_loss_log_distance(0.01, 40.0, 1.0, 3.0)
        assert inside == at_ref == 40.0


# ======================================================================
# Link quality
# ======================================================================
class TestLinkQuality:
    @given(margin=margins,
           good=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=100, deadline=None)
    def test_outputs_bounded_for_any_margin(self, margin, good):
        signal, loss, bandwidth, access = link_quality(margin, good)
        assert 2.0 <= signal <= 25.0
        assert 0.0 <= loss <= 0.35
        assert 0.15 <= bandwidth <= 0.78
        assert 0.3e-3 <= access <= 80e-3

    @given(m1=margins, m2=margins,
           good=st.floats(min_value=1.0, max_value=60.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_margin(self, m1, m2, good):
        lo, hi = sorted((m1, m2))
        s_lo, l_lo, b_lo, a_lo = link_quality(lo, good)
        s_hi, l_hi, b_hi, a_hi = link_quality(hi, good)
        assert s_lo <= s_hi + 1e-12       # more margin, more signal
        assert l_lo >= l_hi - 1e-12       # ... less loss
        assert b_lo <= b_hi + 1e-12       # ... more bandwidth
        assert a_lo >= a_hi - 1e-12       # ... lower access latency

    def test_saturated_and_dead_endpoints(self):
        assert link_quality(100.0, 22.0) == (25.0, 0.0, 0.78, 0.3e-3)
        assert link_quality(-50.0, 22.0) == (2.0, 0.35, 0.15, 80e-3)


# ======================================================================
# Waypoint interpolation
# ======================================================================
class TestPositionAt:
    WPS = ((0.0, 0.0, 0.0), (0.5, 100.0, 50.0), (1.0, 200.0, 0.0))

    def test_hits_waypoints_exactly(self):
        assert position_at(self.WPS, 0.0) == (0.0, 0.0)
        assert position_at(self.WPS, 0.5) == (100.0, 50.0)
        assert position_at(self.WPS, 1.0) == (200.0, 0.0)

    def test_interpolates_linearly_between(self):
        assert position_at(self.WPS, 0.25) == (50.0, 25.0)
        assert position_at(self.WPS, 0.75) == (150.0, 25.0)

    @given(u=st.floats(min_value=-1.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_clamps_outside_the_path(self, u):
        x, y = position_at(self.WPS, u)
        assert 0.0 <= x <= 200.0
        assert 0.0 <= y <= 50.0


# ======================================================================
# LEO geometry
# ======================================================================
class TestLeoGeometry:
    @given(alt=altitudes, e1=elevations, e2=elevations)
    @settings(max_examples=100, deadline=None)
    def test_slant_range_decreasing_in_elevation(self, alt, e1, e2):
        lo, hi = sorted((e1, e2))
        assert slant_range_km(alt, lo) >= slant_range_km(alt, hi) - 1e-6

    @given(alt=altitudes, elev=elevations)
    @settings(max_examples=100, deadline=None)
    def test_slant_range_at_least_altitude(self, alt, elev):
        # The satellite can never be closer than straight overhead.
        slant = slant_range_km(alt, elev)
        assert slant >= alt - 1e-6
        assert slant == pytest.approx(alt, abs=1e-6) or elev < 90.0

    @given(alt=altitudes, e1=elevations, e2=elevations,
           proc=st.floats(min_value=0.0, max_value=0.05))
    @settings(max_examples=100, deadline=None)
    def test_bent_pipe_delay_decreasing_in_elevation(self, alt, e1, e2,
                                                     proc):
        lo, hi = sorted((e1, e2))
        d_lo = bent_pipe_delay_s(alt, lo, proc)
        d_hi = bent_pipe_delay_s(alt, hi, proc)
        assert d_lo >= d_hi - 1e-12
        assert d_hi >= proc  # light-time never goes negative

    @given(u=fractions,
           min_e=st.floats(min_value=0.0, max_value=40.0),
           span=st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_elevation_bounded_and_peaks_mid_pass(self, u, min_e, span):
        peak = min_e + span
        elev = elevation_at(u, min_e, peak)
        assert min_e - 1e-9 <= elev <= peak + 1e-9
        assert elevation_at(0.5, min_e, peak) == pytest.approx(peak)
        # rise and set are symmetric about the zenith
        assert elev == pytest.approx(elevation_at(1.0 - u, min_e, peak),
                                     abs=1e-9)


# ======================================================================
# Compilation is pure and deterministic
# ======================================================================
class TestCompilePurity:
    @pytest.mark.parametrize("family,spec", [
        (SHUTTLE_FAMILY, SHUTTLE_SPEC),
        (RAN3G_SPEC.family, RAN3G_SPEC),
        (RAN4G_SPEC.family, RAN4G_SPEC),
        (LEO_FAMILY, LEO_SPEC),
    ], ids=["shuttle", "ran3g", "ran4g", "leo"])
    def test_recompiling_builtin_family_reproduces_spec_fields(
            self, family, spec):
        assert family.compile_fields() == spec.fields
        # and again — no hidden state between compilations
        assert family.compile_fields() == family.compile_fields()

    @pytest.mark.parametrize("technology", RAN_TECHNOLOGIES)
    def test_ran_compiles_one_fullspan_piece_per_field(self, technology):
        fields = RanFamily(technology=technology).compile_fields()
        assert set(fields) == set(FIELD_NAMES)
        for fname in FIELD_NAMES:
            pieces = fields[fname]
            assert len(pieces) == 1
            assert pieces[0] == RAN_PRESETS[technology][fname].piece()
            assert pieces[0].end == 1.0

    def test_leo_access_delay_higher_at_pass_edges(self):
        access = LeoFamily().compile_fields()["access"]
        mid = access[len(access) // 2]
        assert access[0].base > mid.base
        assert access[-1].base > mid.base

    def test_shuttle_signal_peaks_near_the_stop(self):
        signal = SHUTTLE_FAMILY.compile_fields()["signal"]
        bases = [p.base for p in signal]
        best = max(bases)
        # the best signal may plateau at the ceiling around the stop;
        # its center of mass must sit near u ~ 0.5, and both ends of
        # the loop (600-700 m out) must be strictly worse
        at_best = [i for i, b in enumerate(bases) if b >= best - 1e-9]
        center = sum((i + 0.5) / len(bases) for i in at_best) / len(at_best)
        assert 0.3 < center < 0.7
        assert bases[0] < best
        assert bases[-1] < best


# ======================================================================
# Family sweeps are worker-count independent
# ======================================================================
WALK_FAMILY = MobilityFamily(
    waypoints=((0.0, -250.0, 40.0), (0.5, 20.0, 10.0),
               (1.0, 300.0, 60.0)),
    samples=8,
)

WALK_SPEC = ScenarioSpec(
    name="famwalk",
    duration=30.0,
    description="Small mobility walk for worker-determinism pinning.",
    fields=WALK_FAMILY.compile_fields(),
    family=WALK_FAMILY,
)


@pytest.mark.parametrize("workers", [2, 4])
def test_family_sweep_render_identical_across_workers(workers):
    runner = FtpRunner(nbytes=25_000, direction="send")
    serial = run_validation(SpecScenario(WALK_SPEC), runner, seed=0,
                            trials=2, workers=1)
    parallel = run_validation(SpecScenario(WALK_SPEC), runner, seed=0,
                              trials=2, workers=workers)
    assert parallel.render() == serial.render()
