"""Unit tests for the four evaluation scenarios (§4.1)."""

import pytest

from repro.scenarios import (
    ALL_SCENARIOS,
    ChatterboxScenario,
    FlagstaffScenario,
    PorterScenario,
    Scenario,
    WeanScenario,
    scenario_by_name,
)
from repro.scenarios.wean import ELEVATOR_END, WAIT_END


def _mean(scenario, attr, u_range, samples=60, trials=6):
    total, count = 0.0, 0
    for trial in range(trials):
        profile = scenario.profile(seed=0, trial=trial)
        for i in range(samples):
            u = u_range[0] + (u_range[1] - u_range[0]) * i / (samples - 1)
            cond = profile.conditions(u * scenario.duration)
            total += getattr(cond, attr)
            count += 1
    return total / count


# ----------------------------------------------------------------------
# Generic machinery
# ----------------------------------------------------------------------
def test_registry_has_all_four():
    names = {cls.name for cls in ALL_SCENARIOS}
    assert names == {"wean", "porter", "flagstaff", "chatterbox"}


def test_scenario_by_name():
    assert isinstance(scenario_by_name("porter"), PorterScenario)
    assert isinstance(scenario_by_name("WEAN"), WeanScenario)
    with pytest.raises(KeyError):
        scenario_by_name("mars")


def test_profiles_deterministic_per_trial():
    sc = PorterScenario()
    a = sc.profile(seed=1, trial=0).conditions(30.0)
    b = sc.profile(seed=1, trial=0).conditions(30.0)
    assert a == b


def test_trials_differ():
    sc = PorterScenario()
    a = sc.profile(seed=1, trial=0).conditions(30.0)
    b = sc.profile(seed=1, trial=1).conditions(30.0)
    assert a != b


def test_checkpoint_lookup():
    sc = PorterScenario()
    assert sc.checkpoint_for_fraction(0.0) == "x0"
    assert sc.checkpoint_for_fraction(0.5) == "x3"
    assert sc.checkpoint_for_fraction(1.0) == "x6"


def test_make_live_world_wires_profile():
    sc = WeanScenario()
    world = sc.make_live_world(seed=0, trial=0)
    assert world.radio.profile is not None
    assert world.cross_hosts == []


def test_conditions_always_legal():
    for cls in ALL_SCENARIOS:
        sc = cls()
        profile = sc.profile(seed=3, trial=2)
        for i in range(121):
            cond = profile.conditions(sc.duration * i / 120)
            assert 0.0 <= cond.loss_prob_up <= 1.0
            assert 0.0 <= cond.loss_prob_down <= 1.0
            assert 0.0 < cond.bandwidth_factor <= 1.0
            assert cond.signal_level >= 0.0
            assert cond.access_latency_mean >= 0.0


# ----------------------------------------------------------------------
# Porter (Figure 2)
# ----------------------------------------------------------------------
def test_porter_signal_improves_across_patio_then_falls():
    sc = PorterScenario()
    lobby = _mean(sc, "signal_level", (0.0, 0.1))
    patio_end = _mean(sc, "signal_level", (0.33, 0.40))
    hall_end = _mean(sc, "signal_level", (0.85, 1.0))
    assert patio_end > lobby
    assert hall_end < patio_end


def test_porter_loss_worst_at_ends():
    sc = PorterScenario()
    early = _mean(sc, "loss_prob_up", (0.0, 0.2))
    middle = _mean(sc, "loss_prob_up", (0.45, 0.7))
    late = _mean(sc, "loss_prob_up", (0.85, 1.0))
    assert early > middle
    assert late > middle


# ----------------------------------------------------------------------
# Flagstaff (Figure 3)
# ----------------------------------------------------------------------
def test_flagstaff_signal_drops_entering_park():
    sc = FlagstaffScenario()
    start = _mean(sc, "signal_level", (0.0, 0.08))
    park = _mean(sc, "signal_level", (0.3, 1.0))
    assert park < start


def test_flagstaff_loss_worsens_along_path():
    sc = FlagstaffScenario()
    early = _mean(sc, "loss_prob_up", (0.0, 0.2))
    late = _mean(sc, "loss_prob_up", (0.6, 1.0))
    assert late > early * 1.5


def test_flagstaff_is_strongly_asymmetric():
    """§5.3: live Flagstaff send and receive differ markedly."""
    sc = FlagstaffScenario()
    up = _mean(sc, "loss_prob_up", (0.0, 1.0))
    down = _mean(sc, "loss_prob_down", (0.0, 1.0))
    assert up > down * 3


def test_flagstaff_latency_better_than_porter():
    flag = _mean(FlagstaffScenario(), "access_latency_mean", (0.0, 1.0))
    porter = _mean(PorterScenario(), "access_latency_mean", (0.0, 1.0))
    assert flag < porter


# ----------------------------------------------------------------------
# Wean (Figure 4)
# ----------------------------------------------------------------------
def test_wean_elevator_collapses_quality():
    sc = WeanScenario()
    mid_elevator = (WAIT_END + ELEVATOR_END) / 2
    walking = _mean(sc, "loss_prob_up", (0.1, WAIT_END - 0.05))
    elevator = _mean(sc, "loss_prob_up",
                     (WAIT_END + 0.02, ELEVATOR_END - 0.02))
    assert elevator > 10 * walking
    signal = _mean(sc, "signal_level",
                   (WAIT_END + 0.02, ELEVATOR_END - 0.02))
    assert signal < 5.0  # below the WaveLAN noise floor


def test_wean_elevator_latency_spikes():
    sc = WeanScenario()
    elevator = _mean(sc, "access_latency_mean",
                     (WAIT_END + 0.02, ELEVATOR_END - 0.02))
    assert elevator > 0.05  # distils to RTT peaks of hundreds of ms


def test_wean_recovers_after_elevator():
    sc = WeanScenario()
    after = _mean(sc, "signal_level", (ELEVATOR_END + 0.05, 1.0))
    assert after > 15.0


def test_wean_four_motion_regions_in_checkpoints():
    assert len(WeanScenario.checkpoints) == 8  # z0..z7


# ----------------------------------------------------------------------
# Chatterbox (Figure 5)
# ----------------------------------------------------------------------
def test_chatterbox_static_with_cross_traffic():
    sc = ChatterboxScenario()
    assert not sc.has_motion
    assert sc.cross_laptops == 5
    assert sc.checkpoints == ()


def test_chatterbox_signal_high_despite_interference():
    signal = _mean(ChatterboxScenario(), "signal_level", (0.0, 1.0))
    assert 15.0 < signal < 21.0


def test_chatterbox_loss_reasonable():
    loss = _mean(ChatterboxScenario(), "loss_prob_up", (0.0, 1.0))
    assert loss < 0.03


def test_chatterbox_world_has_five_interferers():
    world = ChatterboxScenario().make_live_world(seed=0, trial=0)
    assert len(world.cross_hosts) == 5
