"""CLI coverage for the scenario registry and the artifact cache.

* ``repro scenarios`` — the registry listing (table and ``--json``),
  including extra spec files registered from the command line;
* the unknown-scenario contract — every ``--scenario`` consumer exits
  with code 2 and a one-line error, never a traceback;
* a TOML spec file as ``--scenario`` runs the full collect → distill →
  modulated pipeline from the command line;
* ``validate --cache-dir`` twice: the second run reports a warm cache.

All tests drive ``repro.cli.main`` in-process (the test_cli_obs idiom).
"""

import json

import pytest

from repro.cli import main
from repro.scenarios import scenario_names, unregister

MINI_TOML = """\
format = 1
name = "clispec"
duration = 60.0

[[checkpoints]]
label = "start"
fraction = 0.0

[[fields.signal]]
end = 1.0
base = 15.0

[[fields.loss]]
end = 1.0
base = 0.005
hi = 0.02

[[fields.bandwidth]]
end = 1.0
base = 0.7
lo = 0.4
hi = 0.85

[[fields.access]]
end = 1.0
base = 0.0004
lo = 0.00005
"""


@pytest.fixture
def mini_toml(tmp_path):
    path = tmp_path / "clispec.toml"
    path.write_text(MINI_TOML, encoding="utf-8")
    yield path
    unregister("clispec")   # in case a test registered it


# ======================================================================
# repro scenarios
# ======================================================================
class TestScenariosCommand:
    def test_table_lists_registered_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("wean", "porter", "flagstaff", "chatterbox",
                     "roaming"):
            assert name in out
        assert "source" in out and "builtin" in out

    def test_json_listing(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert set(by_name) == set(scenario_names())
        wean = by_name["wean"]
        assert wean["source"] == "builtin"
        assert wean["duration"] > 0
        assert {"checkpoints", "cross_laptops", "has_motion"} <= set(wean)

    def test_extra_spec_file_is_registered_and_listed(self, mini_toml,
                                                      capsys):
        assert main(["scenarios", str(mini_toml), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        row = [r for r in rows if r["name"] == "clispec"][0]
        assert row["source"] == str(mini_toml)
        assert row["duration"] == 60.0

    def test_json_rows_carry_family_and_origin(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        by_name = {row["name"]: row
                   for row in json.loads(capsys.readouterr().out)}
        assert by_name["shuttle"]["family"] == "mobility"
        assert by_name["ran4g"]["family"] == "ran"
        assert by_name["leo"]["family"] == "leo"
        assert by_name["wean"]["family"] is None
        for name in ("wean", "shuttle", "ran4g", "leo"):
            assert by_name[name]["origin"] == "builtin"

    def test_registered_spec_file_origin(self, mini_toml, capsys):
        assert main(["scenarios", str(mini_toml), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        row = [r for r in rows if r["name"] == "clispec"][0]
        assert row["origin"] == "spec-file"
        assert row["family"] is None

    def test_generated_spec_file_origin(self, tmp_path, capsys):
        from repro.scenarios import unregister
        from repro.scenarios.generate import generate_spec
        from repro.scenarios.spec import save_spec

        path = tmp_path / "fuzzed.toml"
        save_spec(generate_spec(0, 0), path)
        try:
            assert main(["scenarios", str(path), "--json"]) == 0
            rows = json.loads(capsys.readouterr().out)
            row = [r for r in rows if r["name"] == "fuzz-s0-i0000"][0]
            # the generator stamp marks it generated even though it
            # was registered from a file on disk
            assert row["origin"] == "generated"
        finally:
            unregister("fuzz-s0-i0000")

    def test_table_shows_family_column(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "family" in out and "origin" in out
        shuttle = [l for l in out.splitlines()
                   if l.startswith("shuttle")][0]
        assert "mobility" in shuttle and "builtin" in shuttle

    def test_bad_spec_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed", encoding="utf-8")
        assert main(["scenarios", str(path)]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "broken.toml" in err


# ======================================================================
# Unknown scenarios exit 2 everywhere
# ======================================================================
class TestUnknownScenario:
    @pytest.mark.parametrize("argv", [
        ["validate", "--scenario", "nosuch", "--benchmark", "ftp"],
        ["collect", "--scenario", "nosuch", "-o", "out.trace"],
        ["characterize", "--scenario", "nosuch"],
        ["check", "--scenario", "nosuch"],
        ["trace", "nosuch"],
    ])
    def test_unknown_name_exits_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "unknown scenario" in err
        assert "wean" in err            # the choices are listed

    def test_missing_spec_file_exits_2(self, capsys):
        argv = ["validate", "--scenario", "no/such/file.toml",
                "--benchmark", "ftp"]
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_spec_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad"}), encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            main(["validate", "--scenario", str(path),
                  "--benchmark", "ftp"])
        assert exc.value.code == 2
        assert "invalid scenario spec" in capsys.readouterr().err


# ======================================================================
# A TOML scenario through the full pipeline, with the artifact cache
# ======================================================================
class TestTomlScenarioEndToEnd:
    def test_validate_runs_a_pure_toml_scenario(self, mini_toml, capsys):
        assert main(["validate", "--scenario", str(mini_toml),
                     "--benchmark", "ftp", "--ftp-bytes", "60000",
                     "--trials", "1", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "ftp on clispec" in out
        assert "Real (s)" in out and "Modulated (s)" in out

    def test_validate_cache_dir_warm_rerun(self, mini_toml, tmp_path,
                                           capsys):
        argv = ["validate", "--scenario", str(mini_toml),
                "--benchmark", "ftp", "--ftp-bytes", "60000",
                "--trials", "1", "--workers", "1",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "pipeline cache:" in cold
        assert "0 hit(s)" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 recomputed" in warm
        assert "(warm)" in warm
        # The rendered tables agree byte for byte.
        table = lambda text: text.split("pipeline cache:")[0]
        assert table(warm) == table(cold)
