"""Failure-injection tests: the system under adverse conditions.

Each test breaks something mid-run — daemons die, buffers overrun,
feeds starve, connections get reset — and checks that the failure is
contained, visible, and accounted for rather than silent.
"""

import pytest

from repro.apps.ftp import FtpClient, FtpServer
from repro.apps.ping import ModifiedPing
from repro.core import (
    CollectionDaemon,
    Distiller,
    ModulationDaemon,
    PacketTracer,
    ReplayFeedDevice,
    constant_trace,
    install_modulation,
    trace_collection_run,
)
from repro.core.modulator import ModulationLayer
from repro.core.traceformat import LostRecordsRecord, PacketRecord
from repro.hosts import LAPTOP_ADDR, ModulationWorld, SERVER_ADDR
from repro.protocols.tcp import TCPError, TCPHeader
from repro.net.packet import Packet, PROTO_TCP
from repro.sim import Timeout
from tests.conftest import run_to_completion


# ----------------------------------------------------------------------
# Collection-side failures
# ----------------------------------------------------------------------
def test_slow_daemon_overrun_is_accounted_not_silent(live_world):
    """If the drain daemon stalls, lost records are reported in-band."""
    w = live_world
    tracer = PacketTracer(w.laptop, w.radio, buffer_capacity=16)
    daemon = CollectionDaemon(w.laptop, tracer.pseudo_device.name,
                              drain_period=60.0)  # effectively stalled
    w.laptop.spawn(daemon.loop())
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(20.0))
    run_to_completion(w, proc, cap=40.0)
    daemon.stop()
    w.run(until=w.sim.now + 65.0)
    lost = [r for r in daemon.records if isinstance(r, LostRecordsRecord)]
    kept = [r for r in daemon.records if isinstance(r, PacketRecord)]
    assert lost, "overrun happened but was not reported"
    total_lost = sum(r.count for r in lost)
    # Conservation: every appended record is either delivered or
    # reported lost — nothing vanishes silently.
    status_kept = len(daemon.records) - len(lost) - len(kept)
    assert len(kept) + status_kept + total_lost \
        == tracer.buffer.total_appended


def test_distiller_survives_gappy_trace(live_world):
    """A trace with a mid-run collection gap still distills."""
    w = live_world
    daemon = trace_collection_run(w.laptop, w.radio)
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(30.0))
    run_to_completion(w, proc, cap=60.0)
    w.run(until=w.sim.now + 2.0)
    records = daemon.records
    # Cut out the middle third (daemon crash window).
    packets = [r for r in records if isinstance(r, PacketRecord)]
    t0 = min(r.timestamp for r in packets)
    gappy = [r for r in records
             if not (t0 + 10.0 <= getattr(r, "timestamp", t0) < t0 + 20.0)]
    result = Distiller().distill(gappy)
    assert len(result.replay) >= 25
    # The hole is filled by holding the previous tuple (§3.2.2 spirit).
    held = result.replay.tuple_at(15.0)
    assert held.F > 0


# ----------------------------------------------------------------------
# Modulation-side failures
# ----------------------------------------------------------------------
def test_feed_starvation_holds_last_tuple(mod_world):
    """If the tuple daemon dies, modulation holds the last tuple."""
    w = mod_world
    trace = constant_trace(duration=3.0, latency=30e-3, bandwidth_bps=2e6)
    layer = install_modulation(w.laptop, w.laptop_device, trace,
                               w.rngs.stream("m"), loop=False)
    rtts = []
    w.laptop.icmp.on_echo_reply(
        9, lambda pkt, now: rtts.append(now - pkt.meta["echo_sent_at"]))

    def pinger():
        yield Timeout(0.5)
        for seq in range(12):  # far outlives the 3 s trace
            w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq, 64)
            yield Timeout(1.0)

    w.laptop.spawn(pinger())
    w.run(until=15.0)
    assert len(rtts) == 12
    # Probes after the trace ran out still see ~30 ms latency each way.
    assert rtts[-1] > 0.04
    assert layer.feed.underruns > 0


def test_modulator_packet_conservation(mod_world):
    """Every packet entering the layer is delivered or counted dropped."""
    w = mod_world
    trace = constant_trace(duration=60.0, latency=5e-3, bandwidth_bps=1e6,
                           loss=0.3)
    layer = install_modulation(w.laptop, w.laptop_device, trace,
                               w.rngs.stream("m"), loop=True)
    received = []
    w.laptop.icmp.on_echo_reply(9, lambda pkt, now: received.append(pkt))
    w.run(until=0.5)
    for seq in range(200):
        w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 9, seq, 200)
    w.run(until=60.0)
    answered = w.server.icmp.echoes_answered
    assert layer.out_packets == 200
    assert layer.out_dropped + answered == 200
    assert layer.in_packets == answered
    assert layer.in_dropped + len(received) == answered


def test_modulation_daemon_stop_midway(mod_world):
    w = mod_world
    feed = ReplayFeedDevice(w.laptop, capacity=4)
    w.laptop.kernel.register_device(feed)
    feed.open()
    daemon = ModulationDaemon(w.laptop, constant_trace(60.0, 1e-3, 1e6),
                              device_name="mod0", loop=True)
    proc = w.laptop.spawn(daemon.loop())
    w.run(until=1.0)
    daemon.stop()
    for _ in range(8):
        feed.next_tuple()
        w.run(until=w.sim.now + 0.1)
    assert not proc.alive  # clean exit, no hang


# ----------------------------------------------------------------------
# Transport-layer failures
# ----------------------------------------------------------------------
def test_rst_mid_transfer_fails_loudly(mod_world):
    w = mod_world
    FtpServer(w.server).start()
    client = FtpClient(w.laptop, SERVER_ADDR)
    outcome = {}

    def body():
        try:
            yield from client.transfer("send", 5_000_000)
            outcome["ok"] = True
        except TCPError as err:
            outcome["error"] = str(err)

    proc = w.laptop.spawn(body())
    w.run(until=3.0)
    # Forge a RST against the data connection.
    data_conns = [c for c in w.laptop.tcp._conns.values() if c.rport == 20]
    assert data_conns
    victim = data_conns[0]
    rst = Packet(tcp=TCPHeader(src_port=victim.rport,
                               dst_port=victim.lport,
                               flags=TCPHeader.RST))
    from repro.net.packet import IPHeader

    rst.ip = IPHeader(src=SERVER_ADDR, dst=LAPTOP_ADDR, proto=PROTO_TCP)
    victim.segment_arrives(rst)
    run_to_completion(w, proc, cap=400.0)
    assert "error" in outcome
    assert "reset" in outcome["error"]


def test_server_vanishing_mid_session_recovers_listener(mod_world):
    """The FTP server survives a client whose connection dies."""
    w = mod_world
    server = FtpServer(w.server)
    server.start()
    client = FtpClient(w.laptop, SERVER_ADDR)

    def doomed():
        try:
            yield from client.transfer("send", 20_000_000)
        except TCPError:
            pass

    proc = w.laptop.spawn(doomed())
    w.run(until=3.0)
    # Kill every laptop-side connection with local resets.
    for conn in list(w.laptop.tcp._conns.values()):
        conn._fail(TCPError("connection reset"))
    run_to_completion(w, proc, cap=300.0)

    # A fresh session against the same server must still work.
    outcome = {}

    def retry():
        result = yield from client.transfer("send", 100_000)
        outcome["elapsed"] = result.elapsed

    proc = w.laptop.spawn(retry())
    run_to_completion(w, proc, cap=300.0)
    assert outcome["elapsed"] > 0
