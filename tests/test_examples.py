"""Smoke tests for the example programs.

Examples are documentation that must not rot: each module has to
import cleanly and expose a ``main``.  (Their full runs are exercised
manually / in benchmarks; importing catches API drift cheaply.)
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


def _load(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_and_has_main(name):
    module = _load(name)
    assert callable(getattr(module, "main", None))
    assert module.__doc__, f"{name} lacks a module docstring"
