"""Unit tests for packets and headers."""

from repro.net import (
    ICMPHeader,
    IPHeader,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    TCPHeader,
    UDPHeader,
)
from repro.net.packet import (
    ETHERNET_HEADER_BYTES,
    ICMP_HEADER_BYTES,
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)


def test_bare_packet_size_is_link_header():
    assert Packet().size == ETHERNET_HEADER_BYTES


def test_ip_packet_size():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP), payload_bytes=100)
    assert p.size == ETHERNET_HEADER_BYTES + IP_HEADER_BYTES + 100


def test_icmp_packet_size():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP),
               icmp=ICMPHeader(ICMPHeader.ECHO), payload_bytes=32)
    assert p.ip_size == IP_HEADER_BYTES + ICMP_HEADER_BYTES + 32


def test_udp_packet_size():
    p = Packet(ip=IPHeader("a", "b", 17), udp=UDPHeader(1, 2), payload_bytes=50)
    assert p.ip_size == IP_HEADER_BYTES + UDP_HEADER_BYTES + 50


def test_tcp_packet_size():
    p = Packet(ip=IPHeader("a", "b", PROTO_TCP),
               tcp=TCPHeader(1, 2), payload_bytes=1460)
    assert p.ip_size == IP_HEADER_BYTES + TCP_HEADER_BYTES + 1460


def test_ip_size_excludes_link_header():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP), payload_bytes=10)
    assert p.size - p.ip_size == ETHERNET_HEADER_BYTES


def test_packet_ids_are_unique():
    assert Packet().packet_id != Packet().packet_id


def test_clone_copies_headers_independently():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP), payload_bytes=5,
               meta={"k": 1})
    q = p.clone()
    q.ip.dst = "c"
    q.meta["k"] = 2
    assert p.ip.dst == "b"
    assert p.meta["k"] == 1
    assert p.packet_id != q.packet_id
    assert p.size == q.size


def test_tcp_flag_helpers():
    h = TCPHeader(1, 2, flags=TCPHeader.SYN | TCPHeader.ACK)
    assert h.has(TCPHeader.SYN)
    assert h.has(TCPHeader.ACK)
    assert not h.has(TCPHeader.FIN)
    assert h.flag_names() == "SYN|ACK"


def test_tcp_flag_names_empty():
    assert TCPHeader(1, 2).flag_names() == "-"


def test_describe_icmp():
    p = Packet(ip=IPHeader("10.0.0.1", "10.0.0.2", PROTO_ICMP),
               icmp=ICMPHeader(ICMPHeader.ECHO, ident=7, seq=3))
    text = p.describe()
    assert "ECHO" in text and "id=7" in text and "seq=3" in text


def test_describe_tcp():
    p = Packet(ip=IPHeader("a", "b", PROTO_TCP),
               tcp=TCPHeader(80, 1234, seq=5, ack=9, flags=TCPHeader.ACK))
    text = p.describe()
    assert "tcp" in text and "ACK" in text


def test_describe_raw():
    assert "raw" in Packet().describe()
