"""Unit tests for packets and headers."""

from repro.net import (
    ICMPHeader,
    IPHeader,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    TCPHeader,
    UDPHeader,
)
from repro.net.packet import (
    ETHERNET_HEADER_BYTES,
    ICMP_HEADER_BYTES,
    IP_HEADER_BYTES,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)


def test_bare_packet_size_is_link_header():
    assert Packet().size == ETHERNET_HEADER_BYTES


def test_ip_packet_size():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP), payload_bytes=100)
    assert p.size == ETHERNET_HEADER_BYTES + IP_HEADER_BYTES + 100


def test_icmp_packet_size():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP),
               icmp=ICMPHeader(ICMPHeader.ECHO), payload_bytes=32)
    assert p.ip_size == IP_HEADER_BYTES + ICMP_HEADER_BYTES + 32


def test_udp_packet_size():
    p = Packet(ip=IPHeader("a", "b", 17), udp=UDPHeader(1, 2), payload_bytes=50)
    assert p.ip_size == IP_HEADER_BYTES + UDP_HEADER_BYTES + 50


def test_tcp_packet_size():
    p = Packet(ip=IPHeader("a", "b", PROTO_TCP),
               tcp=TCPHeader(1, 2), payload_bytes=1460)
    assert p.ip_size == IP_HEADER_BYTES + TCP_HEADER_BYTES + 1460


def test_ip_size_excludes_link_header():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP), payload_bytes=10)
    assert p.size - p.ip_size == ETHERNET_HEADER_BYTES


def test_packet_ids_are_unique():
    assert Packet().packet_id != Packet().packet_id


def test_clone_copies_headers_independently():
    p = Packet(ip=IPHeader("a", "b", PROTO_ICMP), payload_bytes=5,
               meta={"k": 1})
    q = p.clone()
    q.ip.dst = "c"
    q.meta["k"] = 2
    assert p.ip.dst == "b"
    assert p.meta["k"] == 1
    assert p.packet_id != q.packet_id
    assert p.size == q.size


def test_tcp_flag_helpers():
    h = TCPHeader(1, 2, flags=TCPHeader.SYN | TCPHeader.ACK)
    assert h.has(TCPHeader.SYN)
    assert h.has(TCPHeader.ACK)
    assert not h.has(TCPHeader.FIN)
    assert h.flag_names() == "SYN|ACK"


def test_tcp_flag_names_empty():
    assert TCPHeader(1, 2).flag_names() == "-"


def test_describe_icmp():
    p = Packet(ip=IPHeader("10.0.0.1", "10.0.0.2", PROTO_ICMP),
               icmp=ICMPHeader(ICMPHeader.ECHO, ident=7, seq=3))
    text = p.describe()
    assert "ECHO" in text and "id=7" in text and "seq=3" in text


def test_describe_tcp():
    p = Packet(ip=IPHeader("a", "b", PROTO_TCP),
               tcp=TCPHeader(80, 1234, seq=5, ack=9, flags=TCPHeader.ACK))
    text = p.describe()
    assert "tcp" in text and "ACK" in text


def test_describe_raw():
    assert "raw" in Packet().describe()


# ----------------------------------------------------------------------
# Packet pool
# ----------------------------------------------------------------------
def _fresh_pool():
    from repro.net.packet import PacketPool

    return PacketPool()


def test_pool_reuses_released_slot():
    pool = _fresh_pool()
    p1 = pool.acquire_tcp(1, 2, seq=10, ack=0, flags=0, window=100,
                          payload_bytes=536)
    pid1 = p1.packet_id
    pool.release(p1)
    p2 = pool.acquire_tcp(3, 4, seq=20, ack=5, flags=2, window=200,
                          payload_bytes=100)
    assert p2 is p1                       # same slot object
    assert p2.packet_id != pid1           # fresh identity
    assert p2.tcp.src_port == 3 and p2.tcp.seq == 20
    assert p2.payload_bytes == 100
    assert pool.fresh == 1 and pool.reused == 1 and pool.released == 1


def test_pool_reuse_bumps_generation():
    pool = _fresh_pool()
    p = pool.acquire_udp(1, 2, payload=b"x", payload_bytes=1)
    gen = p.generation
    pool.release(p)
    q = pool.acquire_udp(3, 4, payload=b"y", payload_bytes=1)
    assert q is p
    assert q.generation == gen + 1


def test_pool_release_is_idempotent():
    pool = _fresh_pool()
    p = pool.acquire_udp(1, 2, payload=None, payload_bytes=8)
    pool.release(p)
    pool.release(p)                       # second release must be a no-op
    assert pool.released == 1
    a = pool.acquire_udp(1, 2, payload=None, payload_bytes=8)
    b = pool.acquire_udp(1, 2, payload=None, payload_bytes=8)
    assert a is not b                     # slot handed out only once


def test_pool_release_foreign_packet_is_noop():
    pool = _fresh_pool()
    p = Packet(payload_bytes=10)          # not pool-owned
    pool.release(p)
    assert pool.released == 0
    assert pool.stats()["free_tcp"] == 0


def test_pool_clone_is_not_pool_owned():
    pool = _fresh_pool()
    p = pool.acquire_tcp(1, 2, seq=0, ack=0, flags=0, window=1,
                         payload_bytes=0)
    c = p.clone()
    pool.release(c)                       # clones never re-enter the pool
    assert pool.released == 0
    pool.release(p)
    assert pool.released == 1


def test_pool_recycled_slot_recomputes_size():
    pool = _fresh_pool()
    p = pool.acquire_tcp(1, 2, seq=0, ack=0, flags=0, window=1,
                         payload_bytes=1000)
    size_large = p.size
    pool.release(p)
    q = pool.acquire_tcp(1, 2, seq=0, ack=0, flags=0, window=1,
                         payload_bytes=0)
    assert q.size == size_large - 1000


def test_pool_disabled_always_allocates():
    pool = _fresh_pool()
    pool.enabled = False
    p = pool.acquire_udp(1, 2, payload=None, payload_bytes=4)
    pool.release(p)                       # no-op while disabled
    q = pool.acquire_udp(1, 2, payload=None, payload_bytes=4)
    assert q is not p
    assert pool.fresh == 2 and pool.reused == 0 and pool.released == 0


def test_pool_fragment_slot_carries_reassembly_meta():
    pool = _fresh_pool()
    original = Packet(payload_bytes=100)
    f = pool.acquire_fragment("a", "b", proto=17, ttl=64, ident=7,
                              chunk=50, fragment=(7, 0, 2),
                              original=original)
    assert f.ip.src == "a" and f.ip.ident == 7
    assert f.meta["fragment"] == (7, 0, 2)
    assert f.meta["original"] is original
    pool.release(f)
    g = pool.acquire_fragment("c", "d", proto=6, ttl=64, ident=9,
                              chunk=10, fragment=(9, 1, 3),
                              original=original)
    assert g is f
    assert g.meta["fragment"] == (9, 1, 3) and g.ip.src == "c"
