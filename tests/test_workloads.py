"""Unit tests for the deterministic synthetic workloads."""

from repro.workloads import (
    all_user_traces,
    andrew_tree,
    object_catalog,
    tree_directories,
    tree_total_bytes,
    user_trace,
)


# ----------------------------------------------------------------------
# Web reference traces
# ----------------------------------------------------------------------
def test_user_trace_deterministic():
    assert user_trace(7, 0) == user_trace(7, 0)


def test_user_traces_differ_by_user_and_seed():
    assert user_trace(7, 0) != user_trace(7, 1)
    assert user_trace(7, 0) != user_trace(8, 0)


def test_user_trace_length():
    assert len(user_trace(1, 0, requests=40)) == 40


def test_all_user_traces_shape():
    traces = all_user_traces(1, users=5, requests=55)
    assert len(traces) == 5
    assert all(len(t) == 55 for t in traces)


def test_object_sizes_in_mid_90s_range():
    for ref in user_trace(1, 0):
        assert 500 <= ref.size <= 60_000


def test_total_workload_volume_reasonable():
    traces = all_user_traces(42)
    total = sum(r.size for t in traces for r in t)
    assert 1_000_000 < total < 4_000_000  # a couple of MB, 1996-style


def test_urls_unique_enough_for_catalog():
    traces = all_user_traces(1)
    catalog = object_catalog(traces)
    for trace in traces:
        for ref in trace:
            assert catalog[ref.url] == ref.size


def test_trace_contains_search_pattern():
    urls = [r.url for r in user_trace(1, 0)]
    assert any("query" in u for u in urls)
    assert any("results" in u for u in urls)
    assert any("doc" in u for u in urls)


# ----------------------------------------------------------------------
# Andrew tree
# ----------------------------------------------------------------------
def test_tree_has_about_70_files():
    assert len(andrew_tree()) == 70


def test_tree_occupies_about_200kb():
    total = tree_total_bytes(andrew_tree())
    assert 180_000 < total < 230_000


def test_tree_deterministic():
    assert andrew_tree(seed=3) == andrew_tree(seed=3)
    assert andrew_tree(seed=3) != andrew_tree(seed=4)


def test_tree_has_compilable_sources_and_headers():
    tree = andrew_tree()
    assert any(f.compiles for f in tree)
    assert any(not f.compiles for f in tree)
    assert any(f.path.endswith(".h") for f in tree)
    assert any(f.path == "Makefile" for f in tree)


def test_tree_directories_cover_all_subdirs():
    tree = andrew_tree()
    dirs = tree_directories(tree)
    for f in tree:
        if "/" in f.path:
            assert f.path.split("/")[0] in dirs


def test_tree_minimum_file_size():
    assert all(f.size >= 256 for f in andrew_tree())
