"""Surgical TCP tests: fabricated segments against one endpoint.

These bypass the network entirely — packets are injected straight into
``segment_arrives`` — to pin down the state machine, congestion
control, and timer behaviour precisely.
"""

import pytest

from repro.net.packet import IPHeader, Packet, PROTO_TCP, TCPHeader
from repro.protocols.ip import IPLayer
from repro.protocols.tcp import (
    CLOSE_WAIT,
    CLOSED,
    DUPACK_THRESHOLD,
    ESTABLISHED,
    FIN_WAIT_1,
    FIN_WAIT_2,
    FIN_WAIT_2_TIMEOUT,
    LAST_ACK,
    MIN_RTO,
    MSS,
    SYN_RCVD,
    SYN_SENT,
    TCPProtocol,
)
from repro.sim import Simulator


class Harness:
    """A TCP endpoint whose wire is a list we can inspect."""

    def __init__(self):
        self.sim = Simulator()
        self.ip = IPLayer(self.sim, ["10.0.0.1"])
        self.wire = []
        self.ip.output = lambda packet: self.wire.append(packet)
        self.proto = TCPProtocol(self.sim, self.ip)

    def connect(self):
        gen = self.proto.connect("10.0.0.1", "10.0.0.2", 80)
        # Drive the generator manually: it yields the state signal.
        try:
            next(gen)
        except StopIteration:
            pass
        self.conn = list(self.proto._conns.values())[0]
        return self.conn

    def inject(self, seq=0, ack=0, flags=TCPHeader.ACK, length=0,
               window=65535, payload=None):
        packet = Packet(
            ip=IPHeader("10.0.0.2", "10.0.0.1", PROTO_TCP),
            tcp=TCPHeader(src_port=80, dst_port=self.conn.lport, seq=seq,
                          ack=ack, flags=flags, window=window),
            payload_bytes=length,
            payload=payload,
        )
        self.conn.segment_arrives(packet)

    def establish(self):
        self.connect()
        self.inject(flags=TCPHeader.SYN | TCPHeader.ACK, ack=1)
        assert self.conn.state == ESTABLISHED
        self.wire.clear()
        return self.conn

    def sent_segments(self):
        return [p.tcp for p in self.wire]


@pytest.fixture
def h():
    return Harness()


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
def test_active_open_sends_syn(h):
    conn = h.connect()
    assert conn.state == SYN_SENT
    assert h.wire[0].tcp.has(TCPHeader.SYN)
    assert not h.wire[0].tcp.has(TCPHeader.ACK)


def test_synack_establishes_and_acks(h):
    conn = h.connect()
    h.wire.clear()
    h.inject(flags=TCPHeader.SYN | TCPHeader.ACK, ack=1)
    assert conn.state == ESTABLISHED
    assert h.wire[-1].tcp.has(TCPHeader.ACK)
    assert h.wire[-1].tcp.ack == 1


def test_syn_retransmitted_on_timeout(h):
    conn = h.connect()
    h.wire.clear()
    h.sim.run(until=3.0)
    syns = [t for t in h.sent_segments() if t.has(TCPHeader.SYN)]
    assert len(syns) >= 1
    assert conn.retransmits >= 1


def test_syn_gives_up_eventually(h):
    conn = h.connect()
    h.sim.run(until=600.0)
    assert conn.state == CLOSED
    assert conn.error is not None


# ----------------------------------------------------------------------
# Congestion control
# ----------------------------------------------------------------------
def test_slow_start_doubles_per_ack_round(h):
    conn = h.establish()
    conn.send(100 * MSS)
    assert conn.cwnd == MSS  # initial window: one segment in flight
    first = [t for t in h.sent_segments() if t.seq == 1]
    assert len(first) == 1
    h.inject(ack=1 + MSS)
    assert conn.cwnd == 2 * MSS
    h.inject(ack=1 + 3 * MSS)
    assert conn.cwnd == 3 * MSS


def test_congestion_avoidance_linear_growth(h):
    conn = h.establish()
    conn.ssthresh = 2 * MSS  # force CA immediately
    conn.send(100 * MSS)
    h.inject(ack=1 + MSS)
    h.inject(ack=1 + 2 * MSS)
    # In CA each ack adds MSS^2/cwnd (< MSS).
    assert 2 * MSS < conn.cwnd < 3.1 * MSS


def test_three_dupacks_trigger_fast_retransmit(h):
    conn = h.establish()
    conn.cwnd = 10 * MSS
    conn.send(10 * MSS)
    h.wire.clear()
    for _ in range(DUPACK_THRESHOLD):
        h.inject(ack=1)  # duplicate acks (nothing new acked)
    assert conn.fast_retransmits == 1
    assert conn.in_fast_recovery
    rtx = h.sent_segments()[0]
    assert rtx.seq == 1  # the oldest unacked segment


def test_two_dupacks_do_not_retransmit(h):
    conn = h.establish()
    conn.cwnd = 10 * MSS
    conn.send(10 * MSS)
    h.wire.clear()
    h.inject(ack=1)
    h.inject(ack=1)
    assert conn.fast_retransmits == 0


def test_window_update_is_not_a_dupack(h):
    conn = h.establish()
    conn.cwnd = 10 * MSS
    conn.send(10 * MSS)
    h.wire.clear()
    for window in (30000, 20000, 40000):  # window changes, same ack
        h.inject(ack=1, window=window)
    assert conn.fast_retransmits == 0


def test_segment_with_data_is_not_a_dupack(h):
    conn = h.establish()
    conn.cwnd = 10 * MSS
    conn.send(10 * MSS)
    h.wire.clear()
    for i in range(3):
        h.inject(seq=1 + i * 100, ack=1, length=100)
    assert conn.fast_retransmits == 0


def test_recovery_exits_at_recovery_point(h):
    conn = h.establish()
    conn.cwnd = 10 * MSS
    conn.send(10 * MSS)
    point = conn.snd_nxt
    for _ in range(DUPACK_THRESHOLD):
        h.inject(ack=1)
    assert conn.in_fast_recovery
    h.inject(ack=point)
    assert not conn.in_fast_recovery
    assert conn.cwnd == pytest.approx(conn.ssthresh)


def test_partial_ack_retransmits_next_hole(h):
    conn = h.establish()
    conn.cwnd = 10 * MSS
    conn.send(10 * MSS)
    for _ in range(DUPACK_THRESHOLD):
        h.inject(ack=1)
    h.wire.clear()
    h.inject(ack=1 + 2 * MSS)  # partial: holes remain
    assert conn.in_fast_recovery
    rtx = [t for t in h.sent_segments() if t.seq == 1 + 2 * MSS]
    assert rtx  # the next hole was retransmitted immediately


def test_timeout_collapses_window_and_backs_off(h):
    conn = h.establish()
    conn.cwnd = 8 * MSS
    conn.send(8 * MSS)
    h.wire.clear()
    h.sim.run(until=MIN_RTO + 2.0)
    assert conn.timeouts >= 1
    assert conn.cwnd == MSS
    assert conn.backoff >= 2
    assert any(t.seq == 1 for t in h.sent_segments())  # go-back-N restart


def test_ack_above_pulled_back_snd_nxt_accepted(h):
    conn = h.establish()
    conn.cwnd = 8 * MSS
    conn.send(8 * MSS)
    high = conn.snd_nxt
    h.sim.run(until=MIN_RTO + 2.0)   # timeout pulls snd_nxt back
    assert conn.snd_nxt < high
    h.inject(ack=high)               # receiver had buffered everything
    assert conn.snd_una == high
    assert conn.snd_nxt >= high


def test_rtt_estimator_sets_rto(h):
    conn = h.establish()
    conn.send(MSS)
    h.sim.schedule(0.05, lambda: None)
    h.sim.run(until=0.05)
    h.inject(ack=1 + MSS)
    assert conn.srtt == pytest.approx(0.05, abs=0.01)
    assert conn.rto == MIN_RTO  # floor dominates small RTTs


# ----------------------------------------------------------------------
# Receive path
# ----------------------------------------------------------------------
def test_out_of_order_buffered_then_delivered(h):
    conn = h.establish()
    h.inject(seq=1 + 500, length=500)       # hole at the front
    assert conn.readable_bytes() == 0
    h.inject(seq=1, length=500)             # fill the hole
    assert conn.readable_bytes() == 1000


def test_out_of_order_triggers_immediate_dup_ack(h):
    conn = h.establish()
    h.wire.clear()
    h.inject(seq=1 + 500, length=500)
    acks = h.sent_segments()
    assert acks and acks[-1].ack == 1  # duplicate ack for the hole


def test_duplicate_data_ignored_but_acked(h):
    conn = h.establish()
    h.inject(seq=1, length=500, flags=TCPHeader.ACK | TCPHeader.PSH)
    h.wire.clear()
    h.inject(seq=1, length=500, flags=TCPHeader.ACK | TCPHeader.PSH)
    assert conn.readable_bytes() == 500  # not double-counted
    assert h.sent_segments()             # but re-acked


def test_psh_forces_immediate_ack(h):
    conn = h.establish()
    h.wire.clear()
    h.inject(seq=1, length=100, flags=TCPHeader.ACK | TCPHeader.PSH)
    assert h.sent_segments()[-1].ack == 101


def test_delayed_ack_fires_on_timer(h):
    conn = h.establish()
    h.wire.clear()
    h.inject(seq=1, length=100)  # no PSH: ack is delayed
    assert not h.sent_segments()
    h.sim.run(until=0.5)
    assert h.sent_segments()[-1].ack == 101


def test_every_second_segment_acked_immediately(h):
    conn = h.establish()
    h.wire.clear()
    h.inject(seq=1, length=MSS)
    h.inject(seq=1 + MSS, length=MSS)
    assert h.sent_segments()[-1].ack == 1 + 2 * MSS


# ----------------------------------------------------------------------
# Teardown
# ----------------------------------------------------------------------
def test_close_sends_fin_after_data(h):
    conn = h.establish()
    conn.send(100)
    conn.close()
    # The data fit in the window, so the FIN follows it immediately
    # and occupies the next sequence slot.
    assert conn.state == FIN_WAIT_1
    fins = [t for t in h.sent_segments() if t.has(TCPHeader.FIN)]
    assert fins and fins[-1].seq == 101


def test_close_defers_fin_until_window_allows(h):
    conn = h.establish()
    conn.cwnd = float(MSS)
    conn.send(5 * MSS)   # only the first segment fits the window
    conn.close()
    assert conn.state == ESTABLISHED   # FIN cannot jump the queue
    fins = [t for t in h.sent_segments() if t.has(TCPHeader.FIN)]
    assert not fins
    for k in range(1, 6):              # ack everything, window opens
        h.inject(ack=1 + k * MSS)
    assert conn.state == FIN_WAIT_1
    fins = [t for t in h.sent_segments() if t.has(TCPHeader.FIN)]
    assert fins and fins[-1].seq == 1 + 5 * MSS


def test_fin_ack_then_peer_fin_completes(h):
    conn = h.establish()
    conn.close()
    h.inject(ack=2)  # our FIN (seq 1) acked
    assert conn.state == FIN_WAIT_2
    h.inject(seq=1, flags=TCPHeader.ACK | TCPHeader.FIN, ack=2)
    assert conn.state == CLOSED


def test_simultaneous_close_via_closing_state(h):
    conn = h.establish()
    conn.close()
    assert conn.state == FIN_WAIT_1
    h.inject(seq=1, flags=TCPHeader.ACK | TCPHeader.FIN, ack=1)  # FIN, no ack of ours
    # Both FINs crossed: we are in CLOSING until our FIN is acked.
    h.inject(ack=2)
    assert conn.state == CLOSED


def test_peer_close_first_then_ours(h):
    conn = h.establish()
    h.inject(seq=1, flags=TCPHeader.ACK | TCPHeader.FIN, ack=1)
    assert conn.state == CLOSE_WAIT
    conn.close()
    assert conn.state == LAST_ACK
    h.inject(ack=2)
    assert conn.state == CLOSED


def test_fin_wait_2_reaper_cleans_orphan(h):
    conn = h.establish()
    conn.close()
    h.inject(ack=2)
    assert conn.state == FIN_WAIT_2
    h.sim.run(until=FIN_WAIT_2_TIMEOUT + 15.0)
    assert conn.state == CLOSED


def test_rst_tears_down_immediately(h):
    conn = h.establish()
    conn.send(1000)
    h.inject(flags=TCPHeader.RST)
    assert conn.state == CLOSED
    assert conn.error is not None


def test_fin_counted_in_sequence_space(h):
    conn = h.establish()
    h.inject(seq=1, length=100, flags=TCPHeader.ACK | TCPHeader.FIN)
    assert conn.rcv_nxt == 102  # 100 data + 1 FIN
    assert conn.readable_bytes() == 100
