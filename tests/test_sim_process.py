"""Unit tests for generator-based processes, signals and queues."""

import pytest

from repro.sim import (
    Interrupt,
    Queue,
    Signal,
    Simulator,
    Timeout,
    run_process,
    signal_or_timeout,
    spawn,
)


def test_timeout_advances_clock(sim):
    def body():
        yield Timeout(2.5)
        return sim.now

    assert run_process(sim, body()) == 2.5


def test_sequential_timeouts_accumulate(sim):
    def body():
        yield Timeout(1.0)
        yield Timeout(2.0)
        return sim.now

    assert run_process(sim, body()) == 3.0


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_process_return_value(sim):
    def body():
        yield Timeout(0.1)
        return "done"

    assert run_process(sim, body()) == "done"


def test_signal_wakes_waiter_with_value(sim):
    signal = Signal(sim)
    got = []

    def waiter():
        value = yield signal
        got.append(value)

    spawn(sim, waiter())
    sim.schedule(1.0, signal.fire, 42)
    sim.run()
    assert got == [42]


def test_signal_wakes_all_current_waiters(sim):
    signal = Signal(sim)
    got = []

    def waiter(i):
        yield signal
        got.append(i)

    for i in range(3):
        spawn(sim, waiter(i))
    sim.schedule(1.0, signal.fire)
    sim.run()
    assert sorted(got) == [0, 1, 2]


def test_signal_fire_returns_waiter_count(sim):
    signal = Signal(sim)

    def waiter():
        yield signal

    spawn(sim, waiter())
    spawn(sim, waiter())
    sim.run(until=0.1)
    assert signal.fire() == 2


def test_signal_does_not_wake_future_waiters(sim):
    signal = Signal(sim)
    woken = []
    signal.fire("early")

    def waiter():
        value = yield signal
        woken.append(value)

    spawn(sim, waiter())
    sim.schedule(1.0, signal.fire, "late")
    sim.run()
    assert woken == ["late"]


def test_waiting_on_child_process_gets_value(sim):
    def child():
        yield Timeout(1.0)
        return "child-result"

    def parent():
        proc = spawn(sim, child())
        value = yield proc
        return value

    assert run_process(sim, parent()) == "child-result"


def test_waiting_on_finished_child_resumes_immediately(sim):
    def child():
        yield Timeout(0.5)
        return 7

    def parent():
        proc = spawn(sim, child())
        yield Timeout(2.0)  # child long done
        value = yield proc
        return (value, sim.now)

    value, now = run_process(sim, parent())
    assert value == 7
    assert now == 2.0


def test_child_exception_propagates_to_parent(sim):
    def child():
        yield Timeout(0.1)
        raise RuntimeError("boom")

    def parent():
        proc = spawn(sim, child())
        try:
            yield proc
        except RuntimeError as err:
            return f"caught {err}"

    assert run_process(sim, parent()) == "caught boom"


def test_unwaited_process_error_raises_from_run(sim):
    def body():
        yield Timeout(0.1)
        raise ValueError("unhandled")

    spawn(sim, body())
    with pytest.raises(ValueError):
        sim.run()


def test_interrupt_thrown_at_wait_point(sim):
    log = []

    def body():
        try:
            yield Timeout(100.0)
        except Interrupt as intr:
            log.append(intr.cause)

    proc = spawn(sim, body())
    sim.schedule(1.0, proc.interrupt, "stop")
    sim.run()
    assert log == ["stop"]
    assert not proc.alive


def test_interrupt_cancels_pending_timer(sim):
    def body():
        yield Timeout(100.0)

    proc = spawn(sim, body())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert sim.now < 100.0


def test_interrupt_dead_process_is_noop(sim):
    def body():
        yield Timeout(0.1)

    proc = spawn(sim, body())
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()


def test_bare_yield_is_cooperative(sim):
    order = []

    def a():
        order.append("a1")
        yield
        order.append("a2")

    def b():
        order.append("b1")
        yield
        order.append("b2")

    spawn(sim, a())
    spawn(sim, b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_unsupported_yield_value_errors(sim):
    def body():
        yield "nonsense"

    spawn(sim, body())
    with pytest.raises(TypeError):
        sim.run()


def test_run_process_detects_incomplete(sim):
    signal = Signal(sim)

    def body():
        yield signal  # never fired

    with pytest.raises(RuntimeError):
        run_process(sim, body())


def test_queue_put_then_get(sim):
    queue = Queue(sim)
    queue.put("item")

    def body():
        item = yield from queue.get()
        return item

    assert run_process(sim, body()) == "item"


def test_queue_get_blocks_until_put(sim):
    queue = Queue(sim)

    def body():
        item = yield from queue.get()
        return (item, sim.now)

    proc = spawn(sim, body())
    sim.schedule(3.0, queue.put, "late")
    sim.run()
    assert proc.value == ("late", 3.0)


def test_queue_fifo_order(sim):
    queue = Queue(sim)
    for i in range(3):
        queue.put(i)

    def body():
        out = []
        for _ in range(3):
            out.append((yield from queue.get()))
        return out

    assert run_process(sim, body()) == [0, 1, 2]


def test_queue_len(sim):
    queue = Queue(sim)
    queue.put(1)
    queue.put(2)
    assert len(queue) == 2


def test_signal_or_timeout_times_out_with_none(sim):
    signal = Signal(sim)

    def body():
        value = yield signal_or_timeout(sim, signal, 2.0)
        return (value, sim.now)

    assert run_process(sim, body()) == (None, 2.0)


def test_signal_or_timeout_signal_wins(sim):
    signal = Signal(sim)

    def body():
        value = yield signal_or_timeout(sim, signal, 10.0)
        return (value, sim.now)

    proc = spawn(sim, body())
    sim.schedule(1.0, signal.fire, "won")
    sim.run()
    assert proc.value == ("won", 1.0)
    assert sim.now < 10.0  # the timer was cancelled


def test_spawned_process_does_not_start_synchronously(sim):
    started = []

    def body():
        started.append(True)
        yield Timeout(0.0)

    spawn(sim, body())
    assert started == []
    sim.run()
    assert started == [True]
