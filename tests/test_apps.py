"""Unit/integration tests for the benchmark applications."""

import pytest

from repro.apps.andrew import AndrewBenchmark, AndrewCpuModel
from repro.apps.ftp import FtpClient, FtpServer
from repro.apps.nfs import NfsClient, NfsServer
from repro.apps.ping import ModifiedPing
from repro.apps.synrgen import SynRGenUser
from repro.apps.web import WebBrowser, WebServer
from repro.hosts import LAPTOP_ADDR, LiveWorld, ModulationWorld, SERVER_ADDR
from repro.workloads import all_user_traces, andrew_tree, object_catalog
from tests.conftest import ConstantProfile, run_to_completion


# ----------------------------------------------------------------------
# Modified ping
# ----------------------------------------------------------------------
def test_ping_emits_three_packets_per_second(live_world):
    w = live_world
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(10.0))
    run_to_completion(w, proc, cap=15.0)
    assert ping.groups_sent == 10
    assert ping.echoes_sent == 30  # 1 small + 2 large per group
    assert ping.replies_seen == 30


def test_ping_sequence_numbering(live_world):
    w = live_world
    seen = []
    orig = w.laptop.icmp.send_echo

    def spy(src, dst, ident, seq, payload_bytes, meta=None):
        seen.append((seq, payload_bytes))
        return orig(src, dst, ident, seq, payload_bytes, meta=meta)

    w.laptop.icmp.send_echo = spy
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(3.0))
    run_to_completion(w, proc, cap=6.0)
    assert [s for s, _ in seen[:6]] == [0, 1, 2, 3, 4, 5]
    sizes = {s: p for s, p in seen}
    assert sizes[0] < sizes[1] == sizes[2]


def test_ping_skips_stage2_when_stage1_lost():
    world = LiveWorld(profile=ConstantProfile(loss_up=1.0), seed=1)
    ping = ModifiedPing(world.laptop, SERVER_ADDR)
    proc = world.laptop.spawn(ping.run(5.0))
    run_to_completion(world, proc, cap=20.0)
    assert ping.stage1_timeouts == ping.groups_sent
    assert ping.echoes_sent == ping.groups_sent  # only the small probes


def test_ping_payload_carries_host_timestamp(live_world):
    w = live_world
    captured = []
    hook = lambda dev, pkt, direction, ts: captured.append(pkt)
    w.radio.output_hooks.append(hook)
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(2.0))
    run_to_completion(w, proc, cap=5.0)
    assert all("echo_sent_at_host" in p.meta for p in captured)


# ----------------------------------------------------------------------
# FTP
# ----------------------------------------------------------------------
def _ftp_roundtrip(world, nbytes):
    FtpServer(world.server).start()
    client = FtpClient(world.laptop, SERVER_ADDR)
    results = {}

    def body():
        results["send"] = yield from client.transfer("send", nbytes)
        results["recv"] = yield from client.transfer("recv", nbytes)

    proc = world.laptop.spawn(body())
    run_to_completion(world, proc, cap=600.0)
    return results


def test_ftp_send_and_recv_complete(mod_world):
    results = _ftp_roundtrip(mod_world, 1_000_000)
    assert results["send"].nbytes == 1_000_000
    assert results["recv"].elapsed > 0


def test_ftp_ethernet_times_match_paper_baseline(mod_world):
    results = _ftp_roundtrip(mod_world, 10 * 1024 * 1024)
    # Paper's final row: send 20.50 (0.08), recv 18.83 (0.17).
    assert results["send"].elapsed == pytest.approx(20.5, rel=0.10)
    assert results["recv"].elapsed == pytest.approx(18.8, rel=0.10)


def test_ftp_throughput_property(mod_world):
    results = _ftp_roundtrip(mod_world, 2_000_000)
    assert results["send"].throughput_bps == pytest.approx(
        2_000_000 * 8 / results["send"].elapsed)


def test_ftp_direction_validation(mod_world):
    client = FtpClient(mod_world.laptop, SERVER_ADDR)
    with pytest.raises(ValueError):
        next(client.transfer("sideways"))


def test_ftp_server_survives_consecutive_sessions(mod_world):
    w = mod_world
    server = FtpServer(w.server)
    server.start()
    client = FtpClient(w.laptop, SERVER_ADDR)
    results = {}

    def body():
        results["first"] = yield from client.transfer("send", 100_000)
        # A fresh control session against the same long-lived server.
        results["second"] = yield from client.transfer("recv", 100_000)

    run_to_completion(w, w.laptop.spawn(body()), cap=300.0)
    assert server.transfers == 2
    assert results["second"].nbytes == 100_000


# ----------------------------------------------------------------------
# Web
# ----------------------------------------------------------------------
def test_web_replay_fetches_everything(mod_world):
    traces = all_user_traces(seed=1, users=2, requests=10)
    WebServer(mod_world.server, object_catalog(traces)).start()
    browser = WebBrowser(mod_world.laptop, SERVER_ADDR)

    def body():
        result = yield from browser.replay(traces)
        return result

    result = run_to_completion(mod_world, mod_world.laptop.spawn(body()),
                               cap=120.0)
    assert result.requests == 20
    assert result.failures == 0
    assert result.bytes_fetched == sum(r.size for t in traces for r in t)
    assert len(result.per_request_elapsed) == 20


def test_web_missing_object_counts_failure(mod_world):
    WebServer(mod_world.server, {"/exists.html": 1000}).start()
    browser = WebBrowser(mod_world.laptop, SERVER_ADDR)

    def body():
        from repro.workloads.webtraces import WebReference
        trace = [[WebReference("/exists.html", 1000),
                  WebReference("/ghost.html", 1)]]
        result = yield from browser.replay(trace)
        return result

    result = run_to_completion(mod_world, mod_world.laptop.spawn(body()),
                               cap=60.0)
    assert result.failures == 1
    assert result.bytes_fetched == 1000


def test_web_render_time_dominates_ethernet_elapsed(mod_world):
    traces = all_user_traces(seed=1, users=1, requests=10)
    WebServer(mod_world.server, object_catalog(traces)).start()
    browser = WebBrowser(mod_world.laptop, SERVER_ADDR)

    def body():
        result = yield from browser.replay(traces)
        return result

    result = run_to_completion(mod_world, mod_world.laptop.spawn(body()),
                               cap=60.0)
    render_floor = 10 * browser.render_fixed
    assert result.elapsed > render_floor


# ----------------------------------------------------------------------
# Andrew
# ----------------------------------------------------------------------
def _run_andrew(world, cpu=None):
    server = NfsServer(world.server)
    tree = AndrewBenchmark.populate_server(server.fs)
    server.start()
    client = NfsClient(world.laptop, SERVER_ADDR)
    bench = AndrewBenchmark(client, tree=tree, cpu=cpu)

    def body():
        result = yield from bench.run()
        return result

    proc = world.laptop.spawn(body())
    return run_to_completion(world, proc, cap=600.0), client, server


def test_andrew_all_phases_present(mod_world):
    result, client, server = _run_andrew(mod_world)
    assert set(result.phase_times) == {"MakeDir", "Copy", "ScanDir",
                                       "ReadAll", "Make", "Total"}
    assert result.phase_times["Total"] == pytest.approx(result.total)


def test_andrew_ethernet_total_matches_paper_baseline(mod_world):
    result, _, _ = _run_andrew(mod_world)
    # Paper's final row: Total 124.00 (1.63).
    assert result.phase_times["Total"] == pytest.approx(124.0, rel=0.08)


def test_andrew_copies_every_file(mod_world):
    result, client, server = _run_andrew(mod_world)
    tree = andrew_tree()
    src_files = server.fs.file_count()
    # source + copies + objects + a.out
    compiled = sum(1 for f in tree if f.compiles)
    assert src_files == len(tree) * 2 + compiled + 1


def test_andrew_make_phase_dominates(mod_world):
    result, _, _ = _run_andrew(mod_world)
    assert result.phase_times["Make"] > result.phase_times["Copy"]
    assert result.phase_times["Make"] > 0.5 * result.phase_times["Total"]


def test_andrew_warm_phases_send_no_data_reads(mod_world):
    _, client, _ = _run_andrew(mod_world)
    tree = andrew_tree()
    # Copy reads each source file once; ReadAll and Make re-read from
    # the warm data cache, so READ count equals the cold pass only.
    expected_reads = sum((f.size + 8191) // 8192 for f in tree)
    assert client.stats.read == expected_reads


def test_andrew_cpu_model_scales_make(mod_world):
    fast = AndrewCpuModel(compile_per_file=0.1)
    result, _, _ = _run_andrew(mod_world, cpu=fast)
    assert result.phase_times["Make"] < 40.0


# ----------------------------------------------------------------------
# SynRGen
# ----------------------------------------------------------------------
def test_synrgen_generates_nfs_traffic(mod_world):
    w = mod_world
    server = NfsServer(w.server)
    SynRGenUser.populate_server(server.fs, user_id=0)
    server.start()
    client = NfsClient(w.laptop, SERVER_ADDR)
    user = SynRGenUser(w.laptop, client, user_id=0, seed=1)
    proc = w.laptop.spawn(user.run(30.0))
    run_to_completion(w, proc, cap=60.0)
    assert user.cycles >= 1
    assert client.stats.read > 0
    assert client.stats.write > 0


def test_synrgen_working_set_populated():
    from repro.apps.filesystem import FileSystem

    fs = FileSystem()
    SynRGenUser.populate_server(fs, user_id=3)
    names = [n for n, _ in fs.readdir(fs.resolve("synrgen/u3"))]
    assert len(names) == 12


def test_synrgen_deterministic_per_seed(mod_world):
    def cycle_count(seed):
        w = ModulationWorld(seed=9)
        server = NfsServer(w.server)
        SynRGenUser.populate_server(server.fs, user_id=0)
        server.start()
        client = NfsClient(w.laptop, SERVER_ADDR)
        user = SynRGenUser(w.laptop, client, user_id=0, seed=seed)
        proc = w.laptop.spawn(user.run(20.0))
        run_to_completion(w, proc, cap=60.0)
        return user.cycles, client.stats.total_calls()

    assert cycle_count(5) == cycle_count(5)
