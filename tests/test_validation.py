"""Tests for the validation harness and figure renderers.

These run miniature versions of the paper's experiments (small
transfers, short traces, two trials) so the whole machinery is
exercised in seconds rather than minutes.
"""

import pytest

from repro.analysis import Summary
from repro.scenarios import PorterScenario, WeanScenario
from repro.scenarios.base import Scenario
from repro.validation import (
    AndrewRunner,
    FtpRunner,
    WebRunner,
    characterize_scenario,
    compensation_vb,
    ethernet_baseline,
    figure1_compensation,
    render_andrew_table,
    render_benchmark_table,
    run_ethernet_trial,
    run_live_trial,
    validate_scenario,
)
from repro.validation.figures import Figure1Result, CompensationPoint
from tests.conftest import ConstantProfile


class MiniScenario(Scenario):
    """A short, benign scenario for fast harness tests."""

    name = "mini"
    duration = 60.0
    checkpoints = ()

    def base_conditions(self, u, rng):
        from repro.net.wavelan import ChannelConditions

        return ChannelConditions(
            signal_level=20.0 + rng.uniform(-1, 1),
            loss_prob_up=0.005,
            loss_prob_down=0.004,
            bandwidth_factor=0.8,
            access_latency_mean=0.0004,
        )


MINI_FTP = FtpRunner(nbytes=1_000_000)


def test_compensation_vb_cached():
    a = compensation_vb()
    b = compensation_vb()
    assert a == b
    assert a == pytest.approx(0.8e-6, rel=0.3)


def test_run_live_trial_returns_metrics():
    runner = FtpRunner(nbytes=500_000, direction="send")
    metrics = run_live_trial(MiniScenario(), runner, seed=0, trial=0)
    assert set(metrics) == {"send"}
    assert metrics["send"] > 3.0  # slower than Ethernet for 500 KB


def test_run_ethernet_trial_faster_than_live():
    runner = FtpRunner(nbytes=500_000, direction="send")
    live = run_live_trial(MiniScenario(), runner, seed=0, trial=0)
    ether = run_ethernet_trial(runner, seed=0, trial=0)
    assert ether["send"] < live["send"]


def test_validate_scenario_full_protocol():
    validation = validate_scenario(MiniScenario(), MINI_FTP, seed=0, trials=2)
    assert validation.scenario == "mini"
    assert set(validation.comparisons) == {"send", "recv"}
    assert len(validation.distillations) == 2
    comp = validation.comparison("send")
    assert comp.real.n == 2 and comp.modulated.n == 2
    assert comp.real.mean > 0
    assert comp.sigma_distance >= 0.0


def test_ftp_variants_are_independent_runs():
    runner = FtpRunner(nbytes=1000)
    variants = runner.variants()
    assert [v.metrics for v in variants] == [("send",), ("recv",)]


def test_ethernet_baseline_all_metrics():
    baseline = ethernet_baseline(FtpRunner(nbytes=500_000), seed=0, trials=2)
    assert set(baseline) == {"send", "recv"}
    assert all(isinstance(s, Summary) for s in baseline.values())


def test_characterize_scenario_produces_series():
    character = characterize_scenario(PorterScenario(), seed=0, trials=2)
    labels, lows, highs = character.checkpoint_ranges("latency_ms")
    assert labels == [f"x{i}" for i in range(7)]
    assert all(h >= l for l, h in zip(lows, highs))
    bw = character.all_values("bandwidth_kbps")
    assert bw and 500 < sum(bw) / len(bw) < 2000  # Kb/s
    text = character.render()
    assert "latency_ms" in text and "x3" in text


def test_characterize_histogram_mode():
    character = characterize_scenario(MiniScenario(), seed=0, trials=2)
    character.scenario.has_motion = False
    text = character.render()
    assert "loss_pct" in text


def test_render_benchmark_table_shapes():
    validation = validate_scenario(MiniScenario(), MINI_FTP, seed=0, trials=2)
    baseline = ethernet_baseline(MINI_FTP, seed=0, trials=2)
    text = render_benchmark_table([validation], baseline,
                                  title="Figure 7 (mini)")
    assert "Mini" in text
    assert "send" in text and "recv" in text
    assert "Ethernet" in text


def test_render_andrew_table_layout():
    summaries = {p: Summary(mean=float(i + 1), std=0.1, n=4)
                 for i, p in enumerate(("MakeDir", "Copy", "ScanDir",
                                        "ReadAll", "Make", "Total"))}

    class FakeComparison:
        def __init__(self, s):
            self.real = s
            self.modulated = s

    class FakeValidation:
        scenario = "wean"
        comparisons = {p: FakeComparison(s) for p, s in summaries.items()}

    text = render_andrew_table([FakeValidation()], summaries)
    assert "MakeDir" in text and "Wean" in text and "Ethernet" in text


def test_figure1_result_gap_math():
    result = Figure1Result(points=[
        CompensationPoint(1000, "store", True, 10.0),
        CompensationPoint(1000, "fetch", True, 11.0),
        CompensationPoint(1000, "fetch", False, 14.0),
        CompensationPoint(1000, "store", False, 10.0),
    ])
    gap_with = result.fetch_store_gap(compensated=True)
    gap_without = result.fetch_store_gap(compensated=False)
    assert gap_without > gap_with > 0.0
    assert "Figure 1" in result.render()


def test_figure1_compensation_mini_run():
    result = figure1_compensation(seed=0, sizes=(512 * 1024,))
    assert len(result.points) == 4
    # Without compensation, fetch must lag store; with it, the gap
    # narrows.
    assert result.fetch_store_gap(False) > result.fetch_store_gap(True)
