"""Tests for collected-trace analysis."""

import pytest

from repro.analysis.tracestats import (
    analyze_trace,
    interarrival_summary,
    signal_timeline,
    throughput_timeline,
)
from repro.apps.ping import ModifiedPing
from repro.core import trace_collection_run
from repro.core.traceformat import (
    DIR_IN,
    DIR_OUT,
    DeviceStatusRecord,
    LostRecordsRecord,
    PacketRecord,
)
from repro.hosts import SERVER_ADDR
from repro.net.packet import PROTO_ICMP, PROTO_UDP
from tests.conftest import run_to_completion


def _rec(ts, direction=DIR_OUT, proto=PROTO_ICMP, size=100, icmp_type=-1,
         seq=-1, rtt=-1.0):
    return PacketRecord(timestamp=ts, direction=direction, proto=proto,
                        size=size, icmp_type=icmp_type, seq=seq, rtt=rtt)


def test_analyze_counts_by_protocol_and_direction():
    records = [
        _rec(0.0, DIR_OUT, PROTO_ICMP, 100),
        _rec(0.5, DIR_IN, PROTO_ICMP, 100),
        _rec(1.0, DIR_OUT, PROTO_UDP, 300),
    ]
    stats = analyze_trace(records)
    assert stats.by_protocol["icmp"].packets == 2
    assert stats.by_protocol["icmp"].bytes_in == 100
    assert stats.by_protocol["udp"].packets_out == 1
    assert stats.total_packets == 3
    assert stats.duration == pytest.approx(1.0)


def test_analyze_rtt_and_reply_ratio():
    records = [
        _rec(0.0, DIR_OUT, icmp_type=8, seq=0),
        _rec(0.01, DIR_IN, icmp_type=0, seq=0, rtt=0.01),
        _rec(1.0, DIR_OUT, icmp_type=8, seq=1),  # never answered
    ]
    stats = analyze_trace(records)
    assert stats.echo_sent == 2
    assert stats.echo_answered == 1
    assert stats.reply_ratio == pytest.approx(0.5)
    assert stats.rtt.mean == pytest.approx(0.01)


def test_analyze_signal_and_losses():
    records = [
        _rec(0.0),
        DeviceStatusRecord(0.5, 17.0, 10.0, 3.0),
        DeviceStatusRecord(1.5, 19.0, 10.0, 3.0),
        LostRecordsRecord(-1.0, "packet", 7),
    ]
    stats = analyze_trace(records)
    assert stats.signal.mean == pytest.approx(18.0)
    assert stats.status_samples == 2
    assert stats.records_lost == 7
    assert "WARNING" in stats.render()


def test_analyze_empty_rejected():
    with pytest.raises(ValueError):
        analyze_trace([])


def test_render_contains_key_lines():
    records = [
        _rec(0.0, DIR_OUT, icmp_type=8, seq=0),
        _rec(0.01, DIR_IN, icmp_type=0, seq=0, rtt=0.01),
    ]
    text = analyze_trace(records).render()
    assert "icmp" in text
    assert "echo RTT" in text
    assert "echoes answered 1/1" in text


def test_throughput_timeline_buckets():
    records = [_rec(t, size=1000) for t in (0.0, 1.0, 2.0, 7.0)]
    timeline = throughput_timeline(records, bucket=5.0)
    assert timeline[0] == (0.0, pytest.approx(3000 * 8 / 5.0))
    assert timeline[1] == (5.0, pytest.approx(1000 * 8 / 5.0))


def test_throughput_timeline_direction_filter():
    records = [_rec(0.0, DIR_OUT, size=1000), _rec(0.1, DIR_IN, size=500)]
    out_only = throughput_timeline(records, bucket=1.0, direction=DIR_OUT)
    assert out_only[0][1] == pytest.approx(8000.0)


def test_throughput_timeline_validation():
    with pytest.raises(ValueError):
        throughput_timeline([], bucket=0.0)
    assert throughput_timeline([], bucket=1.0) == []


def test_signal_timeline_relative_times():
    records = [DeviceStatusRecord(10.0, 15.0, 1, 1),
               DeviceStatusRecord(12.0, 18.0, 1, 1)]
    timeline = signal_timeline(records)
    assert timeline == [(0.0, 15.0), (2.0, 18.0)]


def test_interarrival_summary():
    records = [_rec(t, DIR_IN) for t in (0.0, 1.0, 3.0)]
    summary = interarrival_summary(records, direction=DIR_IN)
    assert summary.mean == pytest.approx(1.5)
    assert interarrival_summary([], direction=DIR_IN) is None


def test_analyze_real_collected_trace(live_world):
    w = live_world
    daemon = trace_collection_run(w.laptop, w.radio)
    ping = ModifiedPing(w.laptop, SERVER_ADDR)
    proc = w.laptop.spawn(ping.run(10.0))
    run_to_completion(w, proc, cap=20.0)
    w.run(until=w.sim.now + 2.0)
    stats = analyze_trace(daemon.records)
    assert stats.by_protocol["icmp"].packets_out == 30
    assert stats.reply_ratio == 1.0
    assert stats.rtt is not None and stats.rtt.mean < 0.1
    assert stats.signal is not None
    assert 8.0 <= stats.duration <= 13.0
