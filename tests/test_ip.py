"""Unit tests for the IP layer: routing, demux, fragmentation."""

import pytest
from hypothesis import given, strategies as st

from repro.net import IPHeader, LoopbackDevice, Packet, PROTO_ICMP, PROTO_UDP, UDPHeader
from repro.net.packet import IP_HEADER_BYTES
from repro.protocols.ip import IPLayer, Reassembler, RoutingTable
from repro.sim import Simulator


def _layer(sim, addresses=("10.0.0.1",), **kw):
    layer = IPLayer(sim, list(addresses), **kw)
    device = LoopbackDevice(sim)
    layer.routing.set_default(device)
    return layer, device


# ----------------------------------------------------------------------
# Routing table
# ----------------------------------------------------------------------
def test_host_route_beats_default():
    sim = Simulator()
    table = RoutingTable()
    d1 = LoopbackDevice(sim, "lo1")
    d2 = LoopbackDevice(sim, "lo2")
    table.set_default(d1)
    table.add_host_route("10.0.0.9", d2)
    assert table.lookup("10.0.0.9") is d2
    assert table.lookup("10.0.0.8") is d1


def test_no_route_returns_none():
    assert RoutingTable().lookup("1.2.3.4") is None


def test_routes_listing():
    sim = Simulator()
    table = RoutingTable()
    table.set_default(LoopbackDevice(sim, "lo9"))
    assert table.routes() == {"default": "lo9"}


# ----------------------------------------------------------------------
# Output / input paths
# ----------------------------------------------------------------------
def test_send_stamps_header_and_transmits():
    sim = Simulator()
    layer, device = _layer(sim)
    sent = []
    device.send = sent.append
    layer.send("10.0.0.1", "10.0.0.2", PROTO_ICMP, Packet(payload_bytes=10))
    assert len(sent) == 1
    assert sent[0].ip.src == "10.0.0.1"
    assert sent[0].ip.ident > 0


def test_no_route_counts_drop():
    sim = Simulator()
    layer = IPLayer(sim, ["10.0.0.1"])
    layer.send("10.0.0.1", "10.0.0.2", PROTO_ICMP, Packet())
    assert layer.dropped_no_route == 1


def test_output_requires_ip_header():
    sim = Simulator()
    layer, _ = _layer(sim)
    with pytest.raises(ValueError):
        layer.output(Packet())


def test_input_demuxes_by_protocol():
    sim = Simulator()
    layer, _ = _layer(sim)
    got = []
    layer.register_protocol(PROTO_ICMP, got.append)
    pkt = Packet(ip=IPHeader("10.0.0.2", "10.0.0.1", PROTO_ICMP))
    layer.input(pkt)
    assert got == [pkt]
    assert layer.received == 1


def test_input_not_mine_dropped_without_forwarding():
    sim = Simulator()
    layer, _ = _layer(sim)
    layer.input(Packet(ip=IPHeader("a", "10.9.9.9", PROTO_ICMP)))
    assert layer.dropped_not_mine == 1


def test_forwarding_decrements_ttl():
    sim = Simulator()
    layer, device = _layer(sim, forwarding=True)
    sent = []
    device.send = sent.append
    layer.input(Packet(ip=IPHeader("a", "10.9.9.9", PROTO_ICMP, ttl=5)))
    assert layer.forwarded == 1
    assert sent[0].ip.ttl == 4


def test_forwarding_drops_expired_ttl():
    sim = Simulator()
    layer, device = _layer(sim, forwarding=True)
    layer.input(Packet(ip=IPHeader("a", "10.9.9.9", PROTO_ICMP, ttl=1)))
    assert layer.dropped_ttl == 1


def test_outbound_filter_intercepts():
    sim = Simulator()
    layer, device = _layer(sim)
    intercepted = []

    def outbound(packet, dev, forward):
        intercepted.append(packet)
        forward(packet)

    layer.outbound_filter = outbound
    sent = []
    device.send = sent.append
    layer.send("10.0.0.1", "10.0.0.2", PROTO_ICMP, Packet())
    assert len(intercepted) == 1 and len(sent) == 1


def test_inbound_filter_intercepts():
    sim = Simulator()
    layer, _ = _layer(sim)
    got = []
    layer.register_protocol(PROTO_ICMP, got.append)
    dropped = []
    layer.inbound_filter = lambda packet, deliver: dropped.append(packet)
    layer.input(Packet(ip=IPHeader("a", "10.0.0.1", PROTO_ICMP)))
    assert got == [] and len(dropped) == 1


def test_multiple_addresses_accepted():
    sim = Simulator()
    layer, _ = _layer(sim, addresses=("10.0.0.1", "10.0.0.99"))
    got = []
    layer.register_protocol(PROTO_ICMP, got.append)
    layer.input(Packet(ip=IPHeader("a", "10.0.0.99", PROTO_ICMP)))
    assert len(got) == 1


# ----------------------------------------------------------------------
# Fragmentation / reassembly
# ----------------------------------------------------------------------
def _udp_datagram(nbytes, src="10.0.0.1", dst="10.0.0.2"):
    return Packet(ip=IPHeader(src, dst, PROTO_UDP, ident=77),
                  udp=UDPHeader(1000, 2000), payload_bytes=nbytes)


def test_small_datagram_not_fragmented():
    sim = Simulator()
    layer, device = _layer(sim)
    sent = []
    device.send = sent.append
    layer.output(_udp_datagram(1000))
    assert len(sent) == 1
    assert layer.datagrams_fragmented == 0


def test_large_datagram_fragments():
    sim = Simulator()
    layer, device = _layer(sim)
    sent = []
    device.send = sent.append
    layer.output(_udp_datagram(8192))
    assert layer.datagrams_fragmented == 1
    assert len(sent) > 1
    for frag in sent:
        assert frag.ip_size <= layer.mtu
        assert "fragment" in frag.meta


def test_fragment_payload_bytes_sum_to_original_body():
    sim = Simulator()
    layer, device = _layer(sim)
    sent = []
    device.send = sent.append
    original = _udp_datagram(8192)
    body = original.ip_size - IP_HEADER_BYTES
    layer.output(original)
    assert sum(f.payload_bytes for f in sent) == body


def test_reassembly_delivers_original_once():
    sim = Simulator()
    send_layer, device = _layer(sim)
    recv_layer = IPLayer(sim, ["10.0.0.2"])
    got = []
    recv_layer.register_protocol(PROTO_UDP, got.append)
    fragments = []
    device.send = fragments.append
    original = _udp_datagram(8192)
    send_layer.output(original)
    for frag in fragments:
        recv_layer.input(frag)
    assert got == [original]


def test_reassembly_handles_out_of_order_fragments():
    sim = Simulator()
    send_layer, device = _layer(sim)
    recv_layer = IPLayer(sim, ["10.0.0.2"])
    got = []
    recv_layer.register_protocol(PROTO_UDP, got.append)
    fragments = []
    device.send = fragments.append
    send_layer.output(_udp_datagram(8192))
    for frag in reversed(fragments):
        recv_layer.input(frag)
    assert len(got) == 1


def test_missing_fragment_never_delivers():
    sim = Simulator()
    send_layer, device = _layer(sim)
    recv_layer = IPLayer(sim, ["10.0.0.2"])
    got = []
    recv_layer.register_protocol(PROTO_UDP, got.append)
    fragments = []
    device.send = fragments.append
    send_layer.output(_udp_datagram(8192))
    for frag in fragments[:-1]:
        recv_layer.input(frag)
    assert got == []
    assert recv_layer.reassembler.pending == 1


def test_reassembly_times_out_partial_datagrams():
    sim = Simulator()
    reasm = Reassembler(sim)
    frag = _udp_datagram(100)
    frag.meta["fragment"] = (1, 0, 2)
    frag.meta["original"] = frag
    assert reasm.accept(frag) is None
    sim.run(until=60.0)
    assert reasm.pending == 0
    assert reasm.timed_out == 1


def test_duplicate_fragments_are_idempotent():
    sim = Simulator()
    send_layer, device = _layer(sim)
    recv_layer = IPLayer(sim, ["10.0.0.2"])
    got = []
    recv_layer.register_protocol(PROTO_UDP, got.append)
    fragments = []
    device.send = fragments.append
    send_layer.output(_udp_datagram(8192))
    # A duplicate on the wire is a separate frame carrying the same
    # (ident, index) — not the same object twice, which the pool may
    # have recycled by the second delivery.
    duplicate = fragments[0].clone()
    recv_layer.input(fragments[0])
    recv_layer.input(duplicate)
    for frag in fragments[1:]:
        recv_layer.input(frag)
    assert len(got) == 1


@given(st.integers(min_value=1, max_value=40000))
def test_fragment_count_matches_sizes(nbytes):
    sim = Simulator()
    layer, device = _layer(sim)
    sent = []
    device.send = sent.append
    layer.output(_udp_datagram(nbytes))
    total_wire_body = sum(f.ip_size - IP_HEADER_BYTES for f in sent)
    original_body = _udp_datagram(nbytes).ip_size - IP_HEADER_BYTES
    assert total_wire_body == original_body
    for frag in sent:
        assert frag.ip_size <= layer.mtu
