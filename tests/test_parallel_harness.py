"""Tests for the parallel trial executor (repro.validation.parallel).

The determinism contract — parallel byte-identical to serial — is
covered end-to-end in test_determinism.py; these tests cover the
machinery itself: spec pickling, the worker entry point, order
preservation, the serial fallback, and the parallel twins of the
serial harness entry points.
"""

import pickle

import pytest

from repro.scenarios import PorterScenario
from repro.validation.harness import (
    FtpRunner,
    compensation_vb,
    ethernet_baseline,
    run_live_trial,
    validate_scenario,
)
from repro.validation.parallel import (
    TrialExecutor,
    TrialSpec,
    default_workers,
    ethernet_baseline_parallel,
    execute_trial,
    run_validation,
    validate_scenario_parallel,
)

RUNNER = FtpRunner(nbytes=200_000, direction="send")


# ----------------------------------------------------------------------
# TrialSpec + execute_trial
# ----------------------------------------------------------------------
def test_trial_spec_round_trips_through_pickle():
    spec = TrialSpec(kind="live", seed=3, trial=1,
                     scenario=PorterScenario(), runner=RUNNER)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.kind == "live"
    assert clone.seed == 3 and clone.trial == 1
    assert clone.scenario.name == "porter"
    assert clone.runner.name == RUNNER.name


def test_execute_trial_matches_direct_serial_call():
    spec = TrialSpec(kind="live", seed=2, trial=0,
                     scenario=PorterScenario(), runner=RUNNER)
    assert execute_trial(spec) == run_live_trial(
        PorterScenario(), RUNNER, seed=2, trial=0)


def test_execute_trial_same_result_after_pickle():
    spec = TrialSpec(kind="ethernet", seed=1, trial=0, runner=RUNNER)
    clone = pickle.loads(pickle.dumps(spec))
    assert execute_trial(spec) == execute_trial(clone)


def test_cost_hint_ranks_live_above_modulated():
    live = TrialSpec(kind="live", seed=0, trial=0,
                     scenario=PorterScenario(), runner=RUNNER)
    mod = TrialSpec(kind="modulated", seed=0, trial=0, runner=RUNNER)
    assert live.cost_hint() > mod.cost_hint()


def test_unknown_trial_kind_raises():
    with pytest.raises(ValueError):
        execute_trial(TrialSpec(kind="bogus", seed=0, trial=0))


# ----------------------------------------------------------------------
# TrialExecutor
# ----------------------------------------------------------------------
def test_default_workers_positive():
    assert default_workers() >= 1


def test_workers_one_is_serial():
    exe = TrialExecutor(workers=1)
    try:
        assert exe.effective_workers == 1
        spec = TrialSpec(kind="ethernet", seed=0, trial=0, runner=RUNNER)
        assert exe.map([spec])[0] == execute_trial(spec)
    finally:
        exe.shutdown()


def test_map_preserves_submission_order():
    """Results come back in submission order even though the pool may
    finish them in any wall-clock order (longest-first submission)."""
    specs = [TrialSpec(kind="ethernet", seed=0, trial=t, runner=RUNNER)
             for t in range(4)]
    exe = TrialExecutor(workers=2)
    try:
        parallel = exe.map(specs)
    finally:
        exe.shutdown()
    serial = [execute_trial(s) for s in specs]
    assert parallel == serial


def test_map_on_empty_list():
    exe = TrialExecutor(workers=2)
    try:
        assert exe.map([]) == []
    finally:
        exe.shutdown()


# ----------------------------------------------------------------------
# Parallel twins of the serial entry points
# ----------------------------------------------------------------------
def test_validate_scenario_parallel_matches_serial():
    comp = compensation_vb()
    serial = validate_scenario(PorterScenario(), RUNNER, seed=0, trials=2,
                               compensation=comp)
    parallel = validate_scenario_parallel(PorterScenario(), RUNNER, seed=0,
                                          trials=2, compensation=comp,
                                          workers=2)
    assert parallel.scenario == serial.scenario
    assert parallel.benchmark == serial.benchmark
    assert set(parallel.comparisons) == set(serial.comparisons)
    for metric, cmp_serial in serial.comparisons.items():
        cmp_parallel = parallel.comparisons[metric]
        assert cmp_parallel.real == cmp_serial.real
        assert cmp_parallel.modulated == cmp_serial.modulated


def test_ethernet_baseline_parallel_matches_serial():
    serial = ethernet_baseline(RUNNER, seed=0, trials=2)
    parallel = ethernet_baseline_parallel(RUNNER, seed=0, trials=2, workers=2)
    assert parallel == serial


def test_run_validation_accepts_single_scenario_and_classes():
    single = run_validation(PorterScenario(), RUNNER, seed=0, trials=1,
                            workers=1)
    from_class = run_validation([PorterScenario], RUNNER, seed=0, trials=1,
                                workers=1)
    assert len(single.validations) == 1
    assert single.render() == from_class.render()


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
def test_cli_validate_workers_flag(capsys):
    from repro.cli import main

    rc = main(["validate", "--scenario", "porter", "--benchmark", "ftp",
               "--trials", "1", "--workers", "2", "--ftp-bytes", "200000"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "porter" in out
