"""Unit tests for statistics and rendering utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    Summary,
    histogram,
    percentile,
    render_histogram,
    render_series,
    render_table,
    sigma_distance,
    within_sigma_sum,
)


# ----------------------------------------------------------------------
# Summary and the paper's criterion
# ----------------------------------------------------------------------
def test_summary_mean_and_sample_std():
    s = Summary.of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.mean == pytest.approx(5.0)
    assert s.std == pytest.approx(2.138, rel=1e-3)  # sample (n-1) std
    assert s.n == 8


def test_summary_single_value():
    s = Summary.of([3.0])
    assert s.mean == 3.0
    assert s.std == 0.0


def test_summary_empty_rejected():
    with pytest.raises(ValueError):
        Summary.of([])


def test_summary_paper_format():
    assert Summary(mean=161.47, std=7.82, n=4).format() == "161.47 (7.82)"


def test_sigma_distance_paper_example():
    """§5.3: Porter send off by 1.05x the sum of standard deviations."""
    real = Summary(mean=86.38, std=4.94, n=4)
    mod = Summary(mean=76.65, std=4.29, n=4)
    assert sigma_distance(real, mod) == pytest.approx(1.05, abs=0.01)
    assert not within_sigma_sum(real, mod)


def test_within_sigma_sum_paper_wean_web():
    real = Summary(mean=161.47, std=7.82, n=4)
    mod = Summary(mean=160.04, std=2.60, n=4)
    assert within_sigma_sum(real, mod)


def test_sigma_distance_degenerate_cases():
    a = Summary(mean=5.0, std=0.0, n=1)
    b = Summary(mean=5.0, std=0.0, n=1)
    c = Summary(mean=6.0, std=0.0, n=1)
    assert sigma_distance(a, b) == 0.0
    assert sigma_distance(a, c) == math.inf


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=40))
def test_summary_std_nonnegative_and_mean_bounded(values):
    s = Summary.of(values)
    assert s.std >= 0.0
    assert min(values) - 1e-6 <= s.mean <= max(values) + 1e-6


# ----------------------------------------------------------------------
# Histogram and percentile
# ----------------------------------------------------------------------
def test_histogram_counts_sum_to_n():
    values = [1.0, 2.0, 2.5, 9.0, 9.5]
    bins = histogram(values, bins=4)
    assert sum(c for _, _, c in bins) == 5


def test_histogram_single_value():
    assert histogram([3.0, 3.0], bins=5) == [(3.0, 3.0, 2)]


def test_histogram_empty():
    assert histogram([]) == []


def test_percentile_bounds():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=1, max_size=30),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, p):
    result = percentile(values, p)
    eps = 1e-9 * (1.0 + abs(max(values)) + abs(min(values)))
    assert min(values) - eps <= result <= max(values) + eps


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_table_alignment_and_content():
    text = render_table(["Scenario", "Real (s)"],
                        [["Wean", "161.47 (7.82)"],
                         ["Porter", "159.83 (5.07)"]],
                        title="Figure 6")
    lines = text.splitlines()
    assert lines[0] == "Figure 6"
    assert "Wean" in text and "159.83 (5.07)" in text
    # Right-aligned numeric column: rows end at the same offset.
    assert len(lines[-1]) == len(lines[-2])


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_render_table_caption():
    text = render_table(["a"], [["1"]], caption="the caption")
    assert text.endswith("the caption")


def test_render_series_shows_ranges():
    text = render_series("latency", ["x0", "x1"], [1.0, 5.0], [2.0, 9.0],
                         unit="ms")
    assert "x0" in text and "x1" in text
    assert "ms" in text
    assert "1..2" in text


def test_render_series_log_scale():
    text = render_series("latency", ["a", "b"], [0.001, 1.0], [0.01, 10.0],
                         unit="ms", log_scale=True)
    assert "log scale" in text


def test_render_series_validates_lengths():
    with pytest.raises(ValueError):
        render_series("x", ["a"], [1.0, 2.0], [3.0])


def test_render_histogram_bars_scale():
    text = render_histogram("loss", [(0.0, 1.0, 1), (1.0, 2.0, 10)], unit="%")
    lines = text.splitlines()
    assert lines[2].count("#") > lines[1].count("#")


def test_render_histogram_empty():
    assert "no data" in render_histogram("x", [])
