"""The execution runtime's acceptance gate.

Three claims, tested end to end through the CLI:

1. **Backend equivalence** — `validate`, `check` and `fuzz` produce
   byte-identical stdout (and hence identical table SHA-256s) on the
   serial, warm-pool and loopback-socket backends, at every worker
   count.  This is the contract that makes ``--workers``/``--transport``
   pure performance knobs.
2. **Scheduler semantics** — results merge in submission order no
   matter how chunks are reordered for dispatch, and a broken backend
   degrades to in-process execution with correct results, never wrong
   ones.
3. **Teardown** — Ctrl-C cancels outstanding work and exits 130; run
   ledgers record workers/transport/output-hash for ``check`` and
   ``fuzz`` like they always have for ``validate``.
"""

import hashlib
import json
import re
from concurrent.futures import Future

import pytest

from repro.cli import main
from repro.runtime import Job, Scheduler, runner_ref
from repro.runtime.job import echo

_ECHO = runner_ref(echo)


def _echo_job(payload, cost_hint=0.1):
    return Job(kind="echo", runner=_ECHO, payload=payload,
               label=f"echo:{payload}", cost_hint=cost_hint)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _strip_ledger_line(out: str) -> str:
    # The manifest path contains a per-test tmp dir; everything else
    # on stdout must be byte-identical.
    return re.sub(r"appended run manifest to [^\n]*\n", "", out)


# ======================================================================
# 1. Backend-equivalence matrix: serial == pool == loopback socket
# ======================================================================
# (transport, workers): "auto" resolves to the warm process pool with
# the envelope data plane; "socket" runs workers as TCP subprocesses.
# Worker counts 2 and 4 cover both the capped (pool) and uncapped
# (socket) sizing paths.
MATRIX = [("auto", 2), ("auto", 4), ("socket", 2), ("socket", 4)]

VALIDATE_ARGV = ["validate", "--scenario", "wean", "--benchmark", "ftp",
                 "--ftp-bytes", "50000", "--trials", "2"]
CHECK_ARGV = ["check", "--smoke"]
FUZZ_ARGV = ["fuzz", "--count", "2", "--seed", "0"]

# Serial reference stdout per command, computed once per test session.
_REFERENCE = {}


def _run(capsys, argv, expect_rc=0):
    rc = main(argv)
    out = capsys.readouterr().out
    assert rc == expect_rc, f"{argv} exited {rc}"
    return out


def _reference(capsys, key, argv):
    if key not in _REFERENCE:
        _REFERENCE[key] = _run(capsys, argv + ["--workers", "1"])
    return _REFERENCE[key]


class TestBackendEquivalence:
    @pytest.mark.parametrize("transport,workers", MATRIX)
    def test_validate_matrix(self, capsys, transport, workers):
        serial = _reference(capsys, "validate", VALIDATE_ARGV)
        out = _run(capsys, VALIDATE_ARGV + ["--workers", str(workers),
                                            "--transport", transport])
        assert out == serial
        assert _sha(out) == _sha(serial)

    @pytest.mark.parametrize("transport,workers", MATRIX)
    def test_check_matrix(self, capsys, transport, workers):
        serial = _reference(capsys, "check", CHECK_ARGV)
        out = _run(capsys, CHECK_ARGV + ["--workers", str(workers),
                                         "--transport", transport])
        assert out == serial
        assert _sha(out) == _sha(serial)

    @pytest.mark.parametrize("transport,workers", MATRIX)
    def test_fuzz_matrix(self, capsys, transport, workers):
        serial = _reference(capsys, "fuzz", FUZZ_ARGV)
        out = _run(capsys, FUZZ_ARGV + ["--workers", str(workers),
                                        "--transport", transport])
        assert out == serial
        assert _sha(out) == _sha(serial)


# ======================================================================
# 2. Scheduler semantics
# ======================================================================
class TestScheduler:
    def test_socket_backend_echo_roundtrip(self):
        exe = Scheduler(workers=2, transport="socket")
        try:
            jobs = [_echo_job(i) for i in range(8)]
            assert exe.map_jobs(jobs) == list(range(8))
            assert exe.transport_used == "socket"
        finally:
            exe.shutdown()

    def test_merge_order_is_submission_order(self):
        # Dispatch reorders by cost (expensive first) and chunks the
        # cheap tail; the merged results must ignore all of that.
        exe = Scheduler(workers=2)
        costs = [0.1, 500.0, 1.0, 250.0, 0.1, 120.0]
        try:
            jobs = [_echo_job(i, cost_hint=costs[i % len(costs)])
                    for i in range(24)]
            assert exe.map_jobs(jobs) == list(range(24))
        finally:
            exe.shutdown()

    def test_broken_backend_falls_back_to_correct_results(self, monkeypatch):
        class _BrokenBackend:
            name = "pool"
            remote = True

            def start(self, store_root=None):
                pass

            def pool_size(self):
                return 2

            def submit(self, wire, envelope, telemetry_ctx):
                fut = Future()
                fut.set_exception(OSError("pipe closed"))
                return fut

            def shutdown(self, cancel=False):
                pass

        exe = Scheduler(workers=2)
        monkeypatch.setattr(exe, "_make_backend", _BrokenBackend)
        try:
            jobs = [_echo_job(i, cost_hint=200.0) for i in range(6)]
            assert exe.map_jobs(jobs) == list(range(6))
            stats = exe.transport_stats()
            assert stats["pool_broken"] is True
            assert stats["serial_fallbacks"] >= 6
            assert "pool broke" in stats["fallback_reason"]
        finally:
            exe.shutdown()

    def test_keyboard_interrupt_cancels_scheduler(self, monkeypatch):
        exe = Scheduler(workers=1)
        try:
            futs = exe.submit_jobs([_echo_job(0)])
            monkeypatch.setattr(
                "repro.runtime.scheduler.run_job_inline",
                lambda job: (_ for _ in ()).throw(KeyboardInterrupt()))
            with pytest.raises(KeyboardInterrupt):
                futs[0].result()
            # cancel() ran: everything still queued degrades to the
            # in-process path and the backend is gone.
            assert exe._serial_fallback is True
            assert exe._backend is None
        finally:
            exe.shutdown()


# ======================================================================
# 3. Teardown and bookkeeping through the CLI
# ======================================================================
class TestCliRuntime:
    def test_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def _boom(args):
            raise KeyboardInterrupt()

        monkeypatch.setitem(cli.COMMANDS, "check", _boom)
        assert main(["check", "--smoke"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_check_writes_ledger_record(self, tmp_path, capsys):
        out = _run(capsys, CHECK_ARGV
                   + ["--workers", "2", "--run-dir", str(tmp_path)])
        assert "appended run manifest" in out
        # Stdout minus the (path-bearing) ledger line matches serial.
        if "check" in _REFERENCE:
            assert _strip_ledger_line(out) == _REFERENCE["check"]
        lines = (tmp_path / "ledger.jsonl").read_text().splitlines()
        record = json.loads(lines[-1])
        assert record["kind"] == "check"
        assert record["scenarios"] == ["wean"]
        assert record["workers"] == 2
        assert record["status"] == "ok"
        assert re.fullmatch(r"[0-9a-f]{64}", record["table_sha256"])
        assert record["transport"]["transport"] in ("envelope", "pickle")

    def test_fuzz_writes_ledger_record(self, tmp_path, capsys):
        out = _run(capsys, ["fuzz", "--count", "1", "--seed", "0",
                            "--workers", "2", "--run-dir", str(tmp_path)])
        assert "appended run manifest" in out
        record = json.loads(
            (tmp_path / "ledger.jsonl").read_text().splitlines()[-1])
        assert record["kind"] == "fuzz"
        assert record["status"] == "ok"
        assert record["checked"] == 1
        assert record["corpus_digest"]
        assert record["workers"] == 2

    def test_unknown_transport_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(CHECK_ARGV + ["--transport", "carrier-pigeon"])
        assert exc.value.code == 2
