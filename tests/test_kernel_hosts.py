"""Unit tests for the host kernel (ticks, drift, pseudo-devices) and worlds."""

import pytest
from hypothesis import given, strategies as st

from repro.hosts import (
    Host,
    Kernel,
    LAPTOP_ADDR,
    LiveWorld,
    ModulationWorld,
    PseudoDevice,
    SERVER_ADDR,
)
from repro.sim import Simulator, Timeout


# ----------------------------------------------------------------------
# Tick quantization
# ----------------------------------------------------------------------
def test_callout_fires_on_next_tick_boundary():
    sim = Simulator()
    kernel = Kernel(sim, tick_resolution=0.010)
    fired = []
    sim.schedule(0.003, lambda: kernel.callout(0.001, lambda: fired.append(sim.now)))
    sim.run()
    # now=0.003 + delay 0.001 = 0.004 -> next tick is 0.010
    assert fired == [pytest.approx(0.010)]


def test_callout_exact_tick_fires_there():
    sim = Simulator()
    kernel = Kernel(sim, tick_resolution=0.010)
    fired = []
    kernel.callout(0.020, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(0.020)]


def test_schedule_rounded_under_half_tick_is_immediate():
    sim = Simulator()
    kernel = Kernel(sim, tick_resolution=0.010)
    fired = []
    sim.schedule(0.0042, lambda: kernel.schedule_rounded(
        0.0049, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [pytest.approx(0.0042)]  # sent immediately


def test_schedule_rounded_rounds_to_nearest_tick():
    sim = Simulator()
    kernel = Kernel(sim, tick_resolution=0.010)
    fired = []
    kernel.schedule_rounded(0.014, lambda: fired.append(sim.now))
    kernel.schedule_rounded(0.016, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(0.010), pytest.approx(0.020)]


def test_rounded_never_schedules_in_past():
    sim = Simulator()
    kernel = Kernel(sim, tick_resolution=0.010)
    fired = []
    sim.schedule(0.009, lambda: kernel.schedule_rounded(
        0.005, lambda: fired.append(sim.now)))
    sim.run()
    assert fired and fired[0] >= 0.009


def test_callout_counter():
    sim = Simulator()
    kernel = Kernel(sim)
    kernel.callout(0.01, lambda: None)
    kernel.callout(0.02, lambda: None)
    sim.run()
    assert kernel.callouts_fired == 2


def test_invalid_tick_rejected():
    with pytest.raises(ValueError):
        Kernel(Simulator(), tick_resolution=0.0)


@given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_rounding_error_bounded_by_half_tick(now_offset, delay):
    sim = Simulator()
    kernel = Kernel(sim, tick_resolution=0.010)
    fired = []
    sim.schedule(now_offset,
                 lambda: kernel.schedule_rounded(delay,
                                                 lambda: fired.append(sim.now)))
    sim.run()
    actual_delay = fired[0] - now_offset
    # The paper's policy: error never exceeds half a tick (plus float fuzz)
    assert abs(actual_delay - delay) <= 0.005 + 1e-9


# ----------------------------------------------------------------------
# Clock drift
# ----------------------------------------------------------------------
def test_drifting_clock_diverges_from_sim_time():
    sim = Simulator()
    kernel = Kernel(sim, clock_drift=1e-4)
    sim.schedule(100.0, lambda: None)
    sim.run()
    assert kernel.timestamp() == pytest.approx(100.01)


def test_zero_drift_tracks_sim_time():
    sim = Simulator()
    kernel = Kernel(sim)
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert kernel.timestamp() == 5.0


# ----------------------------------------------------------------------
# Pseudo-devices
# ----------------------------------------------------------------------
def test_pseudo_device_registry():
    sim = Simulator()
    kernel = Kernel(sim)
    dev = PseudoDevice("trace0")
    kernel.register_device(dev)
    assert kernel.device("trace0") is dev
    assert kernel.device_names() == ["trace0"]


def test_duplicate_device_rejected():
    sim = Simulator()
    kernel = Kernel(sim)
    kernel.register_device(PseudoDevice("x"))
    with pytest.raises(ValueError):
        kernel.register_device(PseudoDevice("x"))


def test_unknown_device_keyerror():
    with pytest.raises(KeyError):
        Kernel(Simulator()).device("nope")


def test_double_open_rejected():
    dev = PseudoDevice("d")
    dev.open()
    with pytest.raises(RuntimeError):
        dev.open()


# ----------------------------------------------------------------------
# Hosts and worlds
# ----------------------------------------------------------------------
def test_host_has_full_stack():
    sim = Simulator()
    host = Host(sim, "h", "10.0.0.5")
    assert host.ip.addresses == ["10.0.0.5"]
    assert host.icmp is not None
    assert host.udp is not None
    assert host.tcp is not None


def test_device_named_lookup(live_world):
    assert live_world.laptop.device_named("wl0") is live_world.radio
    with pytest.raises(KeyError):
        live_world.laptop.device_named("eth9")


def test_live_world_end_to_end_connectivity(live_world):
    w = live_world
    replies = []
    w.laptop.icmp.on_echo_reply(1, lambda pkt, now: replies.append(now))
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=2.0)
    assert len(replies) == 1


def test_live_world_reverse_connectivity(live_world):
    w = live_world
    replies = []
    w.server.icmp.on_echo_reply(2, lambda pkt, now: replies.append(now))
    w.server.icmp.send_echo(SERVER_ADDR, LAPTOP_ADDR, 2, 0, 64)
    w.run(until=2.0)
    assert len(replies) == 1


def test_live_world_cross_laptops_created():
    w = LiveWorld(seed=1, cross_laptops=3)
    assert len(w.cross_hosts) == 3
    addresses = {h.address for h in w.cross_hosts}
    assert len(addresses) == 3


def test_cross_laptop_reaches_server():
    w = LiveWorld(seed=1, cross_laptops=1)
    replies = []
    cross = w.cross_hosts[0]
    cross.icmp.on_echo_reply(3, lambda pkt, now: replies.append(now))
    cross.icmp.send_echo(cross.address, SERVER_ADDR, 3, 0, 64)
    w.run(until=2.0)
    assert len(replies) == 1


def test_modulation_world_connectivity(mod_world):
    w = mod_world
    replies = []
    w.laptop.icmp.on_echo_reply(1, lambda pkt, now: replies.append(now))
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    assert len(replies) == 1


def test_laptop_clock_drifts_in_live_world(live_world):
    live_world.run(until=100.0)
    laptop_clock = live_world.laptop.kernel.timestamp()
    assert laptop_clock != 100.0  # drift is on by default
    assert abs(laptop_clock - 100.0) < 0.1


def test_bridge_learns_both_sides(live_world):
    w = live_world
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=2.0)
    learned = w.bridge.learned_addresses()
    assert LAPTOP_ADDR in learned and SERVER_ADDR in learned
