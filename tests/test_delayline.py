"""Tests for the Delayline-style user-level wrapper (§2.3 contrast).

The decisive test quantifies the paper's argument for in-kernel
modulation: a user-level wrapper slows only the application it is
linked into, while the modulation layer covers every flow on the host.
"""

import pytest

from repro.core import constant_trace, install_modulation
from repro.core.delayline import DelaylineSocket, wrap_rpc_client
from repro.hosts import LAPTOP_ADDR, ModulationWorld, SERVER_ADDR
from repro.protocols.rpc import RpcClient, RpcServer
from repro.sim import Timeout
from tests.conftest import run_to_completion

SLOW = constant_trace(duration=120.0, latency=40e-3, bandwidth_bps=2e6)


def _echo_rpc_server(world):
    server = RpcServer(world.sim, world.server.udp, SERVER_ADDR, 7000,
                       lambda proc, args: (args, 64))
    world.server.spawn(server.loop())
    return server


def _rpc_rtt(world, client, n=5):
    rtts = []

    def body():
        for i in range(n):
            start = world.sim.now
            yield from client.call("echo", i, 32)
            rtts.append(world.sim.now - start)
            yield Timeout(0.2)

    proc = world.laptop.spawn(body())
    run_to_completion(world, proc, cap=120.0)
    return sum(rtts) / len(rtts)


def _icmp_rtt(world, n=5):
    rtts = []
    world.laptop.icmp.on_echo_reply(
        3, lambda pkt, now: rtts.append(now - pkt.meta["echo_sent_at"]))

    def body():
        for seq in range(n):
            world.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 3, seq, 64)
            yield Timeout(0.2)

    proc = world.laptop.spawn(body())
    run_to_completion(world, proc, cap=60.0)
    return sum(rtts) / len(rtts)


def test_wrapped_socket_sees_emulated_delay(mod_world):
    w = mod_world
    _echo_rpc_server(w)
    client = RpcClient(w.sim, w.laptop.udp, LAPTOP_ADDR, SERVER_ADDR, 7000)
    wrap_rpc_client(client, SLOW, w.rngs.stream("dl"))
    w.laptop.spawn(client.dispatcher())
    rtt = _rpc_rtt(w, client)
    # ~40 ms each way plus per-byte costs.
    assert rtt > 0.075


def test_unwrapped_socket_is_fast(mod_world):
    w = mod_world
    _echo_rpc_server(w)
    client = RpcClient(w.sim, w.laptop.udp, LAPTOP_ADDR, SERVER_ADDR, 7000)
    w.laptop.spawn(client.dispatcher())
    assert _rpc_rtt(w, client) < 0.01


def test_delayline_drops_apply(mod_world):
    w = mod_world
    lossy = constant_trace(duration=60.0, latency=1e-3, bandwidth_bps=2e6,
                           loss=1.0)
    _echo_rpc_server(w)
    client = RpcClient(w.sim, w.laptop.udp, LAPTOP_ADDR, SERVER_ADDR, 7000,
                       initial_timeout=0.3, max_retries=1)
    wrapped = wrap_rpc_client(client, lossy, w.rngs.stream("dl"))
    w.laptop.spawn(client.dispatcher())

    from repro.protocols.rpc import RpcTimeout

    def body():
        with pytest.raises(RpcTimeout):
            yield from client.call("echo", 1, 32)

    run_to_completion(mod_world, w.laptop.spawn(body()), cap=60.0)
    assert wrapped.dropped_out > 0


def test_userlevel_wrapper_misses_other_traffic(mod_world):
    """The paper's §2.3 point, quantified.

    With the Delayline wrapper, the wrapped RPC flow is slowed ~100x
    while ICMP on the same host still runs at raw Ethernet speed.
    With kernel modulation, both flows slow down.
    """
    w = mod_world
    _echo_rpc_server(w)
    client = RpcClient(w.sim, w.laptop.udp, LAPTOP_ADDR, SERVER_ADDR, 7000)
    wrap_rpc_client(client, SLOW, w.rngs.stream("dl"))
    w.laptop.spawn(client.dispatcher())
    rpc_rtt = _rpc_rtt(w, client)
    icmp_rtt = _icmp_rtt(w)
    assert rpc_rtt > 0.075          # the app is emulated...
    assert icmp_rtt < 0.005         # ...but the rest of the host is not

    # Kernel modulation covers everything.
    w2 = ModulationWorld(seed=9)
    install_modulation(w2.laptop, w2.laptop_device, SLOW,
                       w2.rngs.stream("mod"), loop=True)
    _echo_rpc_server(w2)
    client2 = RpcClient(w2.sim, w2.laptop.udp, LAPTOP_ADDR, SERVER_ADDR,
                        7000)
    w2.laptop.spawn(client2.dispatcher())
    w2.run(until=0.5)
    rpc2 = _rpc_rtt(w2, client2)
    icmp2 = _icmp_rtt(w2)
    assert rpc2 > 0.075
    assert icmp2 > 0.075            # all traffic is accounted for (§1)
