"""Unit tests for ICMP and UDP."""

import pytest

from repro.hosts import LAPTOP_ADDR, SERVER_ADDR
from repro.sim import run_process, spawn
from tests.conftest import run_to_completion


# ----------------------------------------------------------------------
# ICMP
# ----------------------------------------------------------------------
def test_echo_generates_reply(live_world):
    w = live_world
    replies = []
    w.laptop.icmp.on_echo_reply(5, lambda pkt, now: replies.append(pkt))
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, ident=5, seq=9,
                            payload_bytes=64)
    w.run(until=1.0)
    assert len(replies) == 1
    assert replies[0].icmp.seq == 9
    assert replies[0].icmp.ident == 5


def test_reply_echoes_payload_size(live_world):
    w = live_world
    replies = []
    w.laptop.icmp.on_echo_reply(5, lambda pkt, now: replies.append(pkt))
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 5, 0, payload_bytes=777)
    w.run(until=1.0)
    assert replies[0].payload_bytes == 777


def test_reply_carries_back_meta_timestamp(live_world):
    w = live_world
    replies = []
    w.laptop.icmp.on_echo_reply(5, lambda pkt, now: replies.append(pkt))
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 5, 0, 64,
                            meta={"echo_sent_at_host": 0.123})
    w.run(until=1.0)
    assert replies[0].meta["echo_sent_at_host"] == 0.123


def test_reply_demuxed_by_ident(live_world):
    w = live_world
    mine, theirs = [], []
    w.laptop.icmp.on_echo_reply(1, lambda pkt, now: mine.append(pkt))
    w.laptop.icmp.on_echo_reply(2, lambda pkt, now: theirs.append(pkt))
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    assert len(mine) == 1 and theirs == []


def test_handler_deregistration(live_world):
    w = live_world
    replies = []
    w.laptop.icmp.on_echo_reply(1, lambda pkt, now: replies.append(pkt))
    w.laptop.icmp.on_echo_reply(1, None)
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    assert replies == []
    assert w.laptop.icmp.replies_received == 1


def test_server_counts_echoes_answered(live_world):
    w = live_world
    w.laptop.icmp.send_echo(LAPTOP_ADDR, SERVER_ADDR, 1, 0, 64)
    w.run(until=1.0)
    assert w.server.icmp.echoes_answered == 1


# ----------------------------------------------------------------------
# UDP
# ----------------------------------------------------------------------
def test_udp_send_and_receive(mod_world):
    w = mod_world
    server_sock = w.server.udp.bind(SERVER_ADDR, 5000)
    client_sock = w.laptop.udp.bind(LAPTOP_ADDR, 0)

    def server():
        src, sport, payload, nbytes = yield from server_sock.recv()
        return (src, sport, payload, nbytes)

    proc = w.server.spawn(server())
    client_sock.send_to(SERVER_ADDR, 5000, payload="hello", payload_bytes=200)
    value = run_to_completion(w, proc)
    assert value[0] == LAPTOP_ADDR
    assert value[2] == "hello"
    assert value[3] == 200


def test_udp_ephemeral_ports_unique(mod_world):
    s1 = mod_world.laptop.udp.bind(LAPTOP_ADDR, 0)
    s2 = mod_world.laptop.udp.bind(LAPTOP_ADDR, 0)
    assert s1.port != s2.port
    assert s1.port >= 32768


def test_udp_double_bind_rejected(mod_world):
    mod_world.laptop.udp.bind(LAPTOP_ADDR, 999)
    with pytest.raises(ValueError):
        mod_world.laptop.udp.bind(LAPTOP_ADDR, 999)


def test_udp_unbound_port_drops(mod_world):
    w = mod_world
    sock = w.laptop.udp.bind(LAPTOP_ADDR, 0)
    sock.send_to(SERVER_ADDR, 4242, payload_bytes=10)
    w.run(until=1.0)
    assert w.server.udp.dropped_no_port == 1


def test_udp_closed_socket_rejects_send(mod_world):
    sock = mod_world.laptop.udp.bind(LAPTOP_ADDR, 0)
    sock.close()
    with pytest.raises(RuntimeError):
        sock.send_to(SERVER_ADDR, 1, payload_bytes=1)


def test_udp_close_releases_port(mod_world):
    sock = mod_world.laptop.udp.bind(LAPTOP_ADDR, 888)
    sock.close()
    mod_world.laptop.udp.bind(LAPTOP_ADDR, 888)  # no error


def test_udp_large_datagram_survives_fragmentation(mod_world):
    w = mod_world
    server_sock = w.server.udp.bind(SERVER_ADDR, 5000)
    client_sock = w.laptop.udp.bind(LAPTOP_ADDR, 0)

    def server():
        _, _, payload, nbytes = yield from server_sock.recv()
        return nbytes

    proc = w.server.spawn(server())
    client_sock.send_to(SERVER_ADDR, 5000, payload="big", payload_bytes=8192)
    assert run_to_completion(w, proc) == 8192
    assert w.laptop.ip.datagrams_fragmented == 1


def test_udp_recv_nowait_and_pending(mod_world):
    w = mod_world
    sock = w.server.udp.bind(SERVER_ADDR, 5000)
    client = w.laptop.udp.bind(LAPTOP_ADDR, 0)
    assert sock.recv_nowait() is None
    client.send_to(SERVER_ADDR, 5000, payload_bytes=10)
    w.run(until=1.0)
    assert sock.pending() == 1
    assert sock.recv_nowait() is not None
    assert sock.pending() == 0
