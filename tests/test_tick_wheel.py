"""Tick-wheel scheduler edge cases and the batch-fire fast paths.

These target the machinery the generic engine tests don't reach:
same-tick batch firing, the wheel/overflow-heap boundary, cancellation
and rescheduling *during* a batch sweep, ``call_batch``, and the
occupancy statistics the observability layer surfaces.
"""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.engine import WHEEL_SLOTS, WHEEL_TICK


@pytest.fixture
def sim():
    return Simulator()


FAR = WHEEL_SLOTS * WHEEL_TICK * 3  # comfortably past the wheel horizon


# ----------------------------------------------------------------------
# Batch firing within one tick
# ----------------------------------------------------------------------
def test_same_tick_events_fire_fifo(sim):
    fired = []
    for i in range(8):
        sim.schedule(0.001, fired.append, i)
    sim.run()
    assert fired == list(range(8))


def test_cancel_during_batch_fire(sim):
    """An event cancelled by an earlier event in the same tick's bucket
    must not fire, even though both were already swept into the batch."""
    fired = []
    box = {}
    sim.schedule(0.001, lambda: box["victim"].cancel())
    box["victim"] = sim.schedule(0.001, fired.append, "victim")
    sim.schedule(0.001, fired.append, "survivor")
    sim.run()
    assert fired == ["survivor"]
    assert sim.stats().events_cancelled == 1


def test_cancel_already_fired_same_tick_is_noop(sim):
    """Cancelling an event that already fired earlier in the same
    sweep is a harmless no-op."""
    fired = []
    first = sim.schedule(0.001, fired.append, "first")
    sim.schedule(0.001, lambda: first.cancel())
    sim.run()
    assert fired == ["first"]
    assert sim.stats().events_cancelled == 0  # post-fire cancel not counted


def test_reschedule_into_currently_firing_tick(sim):
    """An event scheduled *from inside* a bucket sweep at the same
    timestamp joins the end of the current sweep (FIFO preserved)."""
    fired = []

    def spawner():
        fired.append("spawner")
        sim.schedule_at(sim.now, fired.append, "late-join")

    sim.schedule(0.001, spawner)
    sim.schedule(0.001, fired.append, "second")
    sim.run()
    assert fired == ["spawner", "second", "late-join"]


def test_reschedule_cascade_same_tick_terminates_in_order(sim):
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sim.schedule_at(sim.now, chain, depth + 1)

    sim.schedule(0.001, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


# ----------------------------------------------------------------------
# Schedule-in-past rejection, on every entry point
# ----------------------------------------------------------------------
def test_schedule_negative_delay_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_call_later_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.call_later(-1e-9, lambda: None)


def test_call_at_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_call_batch_past_entry_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_batch([(2.0, lambda: None, ()), (0.5, lambda: None, ())])


def test_call_batch_partial_failure_keeps_valid_prefix(sim):
    """Entries before the invalid one stay scheduled (counters stay
    consistent with what actually went in)."""
    fired = []
    with pytest.raises(SimulationError):
        sim.call_batch([(2.0, fired.append, (1,)), (-1.0, fired.append, (2,))])
    sim.run()
    assert fired == [1]


# ----------------------------------------------------------------------
# FIFO tie-break across the wheel/heap boundary
# ----------------------------------------------------------------------
def test_fifo_across_wheel_heap_boundary(sim):
    """Event A lands in the overflow heap (beyond the wheel horizon);
    after time advances, event B is scheduled at the same timestamp but
    now lands in the wheel.  A was scheduled first, so A fires first."""
    fired = []
    sim.schedule_at(FAR, fired.append, "heap-first")   # → overflow heap
    sim.schedule_at(FAR - 1.0, lambda: None)           # something to run to
    sim.run(until=FAR - 0.5)
    sim.schedule_at(FAR, fired.append, "wheel-second")  # → wheel now
    sim.run()
    assert fired == ["heap-first", "wheel-second"]


def test_far_future_events_migrate_from_heap_to_wheel(sim):
    fired = []
    for i in range(4):
        sim.schedule_at(FAR + i * WHEEL_TICK, fired.append, i)
    stats = sim.stats()
    assert stats.heap_pending == 4 and stats.wheel_pending == 0
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.stats().heap_pending == 0


def test_cancel_heap_event_never_fires(sim):
    fired = []
    ev = sim.schedule_at(FAR, fired.append, "x")
    ev.cancel()
    sim.schedule_at(FAR + 1.0, fired.append, "end")
    sim.run()
    assert fired == ["end"]


# ----------------------------------------------------------------------
# call_batch
# ----------------------------------------------------------------------
def test_call_batch_fires_in_time_then_fifo_order(sim):
    fired = []
    count = sim.call_batch([
        (0.002, fired.append, ("b1",)),
        (0.001, fired.append, ("a1",)),
        (0.002, fired.append, ("b2",)),
        (FAR, fired.append, ("far",)),
        (0.001, fired.append, ("a2",)),
    ])
    assert count == 5
    sim.run()
    assert fired == ["a1", "a2", "b1", "b2", "far"]


def test_call_batch_interleaves_with_singly_scheduled(sim):
    fired = []
    sim.schedule_at(0.001, fired.append, "single-first")
    sim.call_batch([(0.001, fired.append, ("batched",))])
    sim.schedule_at(0.001, fired.append, "single-last")
    sim.run()
    assert fired == ["single-first", "batched", "single-last"]


def test_call_batch_updates_counters_and_hwm(sim):
    sim.call_batch([(0.001 * (i + 1), lambda: None, ()) for i in range(10)])
    stats = sim.stats()
    assert stats.events_scheduled == 10
    assert stats.pending == 10
    assert stats.pending_hwm == 10
    sim.run()
    assert sim.stats().events_fired == 10


# ----------------------------------------------------------------------
# Occupancy statistics (queue high-water mark, wheel/heap split)
# ----------------------------------------------------------------------
def test_pending_hwm_tracks_peak_not_current(sim):
    for i in range(20):
        sim.schedule(0.001 * (i + 1), lambda: None)
    sim.run()
    stats = sim.stats()
    assert stats.pending == 0
    assert stats.pending_hwm == 20


def test_wheel_heap_split_reported(sim):
    sim.schedule(0.010, lambda: None)      # wheel
    sim.schedule(0.010, lambda: None)      # wheel, same tick
    sim.schedule_at(FAR, lambda: None)     # heap
    stats = sim.stats()
    assert stats.wheel_pending == 2
    assert stats.heap_pending == 1
    assert stats.pending == 3


def test_stats_flow_through_obs_metrics_registry(sim):
    """The observability registry's engine collector surfaces the new
    occupancy fields without any extra wiring."""
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    registry.add_collector(
        lambda: {f"engine.{k}": v for k, v in sim.stats().as_dict().items()})
    sim.schedule(0.001, lambda: None)
    sim.schedule_at(FAR, lambda: None)
    collected = registry.snapshot()["collected"]
    assert collected["engine.pending_hwm"] == 2
    assert collected["engine.wheel_pending"] == 1
    assert collected["engine.heap_pending"] == 1
    assert "engine.bucket_sweeps" in collected
